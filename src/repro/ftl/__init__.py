"""Pluggable flash-translation-layer strategies for the simulated SSD.

``create_ftl("page" | "group" | "compressed" | "hybrid", spec)`` builds
a policy; :class:`repro.dut.ssd.Ssd` accepts the same names via its
``ftl=`` argument.  See ``docs/storage-workloads.md`` for the policy
trade-off table.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.ftl.base import INVALID, FtlCounters, FtlPolicy
from repro.ftl.compressed import CompressedMapFtl
from repro.ftl.group import GroupMapFtl
from repro.ftl.hybrid import HybridDeltaFtl
from repro.ftl.page import PageMapFtl

FTL_POLICIES: dict[str, type[FtlPolicy]] = {
    PageMapFtl.name: PageMapFtl,
    GroupMapFtl.name: GroupMapFtl,
    CompressedMapFtl.name: CompressedMapFtl,
    HybridDeltaFtl.name: HybridDeltaFtl,
}


def create_ftl(name: str, spec, **options) -> FtlPolicy:
    """Instantiate an FTL policy by registry name."""
    try:
        cls = FTL_POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown FTL policy {name!r}; expected one of "
            f"{sorted(FTL_POLICIES)}"
        ) from None
    return cls(spec, **options)


__all__ = [
    "INVALID",
    "FTL_POLICIES",
    "FtlCounters",
    "FtlPolicy",
    "PageMapFtl",
    "GroupMapFtl",
    "CompressedMapFtl",
    "HybridDeltaFtl",
    "create_ftl",
]
