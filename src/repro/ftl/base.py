"""The FTL strategy interface.

The mapping logic that used to live inside :class:`repro.dut.ssd.Ssd`
is a *policy*: how logical pages map to physical ones decides the
mapping-table footprint, the lookup overhead, and — through merges and
garbage collection — the write amplification that shapes the Fig. 12b
bandwidth variability.  :class:`FtlPolicy` owns the canonical page-level
state (L2P/P2L arrays, per-block valid counts, the free-block pool and
the greedy GC loop) so every policy shares one set of structural
invariants and produces identical *host-visible* contents; subclasses
specialise three axes:

* **host-write expansion** (:meth:`_host_write`) — e.g. group mapping
  rewrites whole groups, paying partial-page merges;
* **GC relocation order** (:meth:`_gc_live_order`) — e.g. the
  run-length-compressed policy relocates in LPN order to preserve runs;
* **accounting** (:meth:`map_bytes`, :meth:`lookup_cost`) — what the
  mapping structure would cost in DRAM and per-translation work.

The canonical arrays are the simulation's ground truth for *placement*;
``map_bytes()`` reports what the policy's own representation of that
placement would occupy, computed honestly from the current mapping (a
run that fragments costs more entries; a group that no longer sits
contiguously pays overflow entries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, MeasurementError

INVALID = np.int64(-1)

#: Bytes per entry of the flat page-level L2P table (32-bit PPN).
PAGE_ENTRY_BYTES = 4
#: Bytes per run-length extent: (lpn_start, ppn_start, length).
RUN_ENTRY_BYTES = 12
#: Bytes per group base entry (base PPN + state bits).
GROUP_ENTRY_BYTES = 4
#: Bytes per delta-journal entry (page index in group + signed delta).
DELTA_ENTRY_BYTES = 3


@dataclass
class FtlCounters:
    """Cumulative FTL activity counters.

    ``merge_pages_relocated`` are internal rewrites a policy pays to keep
    its mapping representable (group merges, journal compaction); they
    are distinct from GC relocations but count toward write
    amplification exactly the same — the NAND backend cannot tell them
    apart.
    """

    host_pages_written: int = 0
    gc_pages_relocated: int = 0
    merge_pages_relocated: int = 0
    blocks_erased: int = 0
    gc_runs: int = 0
    #: Modelled map-translation operations (reads through the policy).
    lookup_ops: int = 0

    @property
    def internal_pages_written(self) -> int:
        return self.gc_pages_relocated + self.merge_pages_relocated

    @property
    def write_amplification(self) -> float:
        if self.host_pages_written == 0:
            return 1.0
        return (
            self.host_pages_written + self.internal_pages_written
        ) / self.host_pages_written


class FtlPolicy:
    """Abstract mapping strategy over the shared flash geometry."""

    #: Registry key and metrics label; subclasses override.
    name = "abstract"

    def __init__(self, spec) -> None:
        self.spec = spec
        self.counters = FtlCounters()
        self._format()

    # ------------------------------------------------------------------ #
    # Canonical FTL state                                                #
    # ------------------------------------------------------------------ #

    def _format(self) -> None:
        spec = self.spec
        n_pages = spec.n_blocks * spec.pages_per_block
        # Logical -> physical page number; physical -> logical (INVALID = free/stale).
        self.l2p = np.full(spec.logical_pages, INVALID, dtype=np.int64)
        self.p2l = np.full(n_pages, INVALID, dtype=np.int64)
        self.valid_count = np.zeros(spec.n_blocks, dtype=np.int64)
        self.block_state = np.zeros(spec.n_blocks, dtype=np.int8)  # 0 free, 1 open, 2 full
        self._free_blocks = list(range(spec.n_blocks - 1, 0, -1))
        self._active_block = 0
        self.block_state[0] = 1
        self._write_ptr = 0
        self._in_gc = False
        self.counters = FtlCounters()

    def format(self) -> None:
        """NVMe format: drop all mappings and reset the counters."""
        self._format()

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks)

    @property
    def mapped_pages(self) -> int:
        return int(np.count_nonzero(self.l2p != INVALID))

    def check_invariants(self) -> None:
        """Structural FTL invariants, shared by every policy."""
        spec = self.spec
        if int(self.valid_count.sum()) != self.mapped_pages:
            raise MeasurementError("valid-page accounting out of sync with L2P")
        if np.any(self.valid_count < 0) or np.any(
            self.valid_count > spec.pages_per_block
        ):
            raise MeasurementError("per-block valid count out of range")
        mapped = self.l2p[self.l2p != INVALID]
        if mapped.size != np.unique(mapped).size:
            raise MeasurementError("two logical pages map to one physical page")
        back = self.p2l[mapped]
        expect = np.flatnonzero(self.l2p != INVALID)
        if not np.array_equal(np.sort(back), np.sort(expect)):
            raise MeasurementError("P2L back-pointers inconsistent with L2P")
        if self.map_bytes() < 0:
            raise MeasurementError("mapping-table footprint went negative")

    # ------------------------------------------------------------------ #
    # Host-facing operations                                             #
    # ------------------------------------------------------------------ #

    def write_pages(self, lpns: np.ndarray) -> int:
        """Program logical pages (host write); returns internal page
        programs incurred (GC relocations plus policy merges).

        Duplicate LPNs within one call are allowed; later entries win,
        exactly as sequential writes to the same sector would.
        """
        lpns = np.asarray(lpns, dtype=np.int64)
        if lpns.size == 0:
            return 0
        if np.any((lpns < 0) | (lpns >= self.spec.logical_pages)):
            raise MeasurementError("LPN out of logical range")
        before = self.counters.internal_pages_written
        self._host_write(lpns)
        self.counters.host_pages_written += int(lpns.size)
        return self.counters.internal_pages_written - before

    def trim(self, lpns: np.ndarray) -> int:
        """NVMe Deallocate (TRIM): drop mappings; returns pages deallocated."""
        lpns = np.unique(np.asarray(lpns, dtype=np.int64))
        if lpns.size == 0:
            return 0
        if np.any((lpns < 0) | (lpns >= self.spec.logical_pages)):
            raise MeasurementError("LPN out of logical range")
        phys = self.l2p[lpns]
        live = phys != INVALID
        if not np.any(live):
            return 0
        live_phys = phys[live]
        self.p2l[live_phys] = INVALID
        np.subtract.at(
            self.valid_count, live_phys // self.spec.pages_per_block, 1
        )
        self.l2p[lpns[live]] = INVALID
        return int(np.count_nonzero(live))

    def translate(self, lpns: np.ndarray) -> np.ndarray:
        """L2P lookup for a read, with lookup-overhead accounting.

        Returns the physical page numbers (INVALID for unmapped pages)
        and charges the policy's modelled per-page translation cost to
        ``counters.lookup_ops``.
        """
        lpns = np.asarray(lpns, dtype=np.int64)
        if lpns.size and np.any((lpns < 0) | (lpns >= self.spec.logical_pages)):
            raise MeasurementError("LPN out of logical range")
        self.counters.lookup_ops += self.lookup_cost(int(lpns.size))
        return self.l2p[lpns]

    # ------------------------------------------------------------------ #
    # Policy hooks                                                       #
    # ------------------------------------------------------------------ #

    def _host_write(self, lpns: np.ndarray) -> None:
        """Default: program exactly the host pages (pure page mapping)."""
        self._program(lpns)

    def _gc_live_order(self, live_lpns: np.ndarray) -> np.ndarray:
        """Order in which GC relocates a victim's live pages.

        The default preserves physical scan order — the pre-refactor
        behaviour, pinned bit-identical for the page policy.
        """
        return live_lpns

    def map_bytes(self) -> int:
        """Current DRAM footprint of the policy's mapping structure."""
        raise NotImplementedError

    def lookup_cost(self, n_pages: int) -> int:
        """Modelled translation operations for an ``n_pages`` read."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared program / GC machinery (extracted verbatim from Ssd)        #
    # ------------------------------------------------------------------ #

    def _program(self, lpns: np.ndarray) -> None:
        spec = self.spec
        offset = 0
        while offset < lpns.size:
            room = spec.pages_per_block - self._write_ptr
            if room == 0:
                self._open_new_block()
                continue
            chunk = lpns[offset : offset + room]
            self._program_into_active(chunk)
            offset += chunk.size

    def _program_into_active(self, lpns: np.ndarray) -> None:
        spec = self.spec
        # Invalidate prior versions.  Deduplicate first: with repeated LPNs
        # in one chunk the old physical page must be invalidated exactly
        # once, then the last writer wins on the new positions.
        old = self.l2p[np.unique(lpns)]
        live = old != INVALID
        if np.any(live):
            old_pos = old[live]
            self.p2l[old_pos] = INVALID
            np.subtract.at(self.valid_count, old_pos // spec.pages_per_block, 1)
        start = self._active_block * spec.pages_per_block + self._write_ptr
        positions = start + np.arange(lpns.size, dtype=np.int64)
        # Last occurrence of each lpn wins.
        self.p2l[positions] = lpns
        self.l2p[lpns] = positions  # duplicate lpns: numpy keeps the last write
        # Stale duplicates inside this chunk: positions whose back-pointer
        # no longer points at them.
        stale = self.l2p[self.p2l[positions]] != positions
        if np.any(stale):
            self.p2l[positions[stale]] = INVALID
        self.valid_count[self._active_block] += int(np.count_nonzero(~stale))
        self._write_ptr += int(lpns.size)

    def _open_new_block(self) -> None:
        self.block_state[self._active_block] = 2  # full
        if not self._free_blocks and not self._collect_one():
            raise MeasurementError("FTL ran out of free blocks (GC starvation)")
        self._active_block = self._free_blocks.pop()
        self.block_state[self._active_block] = 1
        self._write_ptr = 0
        self._maybe_collect()

    def _maybe_collect(self) -> None:
        if self._in_gc:
            return  # relocations already run under an outer collection loop
        low = max(int(self.spec.n_blocks * self.spec.gc_low_watermark), 2)
        if len(self._free_blocks) >= low:
            return
        high = max(int(self.spec.n_blocks * self.spec.gc_high_watermark), low)
        while len(self._free_blocks) < high:
            if not self._collect_one():
                break

    def _collect_one(self) -> bool:
        """Greedy GC: relocate the fullest-of-stale block; returns success."""
        spec = self.spec
        candidates = np.flatnonzero(self.block_state == 2)
        if candidates.size == 0:
            return False
        victim = int(candidates[np.argmin(self.valid_count[candidates])])
        if self.valid_count[victim] >= spec.pages_per_block:
            return False  # nothing reclaimable anywhere
        start = victim * spec.pages_per_block
        phys = np.arange(start, start + spec.pages_per_block, dtype=np.int64)
        live_lpns = self.p2l[phys]
        live_lpns = live_lpns[live_lpns != INVALID]
        # Erase first (the mappings move, so clear victim bookkeeping), then
        # re-program the survivors through the normal write path.
        self.p2l[phys] = INVALID
        self.valid_count[victim] = 0
        self.block_state[victim] = 0
        self._free_blocks.insert(0, victim)
        self.counters.blocks_erased += 1
        self.counters.gc_runs += 1
        if live_lpns.size:
            live_lpns = self._gc_live_order(live_lpns)
            self.l2p[live_lpns] = INVALID  # re-mapped by _program below
            was_in_gc = self._in_gc
            self._in_gc = True
            try:
                self._program(live_lpns)
            finally:
                self._in_gc = was_in_gc
            self.counters.gc_pages_relocated += int(live_lpns.size)
        return True


def _require_group_pages(spec, group_pages: int) -> int:
    """Validate a group size against the flash geometry."""
    group_pages = int(group_pages)
    if group_pages < 2:
        raise ConfigurationError("group_pages must be >= 2")
    if spec.pages_per_block % group_pages != 0:
        raise ConfigurationError(
            f"group_pages={group_pages} must divide "
            f"pages_per_block={spec.pages_per_block}"
        )
    return group_pages
