"""GFTL-style group mapping: coarse entries, partial-page merge traffic.

The map stores one base entry per *group* of consecutive logical pages
plus a per-group validity bitmap — orders of magnitude smaller than a
page table.  The price is that a group must live contiguously in flash:
a host write that touches only part of a group forces the policy to
read-modify-write the group's remaining live pages alongside it (a
partial-page merge).  Random small writes therefore pay up to
``group_pages``x write amplification before GC even starts, while
sequential group-aligned writes pay nothing — the classic coarse-mapping
trade-off the JNU FTL study measures.

Placement contiguity is best-effort at erase-block boundaries: a group
whose rewrite straddles blocks (or whose pages GC scattered) cannot be
expressed as base+offset and falls back to per-page *overflow* entries,
which :meth:`map_bytes` charges honestly.
"""

from __future__ import annotations

import numpy as np

from repro.ftl.base import (
    GROUP_ENTRY_BYTES,
    INVALID,
    PAGE_ENTRY_BYTES,
    FtlPolicy,
    _require_group_pages,
)


class GroupMapFtl(FtlPolicy):
    """Block-group mapping with partial-page merges."""

    name = "group"

    def __init__(self, spec, group_pages: int = 16) -> None:
        self.group_pages = _require_group_pages(spec, group_pages)
        super().__init__(spec)

    @property
    def n_groups(self) -> int:
        return -(-self.spec.logical_pages // self.group_pages)

    def _host_write(self, lpns: np.ndarray) -> None:
        g = self.group_pages
        spec = self.spec
        host_set = np.unique(lpns)
        for grp in np.unique(host_set // g):
            base = int(grp) * g
            members = np.arange(
                base, min(base + g, spec.logical_pages), dtype=np.int64
            )
            host_mask = np.isin(members, host_set)
            live_mask = self.l2p[members] != INVALID
            merge_mask = live_mask & ~host_mask
            # Rewrite the whole group's surviving contents contiguously:
            # the host's new pages plus the untouched live pages it must
            # drag along (the merge).
            self._program(members[host_mask | merge_mask])
            self.counters.merge_pages_relocated += int(
                np.count_nonzero(merge_mask)
            )

    def _gc_live_order(self, live_lpns: np.ndarray) -> np.ndarray:
        # Relocate in LPN order so a victim's groups land contiguously
        # again instead of in historical-write order.
        return np.sort(live_lpns)

    def _contiguous_groups(self) -> np.ndarray:
        """Boolean mask per group: representable as base + offset?"""
        g = self.group_pages
        n = self.n_groups * g
        padded = np.full(n, INVALID, dtype=np.int64)
        padded[: self.spec.logical_pages] = self.l2p
        grid = padded.reshape(self.n_groups, g)
        offsets = np.arange(g, dtype=np.int64)[None, :]
        mapped = grid != INVALID
        # Base PPN implied by each mapped page; a contiguous group has one
        # distinct implied base across its mapped pages.
        implied = np.where(mapped, grid - offsets, INVALID)
        lo = np.where(mapped, implied, np.iinfo(np.int64).max).min(axis=1)
        hi = implied.max(axis=1)
        has_mapped = mapped.any(axis=1)
        return has_mapped & (lo == hi)

    def map_bytes(self) -> int:
        bitmap_bytes = -(-self.group_pages // 8)
        table = self.n_groups * (GROUP_ENTRY_BYTES + bitmap_bytes)
        contiguous = self._contiguous_groups()
        g = self.group_pages
        n = self.n_groups * g
        padded = np.full(n, INVALID, dtype=np.int64)
        padded[: self.spec.logical_pages] = self.l2p
        mapped = (padded != INVALID).reshape(self.n_groups, g)
        overflow_pages = int(mapped[~contiguous].sum())
        return table + overflow_pages * PAGE_ENTRY_BYTES

    def lookup_cost(self, n_pages: int) -> int:
        # Group entry + bitmap probe per page.
        return 2 * n_pages
