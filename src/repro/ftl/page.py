"""Pure page-mapping FTL — the pre-refactor behaviour, pinned.

One flat L2P entry per logical page: maximum mapping-table footprint,
single-operation lookups, and no merge traffic — host writes land
exactly where the write pointer sits and only garbage collection adds
internal work.  This is the policy the paper's Samsung 980 PRO study
models, and the one ``tests/data/ftl_page_pin.json`` pins bit-identical
to the tree before the strategy extraction.
"""

from __future__ import annotations

from repro.ftl.base import PAGE_ENTRY_BYTES, FtlPolicy


class PageMapFtl(FtlPolicy):
    """Flat per-page L2P table with greedy garbage collection."""

    name = "page"

    def map_bytes(self) -> int:
        # The table is dense: every logical page has an entry, mapped or
        # not — footprint is geometry, not occupancy.
        return self.spec.logical_pages * PAGE_ENTRY_BYTES

    def lookup_cost(self, n_pages: int) -> int:
        return n_pages  # one array index per page
