"""Hybrid page/group FTL with a delta-encoded journal.

Pages map at page granularity (host writes land wherever the write
pointer sits, like the page policy), but the *representation* is
hierarchical: one base PPN per fixed-size group plus a journal of
per-page deltas for pages that deviate from ``base + offset``.  Semi-
sequential traffic (small gaps, short strides) keeps deltas sparse and
the map tiny; scattered overwrites grow the journal.  When a group's
journal exceeds ``compact_threshold`` deviating pages, the policy
rewrites the group's live pages contiguously — journal *compaction* —
paying internal writes to reset its deltas to zero.

Compaction is the hybrid's merge traffic: cheaper than the group
policy's every-write merges (it amortises over many writes) but not
free like the page policy, landing its write amplification between the
two.
"""

from __future__ import annotations

import numpy as np

from repro.ftl.base import (
    DELTA_ENTRY_BYTES,
    GROUP_ENTRY_BYTES,
    INVALID,
    FtlPolicy,
    _require_group_pages,
)


class HybridDeltaFtl(FtlPolicy):
    """Page map plus delta-encoded journal with threshold compaction."""

    name = "hybrid"

    def __init__(
        self, spec, group_pages: int = 16, compact_threshold: int | None = None
    ) -> None:
        self.group_pages = _require_group_pages(spec, group_pages)
        if compact_threshold is None:
            compact_threshold = self.group_pages // 2
        if not 1 <= compact_threshold <= self.group_pages:
            raise ValueError("compact_threshold must be in 1..group_pages")
        self.compact_threshold = int(compact_threshold)
        super().__init__(spec)

    @property
    def n_groups(self) -> int:
        return -(-self.spec.logical_pages // self.group_pages)

    def _group_members(self, grp: int) -> np.ndarray:
        base = grp * self.group_pages
        return np.arange(
            base,
            min(base + self.group_pages, self.spec.logical_pages),
            dtype=np.int64,
        )

    def _group_deltas(self, members: np.ndarray) -> int:
        """Pages of one group whose PPN deviates from base + offset.

        The base is anchored at the group's first mapped page, as the
        journal would store it; unmapped pages carry no delta entry.
        """
        phys = self.l2p[members]
        mapped = phys != INVALID
        if not np.any(mapped):
            return 0
        offsets = members - members[0]
        implied = phys - offsets
        base = implied[mapped][0]
        return int(np.count_nonzero(mapped & (implied != base)))

    def _host_write(self, lpns: np.ndarray) -> None:
        self._program(lpns)
        # Threshold compaction on the groups this write touched.  A
        # compaction's own programs never re-enter here (only host writes
        # do), so one pass over the touched set terminates.
        for grp in np.unique(lpns // self.group_pages):
            members = self._group_members(int(grp))
            if self._group_deltas(members) < self.compact_threshold:
                continue
            live = members[self.l2p[members] != INVALID]
            self._program(live)
            self.counters.merge_pages_relocated += int(live.size)

    def _gc_live_order(self, live_lpns: np.ndarray) -> np.ndarray:
        # LPN order lays groups back down with zero deltas.
        return np.sort(live_lpns)

    def _journal_entries(self) -> int:
        g = self.group_pages
        n = self.n_groups * g
        padded = np.full(n, INVALID, dtype=np.int64)
        padded[: self.spec.logical_pages] = self.l2p
        grid = padded.reshape(self.n_groups, g)
        mapped = grid != INVALID
        implied = np.where(mapped, grid - np.arange(g, dtype=np.int64)[None, :], 0)
        # Base per group = implied PPN of the first mapped page.
        first = np.argmax(mapped, axis=1)
        base = implied[np.arange(self.n_groups), first]
        deltas = mapped & (implied != base[:, None])
        # Groups with no mapped page contribute nothing (argmax returned 0).
        deltas[~mapped.any(axis=1)] = False
        return int(np.count_nonzero(deltas))

    def map_bytes(self) -> int:
        return (
            self.n_groups * GROUP_ENTRY_BYTES
            + self._journal_entries() * DELTA_ENTRY_BYTES
        )

    def lookup_cost(self, n_pages: int) -> int:
        # Base-table index plus a journal probe per page.
        return 2 * n_pages
