"""CCFTL-style run-length-compressed L2P mapping.

Placement is page-granular, exactly like the page policy, but the map is
stored as extents: maximal runs where consecutive logical pages sit on
consecutive physical pages collapse into one ``(lpn, ppn, len)`` entry.
A freshly preconditioned (sequentially written) drive compresses to a
handful of entries; random overwrites shatter runs and the footprint
converges toward the page table's.  Lookups binary-search the extent
list, so the modelled per-page cost grows with fragmentation.

To keep runs alive longer the policy makes one behavioural change:
garbage collection relocates a victim's live pages in *LPN order*, so
surviving fragments of a run are laid back down contiguously instead of
in historical-write order.  Write amplification therefore drifts
slightly from the page policy's under the same workload — same host
contents, different internal traffic — which is exactly the per-policy
axis the Fig. 12 extension measures.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ftl.base import INVALID, RUN_ENTRY_BYTES, FtlPolicy


class CompressedMapFtl(FtlPolicy):
    """Run-length-compressed L2P favouring sequential runs."""

    name = "compressed"

    def _gc_live_order(self, live_lpns: np.ndarray) -> np.ndarray:
        return np.sort(live_lpns)

    def run_count(self) -> int:
        """Number of extents in the compressed map (>= 1 iff mapped)."""
        mapped = np.flatnonzero(self.l2p != INVALID)
        if mapped.size == 0:
            return 0
        phys = self.l2p[mapped]
        # A new run starts wherever the logical index or the physical
        # address breaks the +1 stride.
        breaks = (np.diff(mapped) != 1) | (np.diff(phys) != 1)
        return int(np.count_nonzero(breaks)) + 1

    def map_bytes(self) -> int:
        return self.run_count() * RUN_ENTRY_BYTES

    def lookup_cost(self, n_pages: int) -> int:
        # Binary search over the extent list per page.
        runs = self.run_count()
        return n_pages * max(int(math.ceil(math.log2(runs + 1))), 1)
