"""The calibration procedure itself.

``calibrate_slot`` reproduces the paper's command-line-guided flow for one
module: connect a known, unloaded supply; average 128 k samples; store the
measured zero-current reference voltage for the current sensor and the
measured gain for the voltage sensor into the EEPROM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CalibrationError
from repro.dut.base import ConstantRail
from repro.hardware.baseboard import Baseboard
from repro.hardware.eeprom import VirtualEeprom

#: The paper averages 128 k samples per calibration point.
DEFAULT_CALIBRATION_SAMPLES = 128 * 1024


@dataclass(frozen=True)
class CalibrationResult:
    """Corrections determined for one module slot."""

    slot: int
    vref_volts: float  # measured zero-current output of the Hall sensor
    voltage_gain: float  # measured ADC volts per input volt
    reference_voltage: float
    n_samples: int

    @property
    def offset_correction_volts(self) -> float:
        """How far the measured reference sits from the nominal midpoint."""
        return self.vref_volts - 3.3 / 2.0


def calibrate_slot(
    baseboard: Baseboard,
    eeprom: VirtualEeprom,
    slot: int,
    reference_voltage: float | None = None,
    n_samples: int = DEFAULT_CALIBRATION_SAMPLES,
    start_time: float = 0.0,
) -> CalibrationResult:
    """Calibrate one populated slot and store the corrections in EEPROM.

    Args:
        baseboard: the device's baseboard (modules must be attached).
        eeprom: the device EEPROM to receive the corrections.
        slot: slot index to calibrate.
        reference_voltage: known supply voltage applied to the module; if
            None the module's nominal voltage is used.
        n_samples: number of averaged 20 kHz samples to collect.
        start_time: simulated time at which the capture begins.

    Returns:
        The determined corrections.

    Raises:
        CalibrationError: if the slot is empty or results are out of range.
    """
    channel = next(
        (c for c in baseboard.populated_slots() if c.slot == slot), None
    )
    if channel is None:
        raise CalibrationError(f"slot {slot} is not populated; cannot calibrate")
    if n_samples < 2:
        raise CalibrationError("calibration needs at least two samples")
    spec = channel.module.spec
    if reference_voltage is None:
        reference_voltage = spec.nominal_voltage_v
    if reference_voltage <= 0:
        raise CalibrationError("reference voltage must be positive")

    previous_rail = channel.rail
    channel.rail = ConstantRail(volts=reference_voltage, amps=0.0)
    try:
        codes = baseboard.averaged_codes(start_time, n_samples)
    finally:
        channel.rail = previous_rail

    lsb = baseboard.adc.lsb
    vref = float((codes[:, 2 * slot].mean() + 0.5) * lsb)
    volts_reading = float((codes[:, 2 * slot + 1].mean() + 0.5) * lsb)
    gain = volts_reading / reference_voltage

    # Sanity bounds: vref should be near midscale, gain near the datasheet
    # value; anything far off means a miswired bench.
    if not 0.25 * 3.3 < vref < 0.75 * 3.3:
        raise CalibrationError(
            f"measured reference {vref:.3f} V is far from midscale; "
            "is current really zero?"
        )
    if not 0.5 * spec.voltage_gain < gain < 1.5 * spec.voltage_gain:
        raise CalibrationError(
            f"measured voltage gain {gain:.4f} is far from the datasheet "
            f"value {spec.voltage_gain:.4f}"
        )

    eeprom.update(2 * slot, vref=vref)
    eeprom.update(2 * slot + 1, vref=0.0, slope=gain)
    return CalibrationResult(
        slot=slot,
        vref_volts=vref,
        voltage_gain=gain,
        reference_voltage=reference_voltage,
        n_samples=n_samples,
    )


def calibrate_all(
    baseboard: Baseboard,
    eeprom: VirtualEeprom,
    n_samples: int = DEFAULT_CALIBRATION_SAMPLES,
    reference_voltages: dict[int, float] | None = None,
) -> list[CalibrationResult]:
    """Calibrate every populated slot; returns one result per slot."""
    reference_voltages = reference_voltages or {}
    results = []
    for channel in baseboard.populated_slots():
        results.append(
            calibrate_slot(
                baseboard,
                eeprom,
                channel.slot,
                reference_voltage=reference_voltages.get(channel.slot),
                n_samples=n_samples,
            )
        )
    return results
