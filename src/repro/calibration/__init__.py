"""One-time sensor-module calibration (paper, Section III-D).

With the module unloaded (no current flowing) and a known supply voltage
applied, 128 k samples are averaged to determine the Hall sensor's offset
error and the voltage path's gain error; the corrections are then stored in
the device EEPROM, after which no recalibration is needed (Section IV-B
demonstrates long-term stability).
"""

from repro.calibration.procedure import (
    CalibrationResult,
    calibrate_all,
    calibrate_slot,
    DEFAULT_CALIBRATION_SAMPLES,
)
from repro.calibration.verification import (
    VerificationPoint,
    VerificationReport,
    verify_all,
    verify_slot,
)

__all__ = [
    "CalibrationResult",
    "calibrate_all",
    "calibrate_slot",
    "DEFAULT_CALIBRATION_SAMPLES",
    "VerificationPoint",
    "VerificationReport",
    "verify_all",
    "verify_slot",
]
