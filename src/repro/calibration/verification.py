"""Post-calibration verification sweep.

The paper's calibration flow is guided by scripts and verified with the
bench sweep of Fig. 4.  This module packages that check: sweep the load
across the module's range, compare the measured power against the bench
truth, and pass/fail against the module's Table I worst-case bounds.
``psconfig --verify`` runs it from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.accuracy import worst_case_accuracy
from repro.common.errors import CalibrationError
from repro.core.sources import convert_codes
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail
from repro.hardware.baseboard import Baseboard
from repro.hardware.eeprom import VirtualEeprom


@dataclass(frozen=True)
class VerificationPoint:
    """One sweep point of the verification."""

    amps: float
    expected_watts: float
    mean_error_watts: float
    max_abs_error_watts: float


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a verification sweep for one module slot."""

    slot: int
    points: tuple[VerificationPoint, ...]
    bound_watts: float  # the module's Table I worst case

    @property
    def worst_mean_error(self) -> float:
        return max(abs(p.mean_error_watts) for p in self.points)

    @property
    def worst_sample_error(self) -> float:
        return max(p.max_abs_error_watts for p in self.points)

    @property
    def passed(self) -> bool:
        """Mean errors must sit far inside the worst-case noise bound.

        The mean over a long capture averages the noise away, so a
        correctly calibrated module keeps it below a quarter of the
        single-sample worst case; individual samples may graze ~1.5x the
        3 sigma bound over a long capture.
        """
        return (
            self.worst_mean_error < 0.25 * self.bound_watts
            and self.worst_sample_error < 1.5 * self.bound_watts
        )


def verify_slot(
    baseboard: Baseboard,
    eeprom: VirtualEeprom,
    slot: int,
    n_points: int = 5,
    n_samples: int = 8 * 1024,
    supply_volts: float | None = None,
) -> VerificationReport:
    """Sweep a calibrated slot across its range and check the error budget.

    Raises:
        CalibrationError: if the slot is empty.
    """
    channel = next((c for c in baseboard.populated_slots() if c.slot == slot), None)
    if channel is None:
        raise CalibrationError(f"slot {slot} is not populated; cannot verify")
    spec = channel.module.spec
    volts = spec.nominal_voltage_v if supply_volts is None else supply_volts
    accuracy = worst_case_accuracy(spec)
    supply = LabSupply(volts, source_impedance_ohms=0.0)
    sweep = np.linspace(-spec.max_current_a, spec.max_current_a, n_points)

    previous_rail = channel.rail
    points = []
    try:
        for amps in sweep:
            load = ElectronicLoad()
            load.set_current(float(amps))
            channel.rail = LoadedSupplyRail(supply, load)
            # Capture after the turn-on slew has settled.
            codes = baseboard.averaged_codes(0.01, n_samples)
            values, _ = convert_codes(codes, eeprom.configs)
            power = values[:, 2 * slot] * values[:, 2 * slot + 1]
            expected = volts * float(amps)
            error = power - expected
            points.append(
                VerificationPoint(
                    amps=float(amps),
                    expected_watts=expected,
                    mean_error_watts=float(error.mean()),
                    max_abs_error_watts=float(np.abs(error).max()),
                )
            )
    finally:
        channel.rail = previous_rail
    return VerificationReport(
        slot=slot, points=tuple(points), bound_watts=accuracy.power_error_w
    )


def verify_all(
    baseboard: Baseboard, eeprom: VirtualEeprom, **kwargs
) -> list[VerificationReport]:
    """Verify every populated slot."""
    return [
        verify_slot(baseboard, eeprom, channel.slot, **kwargs)
        for channel in baseboard.populated_slots()
    ]
