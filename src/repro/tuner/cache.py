"""Tuning cache files (Kernel Tuner's cachefile feature).

Kernel Tuner persists every benchmarked configuration to a JSON cache so
interrupted tuning runs resume without re-measuring, and so stored results
can be re-analysed later.  This module implements the same idea for this
tuner: a JSON-lines file keyed by (configuration, clock), a cache-aware
runner wrapper, and load/save helpers.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ConfigurationError
from repro.tuner.runner import BenchmarkRunner, ConfigResult
from repro.tuner.searchspace import config_key

CACHE_VERSION = 1


def _point_key(config: dict, clock_mhz: float) -> str:
    return f"{config_key(config)}@{clock_mhz:g}"


def _encode_value(value):
    if isinstance(value, tuple):
        return {"__tuple__": list(value)}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(value["__tuple__"])
    return value


def result_to_record(result: ConfigResult) -> dict:
    return {
        "config": {k: _encode_value(v) for k, v in result.config.items()},
        "clock_mhz": result.clock_mhz,
        "exec_times": list(result.exec_times),
        "energies": list(result.energies),
        "flops": result.flops,
    }


def record_to_result(record: dict) -> ConfigResult:
    return ConfigResult(
        config={k: _decode_value(v) for k, v in record["config"].items()},
        clock_mhz=float(record["clock_mhz"]),
        exec_times=tuple(record["exec_times"]),
        energies=tuple(record["energies"]),
        flops=float(record["flops"]),
    )


class TuningCache:
    """A JSON-lines tuning cache with append-on-measure semantics."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, ConfigResult] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with open(self.path) as handle:
            header = handle.readline()
            if not header:
                return
            meta = json.loads(header)
            if meta.get("cache_version") != CACHE_VERSION:
                raise ConfigurationError(
                    f"cache {self.path} has version {meta.get('cache_version')}, "
                    f"expected {CACHE_VERSION}"
                )
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                result = record_to_result(json.loads(line))
                self._entries[_point_key(result.config, result.clock_mhz)] = result

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, point: tuple[dict, float]) -> bool:
        config, clock = point
        return _point_key(config, clock) in self._entries

    def get(self, config: dict, clock_mhz: float) -> ConfigResult | None:
        return self._entries.get(_point_key(config, clock_mhz))

    def put(self, result: ConfigResult) -> None:
        key = _point_key(result.config, result.clock_mhz)
        is_new = key not in self._entries
        self._entries[key] = result
        if is_new:
            self._append(result)

    def _append(self, result: ConfigResult) -> None:
        new_file = not self.path.exists()
        with open(self.path, "a") as handle:
            if new_file:
                handle.write(json.dumps({"cache_version": CACHE_VERSION}) + "\n")
            handle.write(json.dumps(result_to_record(result)) + "\n")

    def results(self) -> list[ConfigResult]:
        return list(self._entries.values())


class CachedRunner:
    """Wraps a :class:`BenchmarkRunner` with a tuning cache.

    Cache hits cost no simulated tuning time — which is the whole point of
    the feature: an interrupted 5120-point run resumes where it stopped.
    """

    def __init__(self, runner: BenchmarkRunner, cache: TuningCache) -> None:
        self.runner = runner
        self.cache = cache
        self.hits = 0
        self.misses = 0

    @property
    def accounting(self):
        return self.runner.accounting

    def run_config(self, config: dict, clock_mhz: float) -> ConfigResult:
        cached = self.cache.get(config, clock_mhz)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = self.runner.run_config(config, clock_mhz)
        self.cache.put(result)
        return result
