"""Top-level auto-tuning entry point (the Kernel Tuner ``tune_kernel``).

Enumerates a search space crossed with a set of locked GPU clocks, runs
every point through the benchmark runner, and summarises the outcome:
best-performance and best-efficiency configurations, the Pareto front
over (TFLOP/s, TFLOP/J), and the accounted tuning time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.pareto import pareto_front
from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream
from repro.tuner.observers import EnergyObserver, TrueEnergyObserver
from repro.tuner.runner import BenchmarkRunner, ConfigResult, TimeAccounting
from repro.tuner.searchspace import SearchSpace


@dataclass
class TuningResult:
    """Everything a tuning run produced."""

    results: list[ConfigResult]
    accounting: TimeAccounting

    @property
    def tuning_seconds(self) -> float:
        return self.accounting.total_s

    def _metric_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        tflops = np.array([r.tflops for r in self.results])
        eff = np.array([r.tflop_per_joule for r in self.results])
        return tflops, eff

    def pareto(self) -> list[ConfigResult]:
        """Pareto-optimal results, fastest first."""
        tflops, eff = self._metric_arrays()
        return [self.results[i] for i in pareto_front(tflops, eff)]

    @property
    def fastest(self) -> ConfigResult:
        return max(self.results, key=lambda r: r.tflops)

    @property
    def most_efficient(self) -> ConfigResult:
        return max(self.results, key=lambda r: r.tflop_per_joule)

    def summary(self) -> dict:
        """Headline numbers in the form the paper quotes them."""
        fastest = self.fastest
        efficient = self.most_efficient
        return {
            "configs": len(self.results),
            "tuning_seconds": self.tuning_seconds,
            "fastest_tflops": fastest.tflops,
            "fastest_tflop_per_j": fastest.tflop_per_joule,
            "most_efficient_tflop_per_j": efficient.tflop_per_joule,
            "most_efficient_tflops": efficient.tflops,
            "efficiency_gain": efficient.tflop_per_joule / fastest.tflop_per_joule - 1.0,
            "slowdown": 1.0 - efficient.tflops / fastest.tflops,
        }


def tune(
    kernel,
    search_space: SearchSpace,
    clocks_mhz: tuple[float, ...],
    observer: EnergyObserver | None = None,
    trials: int = 7,
    strategy: str = "brute_force",
    max_configs: int | None = None,
    seed: int = 0,
    compile_time_s: float = 3.2,
    objective: str = "time",
) -> TuningResult:
    """Auto-tune a kernel over a search space and a set of clocks.

    Args:
        kernel: kernel model (``flops`` + ``execute``).
        search_space: tunable parameters and restrictions.
        clocks_mhz: locked clock frequencies to cross with the space.
        observer: energy measurement strategy (oracle if None).
        trials: repetitions per configuration.
        strategy: "brute_force" (every point), "random_sample", or
            "hill_climbing" (greedy local search with restarts; pass the
            evaluation budget via ``max_configs`` and pick the objective
            with ``objective``).
        max_configs: cap on evaluated (config, clock) points; required for
            "random_sample".
        seed: reproducibility seed for trial noise / sampling.
    """
    if not clocks_mhz:
        raise ConfigurationError("need at least one clock frequency")
    configs = search_space.enumerate()
    if not configs:
        raise ConfigurationError("search space has no valid configurations")
    points = [(cfg, clock) for cfg in configs for clock in clocks_mhz]

    if strategy == "hill_climbing":
        if max_configs is None:
            raise ConfigurationError("hill_climbing requires max_configs")
        from repro.tuner.strategies import hill_climb

        runner = BenchmarkRunner(
            kernel=kernel,
            observer=observer or TrueEnergyObserver(),
            trials=trials,
            seed=seed,
            compile_time_s=compile_time_s,
        )
        results = hill_climb(
            kernel,
            search_space,
            clocks_mhz,
            runner,
            objective=objective,
            max_evaluations=max_configs,
            seed=seed,
        )
        return TuningResult(results=results, accounting=runner.accounting)

    if strategy == "brute_force":
        if max_configs is not None:
            points = points[:max_configs]
    elif strategy == "random_sample":
        if max_configs is None:
            raise ConfigurationError("random_sample requires max_configs")
        rng = RngStream(seed, "tuning/sample")
        idx = rng.generator.choice(len(points), size=min(max_configs, len(points)), replace=False)
        points = [points[int(i)] for i in np.sort(idx)]
    else:
        raise ConfigurationError(f"unknown strategy {strategy!r}")

    runner = BenchmarkRunner(
        kernel=kernel,
        observer=observer or TrueEnergyObserver(),
        trials=trials,
        seed=seed,
        compile_time_s=compile_time_s,
    )
    results = [runner.run_config(cfg, clock) for cfg, clock in points]
    return TuningResult(results=results, accounting=runner.accounting)
