"""Kernel performance/energy models for auto-tuning.

The centrepiece is the Tensor-Core Beamformer (Oostrum et al., IPDPS'25):
a complex half-precision matrix multiplication running on tensor/matrix
cores, with the tunable parameters the paper lists (Section V-A2): thread
block dimensions, fragments per block and per warp, double buffering, and
the GPU clock frequency.  The model maps a configuration to execution
time and board power:

* throughput = peak(clock) x efficiency(config), where the efficiency
  factors encode the usual tiling/occupancy/latency-hiding trade-offs and
  multiply to 1 for the best variant;
* board power follows an affine-in-f*V(f)^2 curve fitted per GPU so the
  published Pareto endpoints are reproduced (RTX 4000 Ada: 80.4 TFLOP/s at
  0.83 TFLOP/J fastest, 0.935 TFLOP/J at 63.1 TFLOP/s most efficient).

The per-GPU constants live in :data:`BEAMFORMER_TARGETS`; EXPERIMENTS.md
records how closely the resulting experiment matches the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream
from repro.dut.gpu import GpuSpec, gpu_spec
from repro.tuner.searchspace import SearchSpace, config_hash01

#: Problem size of the paper's beamformer case study.
BEAMFORMER_M = 4096
BEAMFORMER_N = 4096
BEAMFORMER_K = 4096


@dataclass(frozen=True)
class PowerCurve:
    """Board power under kernel load as a function of clock and utilisation.

    ``P(f, u) = static + dyn * f * (v0 + v1*f)^2 * (0.35 + 0.65*u)`` with
    f in MHz and u the config's efficiency relative to the best variant.
    The three constants are fitted so the best variant reproduces the
    published power at the published operating points.
    """

    static_watts: float
    dyn_coeff: float
    v0: float
    v1: float

    def power(self, clock_mhz: float, util_rel: float = 1.0) -> float:
        v = self.v0 + self.v1 * clock_mhz
        dyn = self.dyn_coeff * clock_mhz * v * v
        return self.static_watts + dyn * (0.35 + 0.65 * min(max(util_rel, 0.0), 1.0))


@dataclass(frozen=True)
class BeamformerTarget:
    """One GPU's beamformer tuning setup: clocks, efficiency, power."""

    gpu_key: str
    clocks_mhz: tuple[float, ...]
    best_efficiency: float  # fraction of tensor peak the best variant reaches
    power_curve: PowerCurve

    @property
    def spec(self) -> GpuSpec:
        return gpu_spec(self.gpu_key)

    def peak_tflops(self, clock_mhz: float) -> float:
        spec = self.spec
        return spec.n_sm * spec.tensor_flops_per_sm_cycle * clock_mhz * 1e6 / 1e12


BEAMFORMER_TARGETS: dict[str, BeamformerTarget] = {
    # Fitted so that at 2100 MHz the best variant reaches 80.4 TFLOP/s at
    # 97 W (= 0.83 TFLOP/J) and at 1650 MHz 63.2 TFLOP/s at 67.5 W
    # (= 0.935 TFLOP/J), the paper's two Pareto endpoints.
    "rtx4000ada": BeamformerTarget(
        gpu_key="rtx4000ada",
        clocks_mhz=tuple(float(f) for f in range(1200, 2101, 100)),
        best_efficiency=0.5408,
        power_curve=PowerCurve(static_watts=53.5, dyn_coeff=0.02071, v0=-0.68, v1=8e-4),
    ),
    # W7700 matrix cores (the beamformer also runs on AMD — Section V-A2).
    # Best variant ~43 TFLOP/s at ~140 W near the top clock; efficiency
    # peaks around 2.0 GHz.
    "w7700": BeamformerTarget(
        gpu_key="w7700",
        clocks_mhz=tuple(float(f) for f in range(1700, 2601, 100)),
        best_efficiency=0.35,
        power_curve=PowerCurve(static_watts=74.2, dyn_coeff=0.0263, v0=-0.5, v1=6e-4),
    ),
    # Orin: 10 clocks across the GPU's DVFS range; best variant ~21 TFLOP/s
    # at ~35 W total system power, efficiency peaking near 950 MHz.
    "jetson_orin_gpu": BeamformerTarget(
        gpu_key="jetson_orin_gpu",
        clocks_mhz=(580.0, 660.0, 740.0, 820.0, 900.0, 980.0, 1060.0, 1140.0, 1220.0, 1300.0),
        best_efficiency=0.50,
        power_curve=PowerCurve(static_watts=16.3, dyn_coeff=0.0153, v0=-0.2, v1=9e-4),
    ),
}


def beamformer_search_space() -> SearchSpace:
    """The paper's 512-variant beamformer space.

    9 block-dimension choices (one removed by the 1024-threads-per-block
    restriction), 4 fragments-per-block, 4 fragments-per-warp, double
    buffering on/off, and 2 unroll factors: 8 * 4 * 4 * 2 * 2 = 512 valid
    code variants, matching Section V-A2.
    """
    return SearchSpace(
        tune_params={
            "block_dim": [
                (16, 8),
                (16, 16),
                (32, 8),
                (32, 16),
                (32, 32),
                (64, 8),
                (64, 16),
                (128, 8),
                (128, 16),  # 2048 threads: pruned by the restriction
            ],
            "fragments_per_block": [1, 2, 4, 8],
            "fragments_per_warp": [1, 2, 4, 8],
            "double_buffering": [0, 1],
            "unroll": [1, 2],
        },
        restrictions=[lambda c: c["block_dim"][0] * c["block_dim"][1] <= 1024],
    )


_FB_FACTOR = {1: 0.80, 2: 0.92, 4: 1.00, 8: 0.94}
_FW_FACTOR = {1: 0.86, 2: 1.00, 4: 0.97, 8: 0.85}
_THREADS_FACTOR = {128: 0.88, 256: 0.96, 512: 1.00, 1024: 0.92}
_UNROLL_FACTOR = {1: 0.97, 2: 1.00}


@dataclass(frozen=True)
class KernelRun:
    """Ground truth of one simulated kernel execution."""

    exec_time_s: float
    tflops: float
    board_watts: float
    utilization: float


class TensorCoreBeamformer:
    """Performance/energy model of the Tensor-Core Beamformer kernel."""

    def __init__(
        self,
        target: BeamformerTarget | str = "rtx4000ada",
        m: int = BEAMFORMER_M,
        n: int = BEAMFORMER_N,
        k: int = BEAMFORMER_K,
        trial_noise: float = 0.008,
    ) -> None:
        if isinstance(target, str):
            try:
                target = BEAMFORMER_TARGETS[target]
            except KeyError:
                known = ", ".join(sorted(BEAMFORMER_TARGETS))
                raise ConfigurationError(
                    f"no beamformer target for {target!r}; known: {known}"
                )
        self.target = target
        self.m, self.n, self.k = m, n, k
        self.trial_noise = trial_noise

    @property
    def flops(self) -> float:
        """Total real FLOPs: a complex MAC is 8 real operations."""
        return 8.0 * self.m * self.n * self.k

    def efficiency(self, config: dict) -> float:
        """Fraction of tensor peak this code variant achieves (0..1]."""
        bx, by = config["block_dim"]
        threads = bx * by
        factor = _THREADS_FACTOR.get(threads, 0.80)
        if bx < 32:  # poor global-memory coalescing
            factor *= 0.93
        fb = config["fragments_per_block"]
        fw = config["fragments_per_warp"]
        factor *= _FB_FACTOR[fb] * _FW_FACTOR[fw]
        if config["double_buffering"]:
            # Hides smem latency for large tiles, costs smem for small ones.
            factor *= 1.0 if fb >= 4 else 0.97
        else:
            factor *= 0.94 if fb >= 4 else 1.0
        factor *= _UNROLL_FACTOR[config["unroll"]]
        # Stable per-variant jitter: real variants differ in ways no simple
        # factor model captures.
        factor *= 0.985 + 0.025 * config_hash01(config, salt="beamformer")
        return self.target.best_efficiency * min(factor, 1.0)

    def execute(
        self, config: dict, clock_mhz: float, rng: RngStream | None = None
    ) -> KernelRun:
        """Simulate one kernel execution at a locked clock."""
        if clock_mhz <= 0:
            raise ConfigurationError("clock must be positive")
        eff = self.efficiency(config)
        tflops = eff * self.target.peak_tflops(clock_mhz)
        if rng is not None:
            tflops *= 1.0 + float(rng.normal(0.0, self.trial_noise))
        exec_time = self.flops / (tflops * 1e12)
        util_rel = eff / self.target.best_efficiency
        watts = self.target.power_curve.power(clock_mhz, util_rel)
        return KernelRun(
            exec_time_s=exec_time,
            tflops=tflops,
            board_watts=watts,
            utilization=util_rel,
        )


class MemoryBoundStencil:
    """A bandwidth-bound kernel model (the contrasting class in [22]).

    Schoonhoven et al.'s model-steered tuning — the method the paper uses
    to narrow the clock range — rests on kernel classes having different
    clock optima: a compute-bound kernel slows proportionally with clock,
    while a *memory-bound* kernel's throughput saturates once the memory
    system limits it, so clocks above the knee burn power for no speedup
    and the energy-optimal clock sits much lower.

    Tunables: ``tile`` (spatial blocking) and ``vector`` (load width).
    """

    #: Fraction of the boost clock where the memory system saturates.
    MEMORY_KNEE_FRACTION = 0.55

    def __init__(
        self,
        target: BeamformerTarget | str = "rtx4000ada",
        n: int = 8192,
        trial_noise: float = 0.01,
    ) -> None:
        self._inner = TensorCoreBeamformer(target, m=n, n=n, k=64)
        self.trial_noise = trial_noise

    @property
    def target(self) -> BeamformerTarget:
        return self._inner.target

    @property
    def flops(self) -> float:
        return self._inner.flops / 8.0  # stencil: few flops per byte

    @staticmethod
    def search_space() -> SearchSpace:
        return SearchSpace(
            tune_params={"tile": [1, 2, 4], "vector": [1, 2, 4]},
        )

    def execute(self, config: dict, clock_mhz: float, rng=None) -> KernelRun:
        tile_factor = {1: 0.75, 2: 1.0, 4: 0.92}[config["tile"]]
        vector_factor = {1: 0.85, 2: 0.96, 4: 1.0}[config["vector"]]
        eff = self.target.best_efficiency * tile_factor * vector_factor
        spec = self.target.spec
        knee_mhz = self.MEMORY_KNEE_FRACTION * spec.boost_clock_mhz
        # Compute throughput scales with clock; the memory system caps it.
        compute_tflops = eff * self.target.peak_tflops(clock_mhz)
        memory_cap = eff * self.target.peak_tflops(knee_mhz)
        tflops = min(compute_tflops, memory_cap)
        if rng is not None:
            tflops *= 1.0 + float(rng.normal(0.0, self.trial_noise))
        exec_time = self.flops / (tflops * 1e12)
        # Power still follows the clock: stalled SMs are not free.
        util = 0.45 + 0.55 * min(tflops / max(compute_tflops, 1e-12), 1.0)
        watts = self.target.power_curve.power(clock_mhz, util * eff / self.target.best_efficiency)
        return KernelRun(exec_time, tflops, watts, util)


class SyntheticGemmKernel:
    """A small dense-GEMM model used by examples and tests.

    Tunables: ``tile`` (NxN register tile) and ``threads`` per block.  Much
    simpler than the beamformer — handy for demonstrating the tuner without
    the full 512-variant space.
    """

    def __init__(self, target: BeamformerTarget | str = "rtx4000ada", n: int = 4096):
        self._inner = TensorCoreBeamformer(target, m=n, n=n, k=n)

    @property
    def flops(self) -> float:
        return self._inner.flops / 4.0  # real-valued GEMM

    @property
    def target(self) -> BeamformerTarget:
        return self._inner.target

    @staticmethod
    def search_space() -> SearchSpace:
        return SearchSpace(
            tune_params={"tile": [1, 2, 4, 8], "threads": [128, 256, 512]},
        )

    def execute(self, config: dict, clock_mhz: float, rng=None) -> KernelRun:
        tile_factor = {1: 0.70, 2: 0.88, 4: 1.0, 8: 0.90}[config["tile"]]
        thread_factor = {128: 0.90, 256: 1.0, 512: 0.97}[config["threads"]]
        eff = self.target.best_efficiency * tile_factor * thread_factor
        tflops = eff * self.target.peak_tflops(clock_mhz)
        if rng is not None:
            tflops *= 1.0 + float(rng.normal(0.0, 0.01))
        exec_time = self.flops / (tflops * 1e12)
        util = eff / self.target.best_efficiency
        watts = self.target.power_curve.power(clock_mhz, util)
        return KernelRun(exec_time, tflops, watts, util)
