"""Model-steered clock-range narrowing (Schoonhoven et al., PMBS'22).

The paper tunes only 10 clock frequencies because "the performance model
presented in [22]" narrows the GPU's full DVFS menu down to the range
worth tuning (Section V-A2).  That method is reproduced here:

1. benchmark a reference configuration at a handful of probe clocks,
2. fit power as a low-order polynomial in frequency (the physical
   P = static + c * f * V(f)^2 curve with a linear V-f relation is cubic
   in f) and throughput as proportional to frequency,
3. locate the frequency minimising the chosen energy objective on the
   fitted model,
4. return a tuning range bracketing that optimum, snapped to the DVFS
   menu.

The win: instead of tuning 512 variants across ~50 supported clocks, the
tuner explores 512 x 10 — the paper's 5120-point space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.tuner.observers import EnergyObserver, TrueEnergyObserver


@dataclass(frozen=True)
class ClockRangeRecommendation:
    """Outcome of the model-steered narrowing."""

    probe_clocks_mhz: tuple[float, ...]
    power_coefficients: tuple[float, ...]  # polynomial, highest degree first
    throughput_per_mhz: float  # fitted TFLOP/s per MHz in the linear region
    throughput_cap_tflops: float  # memory-system saturation ceiling
    optimal_clock_mhz: float  # model-predicted energy-objective optimum
    recommended_clocks_mhz: tuple[float, ...]

    def predicted_power(self, clock_mhz: float) -> float:
        return float(np.polyval(self.power_coefficients, clock_mhz))

    def predicted_throughput_tflops(self, clock_mhz: float) -> float:
        """Saturating throughput model: compute-limited, then memory-capped."""
        return float(min(self.throughput_per_mhz * clock_mhz, self.throughput_cap_tflops))

    def predicted_energy_per_flop(self, clock_mhz: float) -> float:
        """Joules per FLOP at a clock, on the fitted model."""
        throughput = self.predicted_throughput_tflops(clock_mhz) * 1e12
        return self.predicted_power(clock_mhz) / max(throughput, 1e-12)


def dvfs_menu(min_mhz: float, max_mhz: float, step_mhz: float = 45.0) -> tuple[float, ...]:
    """A GPU's supported clock list (nvidia-smi -q -d SUPPORTED_CLOCKS style)."""
    if min_mhz >= max_mhz or step_mhz <= 0:
        raise ConfigurationError("invalid DVFS menu bounds")
    return tuple(float(f) for f in np.arange(min_mhz, max_mhz + step_mhz / 2, step_mhz))


def narrow_clock_range(
    kernel,
    reference_config: dict,
    available_clocks_mhz: tuple[float, ...],
    observer: EnergyObserver | None = None,
    n_probes: int = 5,
    n_recommended: int = 10,
    objective: str = "energy",
    trials: int = 3,
) -> ClockRangeRecommendation:
    """Probe a few clocks, fit the model, recommend a tuning range.

    Args:
        kernel: kernel model (``flops`` + ``execute``).
        reference_config: the configuration used for probing (any decent
            variant works; the model only needs the f-dependence).
        available_clocks_mhz: the full DVFS menu to narrow.
        observer: energy measurement (oracle if None) for the probes.
        n_probes: how many clocks to benchmark (evenly spread).
        n_recommended: size of the returned tuning range (paper: 10).
        objective: "energy" (J/FLOP) or "edp" (energy-delay product).

    Raises:
        ConfigurationError: for degenerate menus or unknown objectives.
    """
    if objective not in ("energy", "edp"):
        raise ConfigurationError(f"unknown objective {objective!r}")
    clocks = tuple(sorted(available_clocks_mhz))
    if len(clocks) < max(n_probes, n_recommended):
        raise ConfigurationError(
            "DVFS menu smaller than the probe/recommendation counts"
        )
    observer = observer or TrueEnergyObserver()

    # 1. Probe evenly across the menu.
    probe_idx = np.linspace(0, len(clocks) - 1, n_probes).round().astype(int)
    probe_clocks = [clocks[i] for i in sorted(set(int(i) for i in probe_idx))]
    probe_power = []
    probe_tflops = []
    for clock in probe_clocks:
        times = []
        watts = []
        for _ in range(trials):
            run = kernel.execute(reference_config, clock)
            times.append(run.exec_time_s)
            watts.append(run.board_watts)
        energies = observer.measure_config(float(np.mean(watts)), times)
        mean_time = float(np.mean(times))
        probe_power.append(float(np.mean(energies)) / mean_time)
        probe_tflops.append(kernel.flops / mean_time / 1e12)

    # 2. Fit P(f) as a cubic (static + f*V(f)^2 with linear V) and
    #    throughput as a *saturating* curve: linear through the origin in
    #    the compute-limited region, capped where the memory system
    #    saturates — which is what distinguishes kernel classes in [22].
    degree = min(3, len(probe_clocks) - 1)
    power_poly = np.polyfit(probe_clocks, probe_power, degree)
    probe_clocks_arr = np.asarray(probe_clocks)
    probe_tflops_arr = np.asarray(probe_tflops)
    cap = float(probe_tflops_arr.max())
    linear_region = probe_tflops_arr < 0.97 * cap
    if not linear_region.any():
        linear_region[int(np.argmin(probe_clocks_arr))] = True
    throughput_per_mhz = float(
        np.dot(probe_clocks_arr[linear_region], probe_tflops_arr[linear_region])
        / np.dot(probe_clocks_arr[linear_region], probe_clocks_arr[linear_region])
    )

    # 3. Locate the objective optimum on a fine grid over the menu span.
    grid = np.linspace(clocks[0], clocks[-1], 512)
    power = np.polyval(power_poly, grid)
    throughput = np.minimum(throughput_per_mhz * grid, cap)  # TFLOP/s
    energy_per_flop = power / np.maximum(throughput, 1e-12)
    if objective == "edp":
        score = energy_per_flop / np.maximum(throughput, 1e-12)
    else:
        score = energy_per_flop
    f_opt = float(grid[int(np.argmin(score))])

    # 4. Snap a bracket around the optimum to the DVFS menu, extending
    #    toward the top clock so the performance end of the Pareto front
    #    stays reachable (as the paper's chosen range does).
    menu = np.asarray(clocks)
    anchor = int(np.argmin(np.abs(menu - f_opt)))
    lower = max(anchor - (n_recommended // 3), 0)
    upper = min(lower + n_recommended, len(clocks))
    lower = max(upper - n_recommended, 0)
    recommended = tuple(float(f) for f in menu[lower:upper])
    return ClockRangeRecommendation(
        probe_clocks_mhz=tuple(float(f) for f in probe_clocks),
        power_coefficients=tuple(float(c) for c in power_poly),
        throughput_per_mhz=throughput_per_mhz,
        throughput_cap_tflops=cap,
        optimal_clock_mhz=f_opt,
        recommended_clocks_mhz=recommended,
    )
