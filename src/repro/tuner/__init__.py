"""Kernel Tuner reimplementation: search-space GPU auto-tuning with energy.

Implements the subset of Kernel Tuner (van Werkhoven, FGCS'19) the paper's
case studies exercise: search-space enumeration with restrictions, locked
clock frequencies, repeated benchmark trials, and pluggable energy
observers — the fast-external-sensor strategy (PowerSensor3) versus the
continuous-run strategy slow on-board sensors force (Section V-A2).
"""

from repro.tuner.cache import CachedRunner, TuningCache
from repro.tuner.clockmodel import (
    ClockRangeRecommendation,
    dvfs_menu,
    narrow_clock_range,
)
from repro.tuner.kernels import (
    BEAMFORMER_TARGETS,
    BeamformerTarget,
    KernelRun,
    MemoryBoundStencil,
    PowerCurve,
    SyntheticGemmKernel,
    TensorCoreBeamformer,
    beamformer_search_space,
)
from repro.tuner.observers import (
    EnergyObserver,
    NvmlObserver,
    PmtObserver,
    PowerSensorObserver,
    TrueEnergyObserver,
)
from repro.tuner.runner import BenchmarkRunner, ConfigResult, TimeAccounting
from repro.tuner.searchspace import SearchSpace, config_hash01, config_key
from repro.tuner.strategies import OBJECTIVES, hill_climb, neighbors, resolve_objective
from repro.tuner.tuning import TuningResult, tune

__all__ = [
    "tune",
    "TuningCache",
    "CachedRunner",
    "ClockRangeRecommendation",
    "dvfs_menu",
    "narrow_clock_range",
    "TuningResult",
    "SearchSpace",
    "config_key",
    "config_hash01",
    "TensorCoreBeamformer",
    "SyntheticGemmKernel",
    "MemoryBoundStencil",
    "beamformer_search_space",
    "BeamformerTarget",
    "BEAMFORMER_TARGETS",
    "PowerCurve",
    "KernelRun",
    "EnergyObserver",
    "TrueEnergyObserver",
    "PowerSensorObserver",
    "NvmlObserver",
    "PmtObserver",
    "BenchmarkRunner",
    "ConfigResult",
    "TimeAccounting",
    "OBJECTIVES",
    "hill_climb",
    "neighbors",
    "resolve_objective",
]
