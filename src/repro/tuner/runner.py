"""The benchmark runner: executes configurations and accounts tuning time.

Auto-tuning wall time is what the paper's 3.25x claim is about, so the
runner books every cost the real Kernel Tuner pays:

* compiling each code variant once (clock changes reuse the binary),
* per-configuration setup (clock switch, argument setup),
* the benchmark trials themselves (7 by default, as in the paper),
* whatever extra observation time the energy observer needs (zero for
  PowerSensor3, ~1 s of continuous running for NVML).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import RngStream
from repro.tuner.observers import EnergyObserver, TrueEnergyObserver
from repro.tuner.searchspace import config_key


@dataclass(frozen=True)
class ConfigResult:
    """Measured outcome of one (configuration, clock) point."""

    config: dict
    clock_mhz: float
    exec_times: tuple[float, ...]
    energies: tuple[float, ...]
    flops: float

    @property
    def mean_time(self) -> float:
        return float(np.mean(self.exec_times))

    @property
    def mean_energy(self) -> float:
        return float(np.mean(self.energies))

    @property
    def tflops(self) -> float:
        return self.flops / self.mean_time / 1e12

    @property
    def tflop_per_joule(self) -> float:
        return self.flops / self.mean_energy / 1e12

    @property
    def mean_watts(self) -> float:
        return self.mean_energy / self.mean_time


@dataclass
class TimeAccounting:
    """Where the simulated tuning time went."""

    compile_s: float = 0.0
    setup_s: float = 0.0
    trials_s: float = 0.0
    observation_s: float = 0.0
    variants_compiled: int = 0
    configs_run: int = 0

    @property
    def total_s(self) -> float:
        return self.compile_s + self.setup_s + self.trials_s + self.observation_s


@dataclass
class BenchmarkRunner:
    """Runs (config, clock) points against a kernel model.

    Args:
        kernel: a kernel model with ``flops`` and ``execute(config, clock,
            rng)`` (see :mod:`repro.tuner.kernels`).
        observer: energy measurement strategy.
        trials: benchmark repetitions per configuration (paper: 7).
        compile_time_s: simulated compile cost per distinct code variant.
        config_setup_s: per-configuration overhead (clock switch etc.).
        launch_overhead_s: per-trial kernel launch overhead.
    """

    kernel: object
    observer: EnergyObserver = field(default_factory=TrueEnergyObserver)
    trials: int = 7
    compile_time_s: float = 3.2
    config_setup_s: float = 0.02
    launch_overhead_s: float = 5e-4
    seed: int = 0

    def __post_init__(self) -> None:
        self.accounting = TimeAccounting()
        self._compiled: set[str] = set()
        self._rng = RngStream(self.seed, "runner")

    def run_config(self, config: dict, clock_mhz: float) -> ConfigResult:
        key = config_key(config)
        if key not in self._compiled:
            self._compiled.add(key)
            self.accounting.compile_s += self.compile_time_s
            self.accounting.variants_compiled += 1
        self.accounting.setup_s += self.config_setup_s
        self.accounting.configs_run += 1

        runs = [
            self.kernel.execute(config, clock_mhz, self._rng)
            for _ in range(self.trials)
        ]
        exec_times = [run.exec_time_s for run in runs]
        board_watts = float(np.mean([run.board_watts for run in runs]))
        self.accounting.trials_s += sum(exec_times) + self.trials * self.launch_overhead_s
        self.accounting.observation_s += self.observer.overhead_per_config

        energies = self.observer.measure_config(board_watts, exec_times)
        return ConfigResult(
            config=dict(config),
            clock_mhz=clock_mhz,
            exec_times=tuple(exec_times),
            energies=tuple(energies),
            flops=self.kernel.flops,
        )
