"""Search strategies beyond brute force.

Kernel Tuner ships a family of search optimisation strategies for spaces
too large to enumerate; the paper's case study brute-forces its 5120
points, but the tuner infrastructure itself supports guided search.  This
module implements greedy hill climbing with random restarts over the
(configuration x clock) space, with pluggable objectives — including the
energy objectives PowerSensor3 makes cheap to evaluate.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream
from repro.tuner.runner import BenchmarkRunner, ConfigResult
from repro.tuner.searchspace import SearchSpace, config_key

Objective = Callable[[ConfigResult], float]

#: Built-in objectives; all are minimised.
OBJECTIVES: dict[str, Objective] = {
    "time": lambda r: r.mean_time,
    "energy": lambda r: r.mean_energy,
    # Energy-delay product: the classic combined metric.
    "edp": lambda r: r.mean_energy * r.mean_time,
    "inverse_tflops": lambda r: 1.0 / r.tflops,
    "inverse_tflop_per_j": lambda r: 1.0 / r.tflop_per_joule,
}


def resolve_objective(objective: str | Objective) -> Objective:
    if callable(objective):
        return objective
    try:
        return OBJECTIVES[objective]
    except KeyError:
        known = ", ".join(sorted(OBJECTIVES))
        raise ConfigurationError(f"unknown objective {objective!r}; known: {known}")


def neighbors(
    config: dict, clock_idx: int, space: SearchSpace, n_clocks: int
) -> list[tuple[dict, int]]:
    """All points differing from (config, clock) in exactly one dimension."""
    out: list[tuple[dict, int]] = []
    for name, values in space.tune_params.items():
        for value in values:
            if value == config[name]:
                continue
            candidate = dict(config)
            candidate[name] = value
            if space.is_valid(candidate):
                out.append((candidate, clock_idx))
    for delta in (-1, 1):
        j = clock_idx + delta
        if 0 <= j < n_clocks:
            out.append((dict(config), j))
    return out


def hill_climb(
    kernel,
    space: SearchSpace,
    clocks_mhz: tuple[float, ...],
    runner: BenchmarkRunner,
    objective: str | Objective = "time",
    max_evaluations: int = 100,
    restarts: int = 3,
    seed: int = 0,
) -> list[ConfigResult]:
    """Greedy hill climbing with random restarts.

    Starts from a random valid point, repeatedly moves to the best
    improving neighbour, and restarts from a fresh random point when stuck
    (or the budget allows).  Returns every evaluated point (the best can
    be read off with min/max over the returned list); repeated visits to a
    point are served from a cache and do not consume budget.
    """
    if max_evaluations < 1:
        raise ConfigurationError("need a positive evaluation budget")
    score = resolve_objective(objective)
    rng = RngStream(seed, "hill-climb")
    configs = space.enumerate()
    if not configs:
        raise ConfigurationError("search space has no valid configurations")

    cache: dict[tuple[str, int], ConfigResult] = {}
    results: list[ConfigResult] = []

    def evaluate(config: dict, clock_idx: int) -> ConfigResult | None:
        key = (config_key(config), clock_idx)
        if key in cache:
            return cache[key]
        if len(results) >= max_evaluations:
            return None
        result = runner.run_config(config, clocks_mhz[clock_idx])
        cache[key] = result
        results.append(result)
        return result

    for _ in range(max(restarts, 1)):
        if len(results) >= max_evaluations:
            break
        config = dict(configs[int(rng.integers(0, len(configs)))])
        clock_idx = int(rng.integers(0, len(clocks_mhz)))
        current = evaluate(config, clock_idx)
        if current is None:
            break
        while True:
            moves = neighbors(config, clock_idx, space, len(clocks_mhz))
            rng.shuffle(moves)
            best_move = None
            best_result = current
            for candidate, j in moves:
                outcome = evaluate(candidate, j)
                if outcome is None:
                    break
                if score(outcome) < score(best_result):
                    best_move = (candidate, j)
                    best_result = outcome
            if best_move is None or len(results) >= max_evaluations:
                break  # local optimum (or budget exhausted)
            config, clock_idx = best_move
            current = best_result
    return results
