"""Energy observers: how the tuner measures each kernel's energy.

The paper's point (Section V-A2): with a fast external sensor, energy can
be captured *per kernel execution*; with a slow on-board sensor (NVML at
~10 Hz), the tuner must additionally run each configuration continuously
for ~a second to collect enough sensor samples — which is what stretches
tuning by 3.25x.

* :class:`PowerSensorObserver` measures each trial directly through the
  full simulated PowerSensor3 pipeline (sensor physics, ADC, host
  library) — zero extra observation time.
* :class:`NvmlObserver` times the trials, then models the continuous
  observation run NVML needs, charging its duration to the tuning time.
* :class:`TrueEnergyObserver` is the noise-free oracle used in tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.rng import RngStream
from repro.core.setup import SimulatedSetup
from repro.core.state import joules
from repro.dut.base import PowerTrace, SegmentRail
from repro.vendor.nvml import NvmlDevice

import numpy as np


class EnergyObserver(ABC):
    """Measures the energy of a config's kernel trials."""

    #: Extra simulated seconds of observation this observer needs per
    #: configuration, on top of the trials themselves.
    overhead_per_config: float = 0.0

    @abstractmethod
    def measure_config(
        self, board_watts: float, exec_times: list[float]
    ) -> list[float]:
        """Energy (J) per trial for a kernel drawing ``board_watts``."""


class TrueEnergyObserver(EnergyObserver):
    """Oracle: exact energy, no sensor in the loop."""

    def measure_config(self, board_watts, exec_times):
        return [board_watts * t for t in exec_times]


class PowerSensorObserver(EnergyObserver):
    """Per-trial energy through the simulated PowerSensor3 pipeline.

    One PCIe-8-pin module on a 12 V rail carries the board's total power
    (summing the three physical feeds of a real card changes nothing for
    energy; see DESIGN.md).  Trials shorter than a few sensor samples are
    padded with guard time on both sides so the integration window fully
    covers the pulse, as the real tool's marker-based extraction does.
    """

    overhead_per_config = 0.0

    def __init__(
        self,
        idle_watts: float = 14.0,
        seed: int = 0,
        guard_s: float = 0.001,
    ) -> None:
        self.setup = SimulatedSetup(
            ["pcie8pin"], seed=seed, direct=True, calibration_samples=32 * 1024
        )
        self.rail = SegmentRail(volts=12.0, idle_watts=idle_watts)
        self.setup.connect(0, self.rail)
        self.idle_watts = idle_watts
        self.guard_s = guard_s
        self._ps = self.setup.ps

    def _now(self) -> float:
        return self._ps.source.clock.now  # direct source exposes the clock

    def measure_config(self, board_watts, exec_times):
        energies = []
        for exec_time in exec_times:
            self.rail.prune_before(self._now())
            start = self._now() + self.guard_s
            self.rail.schedule(start, start + exec_time, board_watts)
            before = self._ps.read()
            self._ps.pump_seconds(exec_time + 2 * self.guard_s)
            after = self._ps.read()
            window = joules(before, after, pair=0)
            # Subtract the idle floor outside the kernel window, leaving
            # the energy attributable to the execution itself plus idle
            # during it — the quantity Kernel Tuner reports.
            window -= self.idle_watts * 2 * self.guard_s
            energies.append(window)
        return energies


class PmtObserver(EnergyObserver):
    """Energy measurement through a PMT backend factory.

    Kernel Tuner's AMD path goes through PMT (paper, Section V-A2); this
    observer reproduces that wiring for any PMT-compatible polled sensor.
    For each configuration a continuous run is rendered, a backend is
    constructed over it via ``backend_factory(trace)``, and energy per
    trial is the backend-averaged power times the execution time.  The
    observation overhead depends on the backend's update rate: a ~1 ms
    AMD-SMI sensor needs far less continuous running than 10 Hz NVML.
    """

    def __init__(
        self,
        backend_factory,
        continuous_duration_s: float = 0.1,
        idle_watts: float = 14.0,
    ) -> None:
        self.backend_factory = backend_factory
        self.continuous_duration_s = continuous_duration_s
        self.overhead_per_config = continuous_duration_s
        self.idle_watts = idle_watts

    def measure_config(self, board_watts, exec_times):
        from repro.pmt.base import pmt_joules, pmt_seconds

        duration = self.continuous_duration_s
        times = np.arange(0.0, duration, 1e-4)
        trace = PowerTrace(
            times=times,
            volts=np.full(times.size, 12.0),
            amps=np.full(times.size, board_watts / 12.0),
        )
        backend = self.backend_factory(trace)
        first = backend.read(0.0)
        second = backend.read(duration)
        avg_watts = pmt_joules(first, second) / pmt_seconds(first, second)
        return [avg_watts * t for t in exec_times]


class NvmlObserver(EnergyObserver):
    """On-board-sensor strategy: continuous run + averaged power.

    Models Kernel Tuner's NVML path: after the timing trials, the kernel
    is executed back-to-back for :attr:`continuous_duration_s` while NVML
    is polled; energy per trial is the averaged power times the measured
    execution time.  The NVML device's per-board scale error biases every
    result consistently.
    """

    def __init__(
        self,
        idle_watts: float = 14.0,
        continuous_duration_s: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.idle_watts = idle_watts
        self.continuous_duration_s = continuous_duration_s
        self.overhead_per_config = continuous_duration_s
        self._rng = RngStream(seed, "nvml-observer")
        # One scale error per physical board, shared across all configs.
        self._scale_error = float(self._rng.normal(0.0, 0.04))

    def measure_config(self, board_watts, exec_times):
        duration = self.continuous_duration_s
        times = np.arange(0.0, duration, 1e-3)
        trace = PowerTrace(
            times=times,
            volts=np.full(times.size, 12.0),
            amps=np.full(times.size, board_watts / 12.0),
        )
        device = NvmlDevice(
            trace, self._rng.child("device"), scale_error=self._scale_error
        )
        polls = np.linspace(0.05, duration, 20)
        avg_watts = float(device.power_usage(polls, "instantaneous").mean())
        return [avg_watts * t for t in exec_times]
