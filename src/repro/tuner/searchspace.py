"""Auto-tuner search spaces (Kernel Tuner style).

A search space is a dictionary of tunable parameters (name -> list of
values) plus restrictions; the tuner enumerates the Cartesian product and
keeps the configurations satisfying every restriction (van Werkhoven,
FGCS'19).  Restrictions may be callables taking the config dict, or
strings evaluated with the parameter names in scope — the same dual form
Kernel Tuner accepts.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigurationError

Restriction = Callable[[dict], bool] | str


@dataclass
class SearchSpace:
    """Tunable parameters and the restrictions defining valid configs."""

    tune_params: dict[str, list]
    restrictions: list[Restriction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.tune_params:
            raise ConfigurationError("search space needs at least one parameter")
        for name, values in self.tune_params.items():
            if not values:
                raise ConfigurationError(f"parameter {name!r} has no values")

    @property
    def cartesian_size(self) -> int:
        size = 1
        for values in self.tune_params.values():
            size *= len(values)
        return size

    def is_valid(self, config: dict) -> bool:
        for restriction in self.restrictions:
            if callable(restriction):
                ok = restriction(config)
            else:
                ok = bool(eval(restriction, {"__builtins__": {}}, dict(config)))
            if not ok:
                return False
        return True

    def enumerate(self) -> list[dict]:
        """All valid configurations, in deterministic order."""
        names = list(self.tune_params)
        configs = []
        for combo in itertools.product(*(self.tune_params[n] for n in names)):
            config = dict(zip(names, combo))
            if self.is_valid(config):
                configs.append(config)
        return configs

    @property
    def size(self) -> int:
        return len(self.enumerate())


def config_key(config: dict) -> str:
    """Stable textual identity of a configuration (used for caching)."""
    return ";".join(f"{k}={config[k]}" for k in sorted(config))


def config_hash01(config: dict, salt: str = "") -> float:
    """Deterministic pseudo-random value in [0, 1) for a configuration.

    Used for per-config performance jitter that is stable across runs and
    trials (a given code variant is consistently a bit faster or slower).
    """
    digest = hashlib.sha256((config_key(config) + salt).encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2**64
