"""Firmware version identification.

The version string is sent in response to the VERSION command, letting the
host library verify protocol compatibility before streaming (the real
toolkit uses this to refuse mismatched firmware).
"""

FIRMWARE_VERSION = "PowerSensor3-sim 1.0.0"

#: Major protocol revision; host refuses to talk to a different major.
PROTOCOL_MAJOR = 1
