"""Firmware main loop of the simulated PowerSensor3 device.

The real firmware runs the ADC continuously with DMA into RAM, averages six
scans per output sample on the CPU, and ships 2-byte packets per enabled
sensor — preceded by a device timestamp packet — over USB at 20 kHz
(paper, Section III-B).  This class reproduces that behaviour against the
simulated :class:`~repro.hardware.baseboard.Baseboard`, in a pull-based
fashion: the transport asks the device to *produce* the bytes covering the
next span of simulated time.
"""

from __future__ import annotations

import numpy as np

from repro.common.clock import VirtualClock
from repro.common.errors import DeviceError, ProtocolError
from repro.common.units import USB_FULL_SPEED_BPS
from repro.firmware.commands import Command
from repro.firmware.protocol import TIMESTAMP_SENSOR, TIMESTAMP_WRAP_US
from repro.firmware.version import FIRMWARE_VERSION
from repro.hardware.baseboard import Baseboard
from repro.hardware.eeprom import RECORD_SIZE, SENSORS, SensorConfig, VirtualEeprom


def default_eeprom(baseboard: Baseboard) -> VirtualEeprom:
    """Factory-default EEPROM contents for the modules on a baseboard.

    Uses nominal datasheet values (midpoint reference, datasheet
    sensitivity/gain); the calibration procedure replaces these with
    measured values.
    """
    eeprom = VirtualEeprom()
    for channel in baseboard.populated_slots():
        spec = channel.module.spec
        eeprom.set(
            2 * channel.slot,
            SensorConfig(
                name=f"slot{channel.slot}-I",
                pair_name=spec.key,
                vref=channel.module.current_sensor.zero_current_voltage,
                slope=spec.sensitivity_v_per_a,
                enabled=True,
            ),
        )
        eeprom.set(
            2 * channel.slot + 1,
            SensorConfig(
                name=f"slot{channel.slot}-U",
                pair_name=spec.key,
                vref=0.0,
                slope=spec.voltage_gain,
                enabled=True,
            ),
        )
    return eeprom


class Firmware:
    """The device side of the PowerSensor3 link."""

    def __init__(
        self,
        baseboard: Baseboard,
        eeprom: VirtualEeprom | None = None,
        clock: VirtualClock | None = None,
    ) -> None:
        self.baseboard = baseboard
        self.eeprom = eeprom if eeprom is not None else default_eeprom(baseboard)
        self.clock = clock or VirtualClock()
        self.clock.configure_ticks(baseboard.timing.output_interval_s)
        self.streaming = False
        self.dfu_mode = False
        self.boot_count = 0
        self.samples_produced = 0
        self.markers_dropped = 0
        self._markers_pending = 0
        self._rx = bytearray()  # partially received command payloads
        self._tx = bytearray()  # response bytes awaiting the transport

    @property
    def eeprom(self) -> VirtualEeprom:
        return self._eeprom

    @eeprom.setter
    def eeprom(self, value: VirtualEeprom) -> None:
        self._eeprom = value
        self._sensor_cache: tuple[int, list[int]] | None = None

    # ------------------------------------------------------------------ #
    # Host -> device                                                     #
    # ------------------------------------------------------------------ #

    def handle_input(self, data: bytes) -> None:
        """Process host command bytes (possibly split across calls)."""
        self._rx.extend(data)
        while self._rx:
            command = Command.lookup(bytes(self._rx[:1]))
            if command is None:
                raise ProtocolError(f"unknown command byte {self._rx[0]:#04x}")
            if command is Command.WRITE_CONFIG:
                needed = 1 + RECORD_SIZE * SENSORS
                if len(self._rx) < needed:
                    return  # wait for the rest of the image
                image = bytes(self._rx[1:needed])
                del self._rx[:needed]
                self._write_config(image)
                continue
            del self._rx[:1]
            self._dispatch(command)

    def _dispatch(self, command: Command) -> None:
        if command is Command.START_STREAMING:
            self._check_bandwidth()
            self.streaming = True
        elif command is Command.STOP_STREAMING:
            self.streaming = False
        elif command is Command.READ_CONFIG:
            if self.streaming:
                raise DeviceError("cannot read configuration while streaming")
            self._tx.extend(self.eeprom.pack())
        elif command is Command.MARKER:
            self._markers_pending += 1
        elif command is Command.VERSION:
            if self.streaming:
                raise DeviceError("cannot read version while streaming")
            self._tx.extend(FIRMWARE_VERSION.encode("ascii") + b"\x00")
        elif command is Command.REBOOT:
            self._reboot(dfu=False)
        elif command is Command.REBOOT_DFU:
            self._reboot(dfu=True)
        else:  # pragma: no cover - the enum is closed
            raise ProtocolError(f"unhandled command {command}")

    def _write_config(self, image: bytes) -> None:
        if self.streaming:
            raise DeviceError("cannot write configuration while streaming")
        self.eeprom = VirtualEeprom.unpack(image)

    def _reboot(self, dfu: bool) -> None:
        self.streaming = False
        self.dfu_mode = dfu
        self.boot_count += 1
        self.markers_dropped = 0
        self._markers_pending = 0
        self._sensor_cache = None
        self._rx.clear()
        self._tx.clear()

    # ------------------------------------------------------------------ #
    # Device -> host                                                     #
    # ------------------------------------------------------------------ #

    def enabled_sensors(self) -> list[int]:
        # Cached: recomputing from the EEPROM on every produce() call costs
        # more than producing a small sample batch.  The cache is keyed on
        # the EEPROM write generation and dropped whenever the EEPROM
        # object itself is replaced (WRITE_CONFIG) or the device reboots.
        # The returned list is shared — treat it as read-only.
        eeprom = self._eeprom
        cache = self._sensor_cache
        if cache is None or cache[0] != eeprom.generation:
            sensors = [i for i in range(SENSORS) if eeprom.configs[i].enabled]
            self._sensor_cache = cache = (eeprom.generation, sensors)
        return cache[1]

    def bytes_per_sample(self) -> int:
        return 2 + 2 * len(self.enabled_sensors())  # timestamp + sensor packets

    def data_rate_bps(self) -> float:
        return self.bytes_per_sample() * 8 / self.baseboard.timing.output_interval_s

    def _check_bandwidth(self) -> None:
        rate = self.data_rate_bps()
        if rate > USB_FULL_SPEED_BPS:
            raise DeviceError(
                f"configured data rate {rate / 1e6:.1f} Mbit/s exceeds the "
                f"USB full-speed link ({USB_FULL_SPEED_BPS / 1e6:.0f} Mbit/s)"
            )

    def produce(self, n_samples: int) -> bytes:
        """Advance simulated time by ``n_samples`` output intervals.

        Returns the wire bytes the device would have sent; empty if the
        device is not streaming (time still advances, as it would for an
        idle device).
        """
        if n_samples < 0:
            raise ValueError("n_samples must be >= 0")
        if n_samples == 0:
            return self.flush_responses()
        timing = self.baseboard.timing
        start = self.clock.now
        if not self.streaming:
            self.clock.tick(n_samples)
            return self.flush_responses()

        codes = self.baseboard.averaged_codes(start, n_samples)
        sensors = self.enabled_sensors()
        n_fields = 1 + len(sensors)  # timestamp + per-sensor packets
        packets = np.zeros((n_samples, n_fields, 2), dtype=np.uint8)

        # Timestamp packets: generated after processing 3 of the 6 scans.
        ts_times = start + np.arange(n_samples) * timing.output_interval_s
        ts_times = ts_times + 3 * timing.scan_time_s
        micros = np.round(ts_times * 1e6).astype(np.int64) % TIMESTAMP_WRAP_US
        packets[:, 0, 0] = 0x80 | (TIMESTAMP_SENSOR << 4) | 0x08 | (micros >> 7)
        packets[:, 0, 1] = micros & 0x7F

        marker_flags = np.zeros(n_samples, dtype=np.uint8)
        n_mark = min(self._markers_pending, n_samples)
        if n_mark:
            if 0 in sensors:
                marker_flags[:n_mark] = 1
            else:
                # The marker bit only exists in sensor 0's packets; with
                # sensor 0 disabled the marker cannot be attached to the
                # stream.  Drop it (and count the drop) instead of letting
                # it linger and fire spuriously after a later re-enable.
                self.markers_dropped += n_mark
            self._markers_pending -= n_mark

        for field, sensor in enumerate(sensors, start=1):
            values = codes[:, sensor].astype(np.int64)
            byte0 = 0x80 | (sensor << 4) | (values >> 7)
            if sensor == 0:
                byte0 = byte0 | (marker_flags << 3)
            packets[:, field, 0] = byte0
            packets[:, field, 1] = values & 0x7F

        self.clock.tick(n_samples)
        self.samples_produced += n_samples
        out = self.flush_responses() + packets.tobytes()
        return out

    def produce_seconds(self, seconds: float) -> bytes:
        """Produce the samples covering a span of simulated seconds."""
        n = int(round(seconds / self.baseboard.timing.output_interval_s))
        return self.produce(n)

    def flush_responses(self) -> bytes:
        """Drain queued command responses (config image, version string)."""
        out = bytes(self._tx)
        self._tx.clear()
        return out

    def display_refresh(self) -> None:
        """Render the current readings on the baseboard display.

        The real firmware only drives the display when the host is not
        streaming; calling this while streaming is a no-op.
        """
        if self.streaming:
            return
        codes = self.baseboard.averaged_codes(self.clock.now, 1)[0]
        self.clock.tick(1)
        pairs = []
        total = 0.0
        lsb = self.baseboard.adc.lsb
        for channel in self.baseboard.populated_slots():
            slot = channel.slot
            cfg_i = self.eeprom.get(2 * slot)
            cfg_u = self.eeprom.get(2 * slot + 1)
            if not (cfg_i.enabled and cfg_u.enabled):
                continue
            amps = cfg_i.convert((codes[2 * slot] + 0.5) * lsb)
            volts = cfg_u.convert((codes[2 * slot + 1] + 0.5) * lsb)
            pairs.append((cfg_i.pair_name, volts, amps))
            total += volts * amps
        self.baseboard.display.render_power_screen(total, pairs)
