"""PowerSensor3 wire protocol.

Sensor data travels as 2-byte packets carrying a 10-bit value plus 6 bits
of metadata (paper, Section III-B): the 3-bit sensor index, a marker bit,
and one flag bit in each byte to tell first bytes from second bytes::

    byte 0:  1 | sensor[2:0] | marker | value[9:7]
    byte 1:  0 | value[6:0]

The marker bit is only meaningful for sensor 0; a set marker bit with a
non-zero sensor index is repurposed — index 7 with the marker bit carries
the 10-bit device timestamp (microseconds, wrapping at 1024) that precedes
each sample set.  Sensor 7's ordinary data packets always have marker 0.

:class:`StreamDecoder` is an incremental parser: feed it arbitrary byte
chunks, get back decoded events.  It resynchronises on framing errors by
searching for the next first-byte flag, mirroring the robustness the real
host library needs on a lossy serial link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import ProtocolError

VALUE_BITS = 10
VALUE_MAX = (1 << VALUE_BITS) - 1
SENSOR_MAX = 7
TIMESTAMP_SENSOR = 7
TIMESTAMP_WRAP_US = 1 << VALUE_BITS  # 10-bit microsecond counter


@dataclass(frozen=True)
class SensorReading:
    """One decoded sensor value."""

    sensor: int
    value: int  # averaged 10-bit ADC code
    marker: bool = False


@dataclass(frozen=True)
class Timestamp:
    """Device timestamp event (microseconds modulo 1024)."""

    micros: int


def encode_sensor_packet(sensor: int, value: int, marker: bool = False) -> bytes:
    """Encode one sensor reading as two bytes."""
    if not 0 <= sensor <= SENSOR_MAX:
        raise ProtocolError(f"sensor index {sensor} out of range 0..{SENSOR_MAX}")
    if not 0 <= value <= VALUE_MAX:
        raise ProtocolError(f"value {value} out of 10-bit range")
    if marker and sensor != 0:
        raise ProtocolError("marker bit is only valid for sensor 0")
    byte0 = 0x80 | (sensor << 4) | (int(marker) << 3) | ((value >> 7) & 0x07)
    byte1 = value & 0x7F
    return bytes((byte0, byte1))


def encode_timestamp_packet(micros: int) -> bytes:
    """Encode a device timestamp (wraps to 10 bits) as two bytes."""
    value = micros % TIMESTAMP_WRAP_US
    byte0 = 0x80 | (TIMESTAMP_SENSOR << 4) | (1 << 3) | ((value >> 7) & 0x07)
    byte1 = value & 0x7F
    return bytes((byte0, byte1))


class StreamDecoder:
    """Incremental decoder of the sensor data stream.

    Feed byte chunks with :meth:`feed`; it yields :class:`SensorReading`
    and :class:`Timestamp` events.  A second byte without a preceding first
    byte (or vice versa) increments :attr:`resync_count` and the decoder
    skips to the next byte with the first-byte flag.
    """

    def __init__(self) -> None:
        self._pending_first: int | None = None
        self.resync_count = 0
        self.packet_count = 0

    def feed(self, data: bytes) -> Iterator[SensorReading | Timestamp]:
        for byte in data:
            if byte & 0x80:  # first byte of a packet
                if self._pending_first is not None:
                    self.resync_count += 1  # dangling first byte dropped
                self._pending_first = byte
                continue
            if self._pending_first is None:
                self.resync_count += 1  # dangling second byte dropped
                continue
            first = self._pending_first
            self._pending_first = None
            sensor = (first >> 4) & 0x07
            marker = bool(first & 0x08)
            value = ((first & 0x07) << 7) | (byte & 0x7F)
            self.packet_count += 1
            if sensor == TIMESTAMP_SENSOR and marker:
                yield Timestamp(micros=value)
            else:
                if sensor != 0:
                    marker = False  # repurposed bit, not a data marker
                yield SensorReading(sensor=sensor, value=value, marker=marker)

    def reset(self) -> None:
        self._pending_first = None
        self.resync_count = 0
        self.packet_count = 0


class TimestampUnwrapper:
    """Reconstruct continuous device time from the wrapping 10-bit counter.

    The device emits one timestamp per 50 us sample set while the counter
    wraps every 1024 us, so consecutive timestamps always advance by less
    than half the wrap period and unwrapping is unambiguous.
    """

    def __init__(self) -> None:
        self._last_raw: int | None = None
        self._accumulated_us = 0

    def update(self, raw_micros: int) -> float:
        """Feed a raw 10-bit timestamp; returns continuous seconds."""
        if not 0 <= raw_micros < TIMESTAMP_WRAP_US:
            raise ProtocolError(f"raw timestamp {raw_micros} out of 10-bit range")
        if self._last_raw is None:
            self._accumulated_us = raw_micros
        else:
            delta = (raw_micros - self._last_raw) % TIMESTAMP_WRAP_US
            self._accumulated_us += delta
        self._last_raw = raw_micros
        return self._accumulated_us * 1e-6

    @property
    def seconds(self) -> float:
        return self._accumulated_us * 1e-6
