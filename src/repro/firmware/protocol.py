"""PowerSensor3 wire protocol.

Sensor data travels as 2-byte packets carrying a 10-bit value plus 6 bits
of metadata (paper, Section III-B): the 3-bit sensor index, a marker bit,
and one flag bit in each byte to tell first bytes from second bytes::

    byte 0:  1 | sensor[2:0] | marker | value[9:7]
    byte 1:  0 | value[6:0]

The marker bit is only meaningful for sensor 0; a set marker bit with a
non-zero sensor index is repurposed — index 7 with the marker bit carries
the 10-bit device timestamp (microseconds, wrapping at 1024) that precedes
each sample set.  Sensor 7's ordinary data packets always have marker 0.

:class:`StreamDecoder` is an incremental parser: feed it arbitrary byte
chunks, get back decoded events.  It resynchronises on framing errors by
searching for the next first-byte flag, mirroring the robustness the real
host library needs on a lossy serial link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.common.errors import ProtocolError

VALUE_BITS = 10
VALUE_MAX = (1 << VALUE_BITS) - 1
SENSOR_MAX = 7
TIMESTAMP_SENSOR = 7
TIMESTAMP_WRAP_US = 1 << VALUE_BITS  # 10-bit microsecond counter


@dataclass(frozen=True)
class SensorReading:
    """One decoded sensor value."""

    sensor: int
    value: int  # averaged 10-bit ADC code
    marker: bool = False


@dataclass(frozen=True)
class Timestamp:
    """Device timestamp event (microseconds modulo 1024)."""

    micros: int


def encode_sensor_packet(sensor: int, value: int, marker: bool = False) -> bytes:
    """Encode one sensor reading as two bytes."""
    if not 0 <= sensor <= SENSOR_MAX:
        raise ProtocolError(f"sensor index {sensor} out of range 0..{SENSOR_MAX}")
    if not 0 <= value <= VALUE_MAX:
        raise ProtocolError(f"value {value} out of 10-bit range")
    if marker and sensor != 0:
        raise ProtocolError("marker bit is only valid for sensor 0")
    byte0 = 0x80 | (sensor << 4) | (int(marker) << 3) | ((value >> 7) & 0x07)
    byte1 = value & 0x7F
    return bytes((byte0, byte1))


def encode_timestamp_packet(micros: int) -> bytes:
    """Encode a device timestamp (wraps to 10 bits) as two bytes."""
    value = micros % TIMESTAMP_WRAP_US
    byte0 = 0x80 | (TIMESTAMP_SENSOR << 4) | (1 << 3) | ((value >> 7) & 0x07)
    byte1 = value & 0x7F
    return bytes((byte0, byte1))


class StreamDecoder:
    """Incremental decoder of the sensor data stream.

    Feed byte chunks with :meth:`feed`; it yields :class:`SensorReading`
    and :class:`Timestamp` events.  A second byte without a preceding first
    byte (or vice versa) increments :attr:`resync_count` and the decoder
    skips to the next byte with the first-byte flag.
    """

    def __init__(self) -> None:
        self._pending_first: int | None = None
        self.resync_count = 0
        self.packet_count = 0

    def feed(self, data: bytes) -> Iterator[SensorReading | Timestamp]:
        for byte in data:
            if byte & 0x80:  # first byte of a packet
                if self._pending_first is not None:
                    self.resync_count += 1  # dangling first byte dropped
                self._pending_first = byte
                continue
            if self._pending_first is None:
                self.resync_count += 1  # dangling second byte dropped
                continue
            first = self._pending_first
            self._pending_first = None
            sensor = (first >> 4) & 0x07
            marker = bool(first & 0x08)
            value = ((first & 0x07) << 7) | (byte & 0x7F)
            self.packet_count += 1
            if sensor == TIMESTAMP_SENSOR and marker:
                yield Timestamp(micros=value)
            else:
                if sensor != 0:
                    marker = False  # repurposed bit, not a data marker
                yield SensorReading(sensor=sensor, value=value, marker=marker)

    def reset(self) -> None:
        self._pending_first = None
        self.resync_count = 0
        self.packet_count = 0


@dataclass(frozen=True)
class DecodedBlock:
    """Vectorised decode result: parallel arrays, one entry per packet.

    The arrays are in stream order.  ``is_timestamp`` marks timestamp
    packets (``sensors`` is :data:`TIMESTAMP_SENSOR` there and ``values``
    the raw 10-bit microsecond counter); for data packets ``markers`` is
    the sensor-0 marker bit (always ``False`` for other sensors, whose
    marker bit is repurposed — see :class:`StreamDecoder`).
    """

    sensors: np.ndarray  # (p,) uint8, 3-bit sensor index
    values: np.ndarray  # (p,) int64, 10-bit value
    markers: np.ndarray  # (p,) bool
    is_timestamp: np.ndarray  # (p,) bool

    def __len__(self) -> int:
        return int(self.sensors.size)

    def events(self) -> list[SensorReading | Timestamp]:
        """Materialise the block as scalar decoder events (for tests)."""
        out: list[SensorReading | Timestamp] = []
        for sensor, value, marker, is_ts in zip(
            self.sensors, self.values, self.markers, self.is_timestamp
        ):
            if is_ts:
                out.append(Timestamp(micros=int(value)))
            else:
                out.append(
                    SensorReading(sensor=int(sensor), value=int(value), marker=bool(marker))
                )
        return out


_EMPTY_BLOCK = DecodedBlock(
    sensors=np.zeros(0, dtype=np.uint8),
    values=np.zeros(0, dtype=np.int64),
    markers=np.zeros(0, dtype=bool),
    is_timestamp=np.zeros(0, dtype=bool),
)


def decode_block(
    data: bytes | np.ndarray, pending_first: int | None = None
) -> tuple[DecodedBlock, int | None, int]:
    """Decode a byte buffer into packet arrays in one vectorised pass.

    Stateless core of :class:`BlockDecoder`: ``pending_first`` is the
    dangling first byte carried in from the previous chunk (or ``None``).
    Returns ``(block, new_pending_first, resyncs)`` where ``resyncs``
    counts exactly the packets the scalar :class:`StreamDecoder` would
    have dropped while resynchronising on the same bytes.

    Pairing is done by flag-bit masking: a packet ends at every second
    byte (bit 7 clear) directly preceded by a first byte (bit 7 set); a
    first byte followed by another first byte was a dangling first, a
    second byte not preceded by a first byte a dangling second.
    """
    buf = np.frombuffer(bytes(data) if not isinstance(data, np.ndarray) else data, np.uint8)
    if pending_first is not None:
        buf = np.concatenate([np.array([pending_first], dtype=np.uint8), buf])
    n = buf.size
    if n == 0:
        return _EMPTY_BLOCK, pending_first, 0

    first_flag = (buf & 0x80) != 0
    prev_flag = np.empty(n, dtype=bool)
    prev_flag[0] = False  # the first byte of the buffer has no predecessor
    prev_flag[1:] = first_flag[:-1]

    second_idx = np.flatnonzero(~first_flag & prev_flag)
    resyncs = int(np.count_nonzero(first_flag & prev_flag))  # dangling firsts
    resyncs += int(np.count_nonzero(~first_flag & ~prev_flag))  # dangling seconds
    new_pending = int(buf[-1]) if first_flag[-1] else None

    if second_idx.size == 0:
        return _EMPTY_BLOCK, new_pending, resyncs
    firsts = buf[second_idx - 1]
    seconds = buf[second_idx]
    sensors = (firsts >> 4) & 0x07
    marker_bits = (firsts & 0x08) != 0
    values = ((firsts & 0x07).astype(np.int64) << 7) | (seconds & 0x7F)
    is_timestamp = (sensors == TIMESTAMP_SENSOR) & marker_bits
    markers = marker_bits & (sensors == 0)
    return (
        DecodedBlock(
            sensors=sensors, values=values, markers=markers, is_timestamp=is_timestamp
        ),
        new_pending,
        resyncs,
    )


class BlockDecoder:
    """Stateful vectorised counterpart of :class:`StreamDecoder`.

    Same incremental contract (arbitrary chunking, resync on framing
    errors, ``resync_count``/``packet_count`` accounting) but decoding a
    whole buffer per call into :class:`DecodedBlock` arrays instead of
    yielding per-packet events.  ``tests/test_block_decoder.py`` pins it
    byte-for-byte to the scalar decoder, which remains the reference
    implementation.
    """

    def __init__(self) -> None:
        self._pending_first: int | None = None
        self.resync_count = 0
        self.packet_count = 0

    def decode(self, data: bytes) -> DecodedBlock:
        block, self._pending_first, resyncs = decode_block(data, self._pending_first)
        self.resync_count += resyncs
        self.packet_count += len(block)
        return block

    def feed(self, data: bytes) -> Iterator[SensorReading | Timestamp]:
        """Event-oriented shim with :class:`StreamDecoder` semantics."""
        yield from self.decode(data).events()

    def reset(self) -> None:
        self._pending_first = None
        self.resync_count = 0
        self.packet_count = 0


class TimestampUnwrapper:
    """Reconstruct continuous device time from the wrapping 10-bit counter.

    The device emits one timestamp per 50 us sample set while the counter
    wraps every 1024 us, so consecutive timestamps always advance by less
    than half the wrap period and unwrapping is unambiguous.
    """

    def __init__(self) -> None:
        self._last_raw: int | None = None
        self._accumulated_us = 0

    def update(self, raw_micros: int) -> float:
        """Feed a raw 10-bit timestamp; returns continuous seconds."""
        if not 0 <= raw_micros < TIMESTAMP_WRAP_US:
            raise ProtocolError(f"raw timestamp {raw_micros} out of 10-bit range")
        if self._last_raw is None:
            self._accumulated_us = raw_micros
        else:
            delta = (raw_micros - self._last_raw) % TIMESTAMP_WRAP_US
            self._accumulated_us += delta
        self._last_raw = raw_micros
        return self._accumulated_us * 1e-6

    def update_block(self, raw_micros: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`update` over a batch of raw timestamps.

        Returns the continuous seconds per timestamp; the unwrapper state
        afterwards is identical to feeding the batch through
        :meth:`update` one value at a time.
        """
        raw = np.asarray(raw_micros, dtype=np.int64)
        if raw.size == 0:
            return np.zeros(0)
        if raw.min() < 0 or raw.max() >= TIMESTAMP_WRAP_US:
            raise ProtocolError("raw timestamp out of 10-bit range")
        if self._last_raw is None:
            deltas = np.diff(raw) % TIMESTAMP_WRAP_US
            accumulated = raw[0] + np.concatenate(([0], np.cumsum(deltas)))
        else:
            deltas = np.diff(np.concatenate(([self._last_raw], raw))) % TIMESTAMP_WRAP_US
            accumulated = self._accumulated_us + np.cumsum(deltas)
        self._last_raw = int(raw[-1])
        self._accumulated_us = int(accumulated[-1])
        return accumulated * 1e-6

    @property
    def seconds(self) -> float:
        return self._accumulated_us * 1e-6
