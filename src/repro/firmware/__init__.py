"""Simulated STM32F411 firmware.

:mod:`repro.firmware.protocol` defines the byte-level wire format (2-byte
sensor packets with embedded sensor index / marker bits, and timestamp
packets), :mod:`repro.firmware.commands` the host-to-device command set,
and :mod:`repro.firmware.device` the firmware main loop: continuous ADC
scanning with CPU averaging to 20 kHz, EEPROM-backed sensor configuration,
markers, and streaming control.
"""

from repro.firmware.commands import Command
from repro.firmware.device import Firmware
from repro.firmware.protocol import (
    SensorReading,
    Timestamp,
    StreamDecoder,
    encode_sensor_packet,
    encode_timestamp_packet,
)
from repro.firmware.version import FIRMWARE_VERSION

__all__ = [
    "Command",
    "Firmware",
    "SensorReading",
    "Timestamp",
    "StreamDecoder",
    "encode_sensor_packet",
    "encode_timestamp_packet",
    "FIRMWARE_VERSION",
]
