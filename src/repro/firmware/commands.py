"""Host-to-device command bytes.

The firmware supports the operations listed in the paper (Section III-B):
start/stop streaming, read/write configuration values, send a marker with
the next sensor data, report the firmware version, and reboot (optionally
to DFU mode for firmware upload).
"""

from __future__ import annotations

from enum import Enum


class Command(bytes, Enum):
    """Single-byte commands understood by the firmware."""

    START_STREAMING = b"S"
    STOP_STREAMING = b"X"
    READ_CONFIG = b"R"
    WRITE_CONFIG = b"W"  # followed by a full EEPROM image
    MARKER = b"M"  # marker bit attached to the next sensor-0 packet
    VERSION = b"V"  # respond with NUL-terminated version string
    REBOOT = b"B"
    REBOOT_DFU = b"D"

    @classmethod
    def lookup(cls, byte: bytes) -> "Command | None":
        for command in cls:
            if command.value == byte:
                return command
        return None
