"""Fig. 5: step response of a 12 V / 10 A sensor at 20 kHz.

The electronic load is modulated as a 100 Hz square wave between 3.3 A
and 8 A; the captured power shows the transitions on the millisecond
scale (left panel) and a single edge on the microsecond scale (right
panel).  At 20 kHz the observed rise time is bounded below by the 50 us
sample interval, demonstrating the sensor resolves power transients like
GPU kernel starts/stops.
"""

from __future__ import annotations

from repro.analysis.stepresponse import measure_step
from repro.core.setup import SimulatedSetup
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult

LOW_AMPS = 3.3
HIGH_AMPS = 8.0
MODULATION_HZ = 100.0


def run(cycles: int = 10, seed: int = 4) -> ExperimentResult:
    result = ExperimentResult(name="Fig. 5: step response (3.3 A -> 8 A at 100 Hz)")
    setup = SimulatedSetup(
        ["pcie_slot_12v"], seed=seed, direct=True, calibration_samples=64 * 1024
    )
    load = ElectronicLoad(slew_a_per_us=2.0)
    load.set_current(LOW_AMPS)
    load.program_square(
        LOW_AMPS, HIGH_AMPS, MODULATION_HZ, start=0.005, cycles=cycles
    )
    setup.connect(0, LoadedSupplyRail(LabSupply(12.0), load))
    duration = 0.005 + cycles / MODULATION_HZ + 0.005
    block = setup.ps.pump_seconds(duration)
    power = block.pair_power(0)
    times = block.times
    result.series["time_s"] = times
    result.series["power_w"] = power

    # Microsecond-scale view: one rising edge (first transition at 5 ms).
    edge_window = (times > 0.0046) & (times < 0.0056)
    metrics = measure_step(times[edge_window], power[edge_window])
    result.series["edge_time_s"] = times[edge_window]
    result.series["edge_power_w"] = power[edge_window]
    setup.close()

    sample_interval = 1.0 / setup.sample_rate
    result.rows.append(
        {
            "low level [W]": metrics.low_level,
            "high level [W]": metrics.high_level,
            "rise 10-90% [us]": metrics.rise_time * 1e6,
            "settle [us]": metrics.settle_time * 1e6,
            "sample interval [us]": sample_interval * 1e6,
            "rise [samples]": metrics.rise_time / sample_interval,
        }
    )
    result.notes.append(
        "rise time is bounded by the 50 us sample interval, not the 300 kHz "
        "analog bandwidth — the step settles within ~2 samples"
    )
    return result


registry.register(
    "fig5",
    section="Fig. 5",
    runner=run,
    params=(
        Param("cycles", "int", default=10),
        Param("seed", "int", default=4),
    ),
    bench={"cycles": 10},
    report_index=3,
    series=True,
    help="step response of the sensor at 20 kHz",
)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
