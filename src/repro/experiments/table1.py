"""Table I: theoretical worst-case accuracy of the sensor modules.

Derives each module's worst-case voltage/current/power error from the
physical constants in the module catalog via the paper's error
propagation formula, and compares against the published table.
"""

from __future__ import annotations

from repro.analysis.accuracy import worst_case_accuracy
from repro.campaign import registry
from repro.experiments.common import ExperimentResult, relative_delta
from repro.hardware.modules import module_spec

#: (module key, paper E_u [mV], paper E_i [A], paper E_p [W]) — Table I.
PAPER_TABLE1 = (
    ("pcie_slot_12v", 28.6, 0.35, 4.2),
    ("pcie_slot_3v3", 19.9, 0.35, 1.2),
    ("usbc", 28.6, 0.35, 7.0),
    ("pcie8pin", 28.6, 0.41, 5.0),
)


def run() -> ExperimentResult:
    result = ExperimentResult(name="Table I: worst-case module accuracy")
    for key, paper_eu_mv, paper_ei, paper_ep in PAPER_TABLE1:
        accuracy = worst_case_accuracy(module_spec(key))
        result.rows.append(
            {
                "module": accuracy.label,
                "E_u [mV]": accuracy.voltage_error_v * 1e3,
                "paper E_u": paper_eu_mv,
                "E_i [A]": accuracy.current_error_a,
                "paper E_i": paper_ei,
                "E_p [W]": accuracy.power_error_w,
                "paper E_p": paper_ep,
                "dP": f"{relative_delta(accuracy.power_error_w, paper_ep):+.1%}",
            }
        )
    result.notes.append(
        "errors are 3 sigma of transducer noise + ADC quantisation, "
        "propagated via E_p = sqrt((U*E_i)^2 + (I*E_u)^2 + (E_i*E_u)^2)"
    )
    return result


registry.register(
    "table1",
    section="Table I",
    runner=run,
    report_index=0,
    help="worst-case module accuracy from physical constants",
)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
