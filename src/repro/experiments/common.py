"""Experiment harness shared pieces.

Every experiment module exposes ``run(...) -> ExperimentResult`` with
bench-sized defaults and a ``full=True`` mode matching the paper's exact
scale, plus a ``main()`` that prints the paper-style table.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass
class ExperimentResult:
    """Rows (the paper's table), series (the paper's figure), and notes."""

    name: str
    rows: list[dict] = field(default_factory=list)
    series: dict[str, np.ndarray] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def save(self, directory: str | Path) -> Path:
        """Persist rows/notes as JSON and series as .npz (artifact parity).

        The paper releases its evaluation datasets; this writes the same
        shape of artifact for a regenerated experiment: ``result.json``
        with the table and notes, ``series.npz`` with the figure data.
        Returns the directory written.

        Both files are published atomically (written to a ``.tmp`` name,
        fsynced, then renamed — the store's ``.seg.tmp`` protocol), with
        ``result.json`` renamed last: a run killed mid-save leaves only
        ``.tmp`` debris, never a half-written artifact that
        :meth:`load` would parse as a valid result.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "name": self.name,
            "rows": [
                {k: _jsonable(v) for k, v in row.items()} for row in self.rows
            ],
            "notes": list(self.notes),
            "series_keys": sorted(self.series),
        }
        series_path = directory / "series.npz"
        if self.series:
            # np.savez appends ".npz" to bare paths; hand it an open
            # handle so the temp name is exactly what gets renamed.
            _publish(series_path, lambda f: np.savez_compressed(f, **self.series))
        elif series_path.exists():
            series_path.unlink()  # a re-run must not leave stale series
        _publish(
            directory / "result.json",
            lambda f: f.write(json.dumps(payload, indent=2).encode()),
        )
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "ExperimentResult":
        """Load an artifact written by :meth:`save`."""
        directory = Path(directory)
        payload = json.loads((directory / "result.json").read_text())
        series: dict[str, np.ndarray] = {}
        series_path = directory / "series.npz"
        if series_path.exists():
            with np.load(series_path) as archive:
                series = {key: archive[key] for key in archive.files}
        return cls(
            name=payload["name"],
            rows=payload["rows"],
            series=series,
            notes=payload["notes"],
        )


    def table(self) -> str:
        """Format the rows as an aligned text table."""
        if not self.rows:
            return f"[{self.name}] (no rows)"
        columns = list(self.rows[0])
        widths = {c: len(c) for c in columns}
        rendered = []
        for row in self.rows:
            cells = {c: _fmt(row.get(c, "")) for c in columns}
            for c in columns:
                widths[c] = max(widths[c], len(cells[c]))
            rendered.append(cells)
        header = "  ".join(c.rjust(widths[c]) for c in columns)
        lines = [f"[{self.name}]", header, "  ".join("-" * widths[c] for c in columns)]
        for cells in rendered:
            lines.append("  ".join(cells[c].rjust(widths[c]) for c in columns))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.table())


def _publish(path: Path, write) -> None:
    """Write ``path`` atomically: tmp file, fsync, rename."""
    tmp = path.parent / (path.name + ".tmp")
    with open(tmp, "wb") as handle:
        write(handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def relative_delta(measured: float, paper: float) -> float:
    """Signed relative difference of a measured value vs. the paper's."""
    if paper == 0:
        return float("inf") if measured else 0.0
    return measured / paper - 1.0
