"""Section IV-B: long-term stability of a PCIe 8-pin sensor module.

A 7.5 A load runs for 50 hours; a 128 k-sample window is captured every
15 minutes and summarised (mean / min / max).  The paper observes only
marginal fluctuations (+-0.09 W) of the window means and concludes that
one production-time calibration suffices.

Windows are simulated individually — the slow thermal drift model is an
analytic function of time (see :class:`repro.hardware.sensors._DriftModel`),
so the 50 simulated hours cost only 200 window captures.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stability import StabilityPoint, stability_statistics
from repro.core.setup import SimulatedSetup
from repro.core.sources import convert_codes
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult

LOAD_AMPS = 7.5
PAPER_MEAN_FLUCTUATION_W = 0.09


def run(
    hours: float = 50.0,
    window_interval_s: float = 900.0,
    window_samples: int = 16 * 1024,
    seed: int = 5,
    full: bool = False,
) -> ExperimentResult:
    """``full=True`` captures the paper's 128 k samples per window."""
    if full:
        window_samples = 128 * 1024
    result = ExperimentResult(name="Long-term stability (7.5 A, 50 h)")
    setup = SimulatedSetup(
        ["pcie8pin"], seed=seed, direct=True, calibration_samples=128 * 1024
    )
    load = ElectronicLoad()
    load.set_current(LOAD_AMPS)
    setup.connect(0, LoadedSupplyRail(LabSupply(12.0), load))

    window_starts = np.arange(0.0, hours * 3600.0, window_interval_s)
    points = []
    for start in window_starts:
        codes = setup.baseboard.averaged_codes(float(start), window_samples)
        values, _ = convert_codes(codes, setup.eeprom.configs)
        power = values[:, 0] * values[:, 1]
        points.append(
            StabilityPoint(
                time_hours=float(start) / 3600.0,
                mean=float(power.mean()),
                minimum=float(power.min()),
                maximum=float(power.max()),
            )
        )
    setup.close()

    stats = stability_statistics(points)
    result.series["time_hours"] = np.array([p.time_hours for p in points])
    result.series["mean_w"] = np.array([p.mean for p in points])
    result.series["min_w"] = np.array([p.minimum for p in points])
    result.series["max_w"] = np.array([p.maximum for p in points])
    result.rows.append(
        {
            "windows": stats.n_windows,
            "grand mean [W]": stats.grand_mean,
            "mean fluct [W]": stats.mean_fluctuation,
            "paper fluct [W]": PAPER_MEAN_FLUCTUATION_W,
            "extreme span [W]": stats.extreme_span,
            "recalibration needed": stats.requires_recalibration,
        }
    )
    result.notes.append(
        f"{window_samples} samples per window, one window per "
        f"{window_interval_s / 60:.0f} min over {hours:.0f} h"
    )
    return result


registry.register(
    "stability",
    section="Long-term stability",
    runner=run,
    params=(
        Param("hours", "float", default=50.0),
        Param("window_samples", "int", default=16 * 1024, full=128 * 1024),
        Param("seed", "int", default=5),
    ),
    bench={"hours": 50.0, "window_samples": 8 * 1024},
    report_index=4,
    series=True,
    help="50-hour drift study (Section IV-B)",
)


def main() -> None:
    run(full=True).print()


if __name__ == "__main__":
    main()
