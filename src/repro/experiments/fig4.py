"""Fig. 4: power error across a current sweep for four sensor types.

The load current is swept in 1 A steps from -10 A to +10 A; at each step
128 k samples are collected.  The figure plots the mean difference between
expected and measured power (continuous line) with the min/max envelope
(dotted lines).  The 3.3 V sensor is the most accurate because the current
error multiplies a 3.6x smaller voltage.
"""

from __future__ import annotations

import numpy as np

from repro.common.stats import summarize
from repro.core.setup import SimulatedSetup
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult

#: The four sensor types of Fig. 4: (module key, supply voltage).
FIG4_SENSORS = (
    ("pcie_slot_3v3", 3.3),
    ("pcie_slot_12v", 12.0),
    ("usbc", 20.0),
    ("pcie8pin", 12.0),
)


def run(
    n_samples: int = 16 * 1024,
    step_a: float = 1.0,
    seed: int = 3,
    full: bool = False,
) -> ExperimentResult:
    """Sweep each sensor type; ``full=True`` uses the paper's 128 k samples."""
    if full:
        n_samples = 128 * 1024
    result = ExperimentResult(name="Fig. 4: power error vs current sweep")
    for module_key, volts in FIG4_SENSORS:
        setup = SimulatedSetup(
            [module_key], seed=seed, direct=True, calibration_samples=128 * 1024
        )
        spec = setup.baseboard.populated_slots()[0].module.spec
        sweep = np.arange(-spec.max_current_a, spec.max_current_a + step_a / 2, step_a)
        supply = LabSupply(volts)
        means, mins, maxs = [], [], []
        for amps in sweep:
            load = ElectronicLoad()
            load.set_current(float(amps))
            rail = LoadedSupplyRail(supply, load)
            setup.connect(0, rail)
            setup.ps.pump_seconds(0.01)  # let the load's turn-on slew settle
            # Ground truth from the bench multimeters (exact in simulation).
            true_u = supply.voltage_under_load(np.array([amps]))[0]
            expected = true_u * amps
            block = setup.ps.pump(n_samples)
            summary = summarize(block.pair_power(0)).shifted(expected)
            means.append(summary.mean)
            mins.append(summary.minimum)
            maxs.append(summary.maximum)
        setup.close()
        key = f"{module_key}"
        result.series[f"{key}/current_a"] = sweep
        result.series[f"{key}/mean_error_w"] = np.asarray(means)
        result.series[f"{key}/min_error_w"] = np.asarray(mins)
        result.series[f"{key}/max_error_w"] = np.asarray(maxs)
        result.rows.append(
            {
                "sensor": f"{spec.nominal_voltage_v:g} V ({module_key})",
                "max |mean err| [W]": float(np.abs(means).max()),
                "envelope min [W]": float(np.min(mins)),
                "envelope max [W]": float(np.max(maxs)),
            }
        )
    result.notes.append(
        f"{n_samples} samples per 1 A step; mean error stays within the "
        "envelope dominated by current-sensor noise"
    )
    return result


registry.register(
    "fig4",
    section="Fig. 4",
    runner=run,
    params=(
        Param("n_samples", "int", default=16 * 1024, full=128 * 1024),
        Param("step_a", "float", default=1.0),
        Param("seed", "int", default=3),
    ),
    bench={"n_samples": 8 * 1024, "step_a": 2.0},
    report_index=2,
    series=True,
    help="power error vs current sweep for four sensor types",
)


def main() -> None:
    run(full=True).print()


if __name__ == "__main__":
    main()
