"""Ablation studies of the design choices DESIGN.md calls out.

Each study isolates one design decision of the paper and quantifies what
it buys:

* :func:`noise_bandwidth_study` — the correlated-noise model behind the
  Table II reconciliation (DESIGN.md, "Noise model").
* :func:`sampling_rate_study` — why the firmware averages six ADC scans:
  the raw scan rate would overrun the USB 1.1 link (paper, Section III-B).
* :func:`remote_sense_study` — what the module's remote-sense connector
  buys over sensing at the input port (paper, Section III-A).
* :func:`ps2_comparison_study` — the improvement list over PowerSensor2:
  field immunity, per-channel voltage measurement, 20 kHz vs 2.8 kHz.
* :func:`gc_hysteresis_study` — the SSD model's GC hysteresis, without
  which Fig. 12b's bandwidth variability does not appear.
* :func:`strategy_study` — brute force vs random sampling vs hill
  climbing over the beamformer space: what guided search buys when the
  space is too large to enumerate.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngStream
from repro.common.units import GIB, USB_FULL_SPEED_BPS
from repro.core.sources import convert_codes
from repro.dut.base import CabledRail, TraceRail
from repro.dut.gpu import Gpu, KernelLaunch
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail
from repro.dut.ssd import Ssd, SsdSpec
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult
from repro.firmware.device import default_eeprom
from repro.hardware.adc import AdcTiming
from repro.hardware.baseboard import Baseboard
from repro.hardware.modules import SensorModule, module_spec
from repro.hardware.powersensor2 import PowerSensor2
from repro.hardware.sensors import ExternalField
from repro.storage.engine import IoEngine, precondition
from repro.storage.fio import FioJob


def _bench_board(
    timing: AdcTiming | None = None,
    noise_bandwidth_hz: float | None = None,
    seed: int = 0,
) -> tuple[Baseboard, list]:
    """One perfect 12 V / 10 A module on a board, optionally ablated."""
    board = Baseboard(timing=timing)
    spec = module_spec("pcie_slot_12v")
    rng = RngStream(seed, "ablation")
    if noise_bandwidth_hz is None:
        module = SensorModule.manufacture(spec, rng, perfect=True)
    else:
        from repro.hardware.modules import VDD
        from repro.hardware.sensors import CurrentSensor, VoltageSensor

        module = SensorModule(
            spec,
            CurrentSensor(
                spec.sensitivity_v_per_a,
                spec.current_noise_rms_a,
                rng.child("current"),
                vdd=VDD,
                noise_bandwidth_hz=noise_bandwidth_hz,
            ),
            VoltageSensor(
                spec.voltage_gain,
                spec.voltage_noise_rms_v,
                rng.child("voltage"),
                vdd=VDD,
            ),
        )
    board.attach(0, module)
    return board, default_eeprom(board).configs


def _measure_sigma(board: Baseboard, configs, amps: float, n: int = 32 * 1024) -> float:
    load = ElectronicLoad()
    load.set_current(amps)
    board.connect(0, LoadedSupplyRail(LabSupply(12.0), load))
    codes = board.averaged_codes(0.02, n)
    values, _ = convert_codes(codes, configs)
    return float((values[:, 0] * values[:, 1]).std())


def noise_bandwidth_study(seed: int = 30) -> ExperimentResult:
    """Correlated vs white transducer noise against the Table II floor."""
    result = ExperimentResult(name="Ablation: transducer noise correlation")
    for label, bandwidth in [
        ("correlated (23.4 kHz, as modelled)", 23_400.0),
        ("white across sub-samples (1 MHz)", 1_000_000.0),
        ("fully correlated within a sample (2 kHz)", 2_000.0),
    ]:
        board, configs = _bench_board(noise_bandwidth_hz=bandwidth, seed=seed)
        sigma = _measure_sigma(board, configs, amps=1.0)
        result.rows.append(
            {
                "noise model": label,
                "sigma @20 kHz [W]": sigma,
                "paper [W]": 0.722,
                "reconciles Table II": abs(sigma - 0.722) < 0.08,
            }
        )
    result.notes.append(
        "only the correlated model reproduces the measured noise floor from "
        "the 115 mA rms datasheet figure; white noise under-predicts it "
        "(firmware averaging would win a full sqrt(6))"
    )
    return result


def sampling_rate_study(seed: int = 31) -> ExperimentResult:
    """Why average six scans: USB bandwidth vs noise vs time resolution."""
    result = ExperimentResult(name="Ablation: firmware averaging factor")
    for averages in (1, 2, 3, 6, 12, 24):
        timing = AdcTiming(averages=averages)
        board, configs = _bench_board(timing=timing, seed=seed)
        sigma = _measure_sigma(board, configs, amps=1.0, n=16 * 1024)
        # Full population: 4 modules -> 18 bytes per output sample.
        data_rate = 18 * 8 / timing.output_interval_s
        result.rows.append(
            {
                "averages": averages,
                "rate [kHz]": timing.output_rate_hz / 1e3,
                "USB load [Mbit/s]": data_rate / 1e6,
                "fits USB 1.1": data_rate <= USB_FULL_SPEED_BPS,
                "sigma [W]": sigma,
            }
        )
    result.notes.append(
        "streaming raw scans (averages=1) would need ~17 Mbit/s and overrun "
        "the 12 Mbit/s full-speed link; 6 averages gives 20 kHz with 4x "
        "headroom — the paper's design point"
    )
    return result


def remote_sense_study(seed: int = 32) -> ExperimentResult:
    """Voltage sensing at the DUT vs at the module's input port."""
    result = ExperimentResult(name="Ablation: remote sense connector")
    amps, volts, cable_ohms = 8.0, 12.0, 0.05
    for remote in (True, False):
        board, configs = _bench_board(seed=seed)
        load = ElectronicLoad()
        load.set_current(amps)
        inner = LoadedSupplyRail(LabSupply(volts, source_impedance_ohms=0.0), load)
        board.connect(0, CabledRail(inner, cable_ohms, remote_sense=remote))
        codes = board.averaged_codes(0.02, 16 * 1024)
        values, _ = convert_codes(codes, configs)
        measured = float((values[:, 0] * values[:, 1]).mean())
        result.rows.append(
            {
                "sensing": "remote (at DUT)" if remote else "local (input port)",
                "measured [W]": measured,
                "true DUT power [W]": volts * amps,
                "error [W]": measured - volts * amps,
            }
        )
    result.notes.append(
        f"without remote sense the I^2*R of the {cable_ohms * 1e3:.0f} mOhm "
        "cable is misattributed to the DUT (paper, Section III-A)"
    )
    return result


def ps2_comparison_study(seed: int = 33) -> ExperimentResult:
    """PowerSensor3's improvement list over PowerSensor2, quantified."""
    result = ExperimentResult(name="Ablation: PowerSensor3 vs PowerSensor2")

    # A GPU-like load on a drooping supply, plus a fan spinning up nearby.
    field = ExternalField(static_mt=0.0, ripple_mt=0.1)
    field.add_step(at_time=1.0, level_mt=2.0)
    gpu = Gpu("rtx4000ada", RngStream(seed, "abl-gpu"))
    gpu.launch(KernelLaunch(start=0.3, duration=1.5, n_waves=6, utilization=0.8))
    trace = gpu.render(2.2, dt=1e-4)
    rail = TraceRail(trace)  # 12 V nominal; true volts vary with the trace

    # PS3: one 8-pin module in the field environment.
    board = Baseboard()
    spec = module_spec("pcie8pin")
    module = SensorModule.manufacture(
        spec, RngStream(seed, "abl-ps3"), perfect=True, external_field=field
    )
    board.attach(0, module)
    board.connect(0, rail)
    configs = default_eeprom(board).configs
    n = int(round(2.2 * board.timing.output_rate_hz))
    codes = board.averaged_codes(0.0, n)
    values, _ = convert_codes(codes, configs)
    ps3_power = values[:, 0] * values[:, 1]
    ps3_times = np.arange(n) / board.timing.output_rate_hz

    # PS2: current-only channel at 2.8 kHz, same environment.
    ps2 = PowerSensor2([12.0], seed=seed, external_field=field)
    ps2.calibrate()
    ps2.attach(0, rail)
    ps2_times, ps2_power = ps2.measure(0.0, 2.2)

    true_energy = trace.energy()
    ps3_energy = float(np.trapezoid(ps3_power, ps3_times))
    ps2_energy = float(np.trapezoid(ps2_power, ps2_times))

    # Field-step sensitivity: shift of the measurement *error* (reading
    # minus ground truth) across the 2 mT step, so the GPU's own ramp does
    # not contaminate the comparison.
    from repro.vendor.base import trace_power_at

    def step_shift(times, power):
        error = power - trace_power_at(trace, times)
        before = error[(times > 0.6) & (times < 1.0)].mean()
        after = error[(times > 1.1) & (times < 1.5)].mean()
        return float(after - before)

    result.rows.extend(
        [
            {
                "quantity": "sampling rate [kHz]",
                "PowerSensor3": 20.0,
                "PowerSensor2": 2.8,
            },
            {
                "quantity": "energy error [%]",
                "PowerSensor3": 100 * (ps3_energy / true_energy - 1),
                "PowerSensor2": 100 * (ps2_energy / true_energy - 1),
            },
            {
                "quantity": "2 mT field step shift [W]",
                "PowerSensor3": step_shift(ps3_times, ps3_power),
                "PowerSensor2": step_shift(ps2_times, ps2_power),
            },
            {
                "quantity": "measures rail voltage",
                "PowerSensor3": True,
                "PowerSensor2": False,
            },
        ]
    )
    result.notes.append(
        "PS2's single-ended sensor couples the fan's 2 mT field step "
        "directly into the reading (~0.25 A/mT) and its assumed nominal "
        "voltage misses the real rail behaviour; both fixed in PS3"
    )
    return result


def gc_hysteresis_study(seed: int = 34) -> ExperimentResult:
    """GC watermark hysteresis vs continuous trickle collection."""
    result = ExperimentResult(name="Ablation: SSD GC hysteresis")
    for label, low, high in [
        ("hysteresis 1 % -> 3 % (as modelled)", 0.01, 0.03),
        ("trickle (collect-as-needed)", 0.01, 0.011),
    ]:
        spec = SsdSpec(
            logical_bytes=1 * GIB, gc_low_watermark=low, gc_high_watermark=high
        )
        ssd = Ssd(spec, seed=seed)
        engine = IoEngine(ssd, seed=seed)
        precondition(ssd, engine)
        ssd.idle_flush()
        outcome = engine.run(FioJob(rw="randwrite", bs="4k", runtime_s=20.0))
        # Aggregate to 1 s granularity (as Fig. 12b plots) before comparing.
        ticks = int(round(1.0 / engine.tick_s))
        n_seconds = len(outcome.intervals) // ticks
        bw_all = outcome.bandwidth[: n_seconds * ticks].reshape(n_seconds, ticks).mean(1)
        pw_all = outcome.power[: n_seconds * ticks].reshape(n_seconds, ticks).mean(1)
        bw = bw_all[n_seconds // 3 :]
        power = pw_all[n_seconds // 3 :]
        result.rows.append(
            {
                "gc policy": label,
                "steady bw [MB/s]": float(bw.mean() / 1e6),
                "bw CV": float(bw.std() / max(bw.mean(), 1e-9)),
                "power CV": float(power.std() / power.mean()),
            }
        )
    result.notes.append(
        "bursty collection amplifies Fig. 12b's bandwidth variability; with "
        "trickle GC the variability drops markedly — power is stable either way"
    )
    return result


def strategy_study(seed: int = 35, budget: int = 150) -> ExperimentResult:
    """Search strategies over the 5120-point beamformer space."""
    from repro.tuner.kernels import BEAMFORMER_TARGETS, TensorCoreBeamformer
    from repro.tuner.kernels import beamformer_search_space
    from repro.tuner.tuning import tune

    result = ExperimentResult(name="Ablation: tuner search strategies")
    target = BEAMFORMER_TARGETS["rtx4000ada"]
    kernel = TensorCoreBeamformer(target)
    space = beamformer_search_space()

    brute = tune(kernel, space, target.clocks_mhz, trials=1, seed=seed)
    best_tflops = brute.fastest.tflops
    runs = [("brute force", brute)]
    runs.append(
        (
            "random sample",
            tune(
                kernel,
                space,
                target.clocks_mhz,
                trials=1,
                strategy="random_sample",
                max_configs=budget,
                seed=seed,
            ),
        )
    )
    runs.append(
        (
            "hill climbing",
            tune(
                kernel,
                space,
                target.clocks_mhz,
                trials=1,
                strategy="hill_climbing",
                max_configs=budget,
                objective="inverse_tflops",
                seed=seed,
            ),
        )
    )
    for label, outcome in runs:
        result.rows.append(
            {
                "strategy": label,
                "evaluations": len(outcome.results),
                "best TFLOP/s": outcome.fastest.tflops,
                "fraction of optimum": outcome.fastest.tflops / best_tflops,
                "tuning time [s]": outcome.tuning_seconds,
            }
        )
    result.notes.append(
        f"with a {budget}-evaluation budget, guided search recovers nearly "
        "the brute-force optimum at a fraction of the tuning time — the "
        "kind of search Kernel Tuner runs when spaces outgrow enumeration"
    )
    return result


_ABLATION_STUDIES = (
    ("ablation_noise", "Ablation: noise correlation", noise_bandwidth_study, 30, 10),
    ("ablation_averaging", "Ablation: averaging factor", sampling_rate_study, 31, 11),
    ("ablation_remote_sense", "Ablation: remote sense", remote_sense_study, 32, 12),
    ("ablation_ps2", "Ablation: PS2 vs PS3", ps2_comparison_study, 33, 13),
    ("ablation_gc", "Ablation: GC hysteresis", gc_hysteresis_study, 34, 14),
    ("ablation_strategies", "Ablation: search strategies", strategy_study, 35, 15),
)

for _name, _section, _runner, _seed, _index in _ABLATION_STUDIES:
    registry.register(
        _name,
        section=_section,
        runner=_runner,
        params=(
            (Param("seed", "int", default=_seed), Param("budget", "int", default=150))
            if _name == "ablation_strategies"
            else (Param("seed", "int", default=_seed),)
        ),
        report_index=_index,
        help="design-choice ablation study (see DESIGN.md)",
    )


def main() -> None:
    for study in (
        noise_bandwidth_study,
        sampling_rate_study,
        remote_sense_study,
        ps2_comparison_study,
        gc_hysteresis_study,
        strategy_study,
    ):
        study().print()
        print()


if __name__ == "__main__":
    main()
