"""Fig. 8 + the 3.25x claim: auto-tuning the Tensor-Core Beamformer.

Tunes the 512-variant beamformer space across 10 locked clocks (5120
configurations, 7 trials each) on the RTX 4000 Ada model and reports:

* the performance/efficiency scatter and its Pareto front,
* the fastest configuration (paper: 80.4 TFLOP/s at 0.83 TFLOP/J),
* the most efficient one (paper: +12.7 % efficiency, -21.5 % speed),
* accounted tuning time with the PowerSensor3 strategy versus the
  on-board-sensor (NVML continuous-run) strategy — the 3.25x speedup
  (paper: 2274.4 s vs ~7394 s).

The full 5120-point sweep uses the noise-free oracle observer for energy
(the scatter and time accounting do not depend on sensor noise); a random
subsample is re-measured through the complete simulated PowerSensor3
pipeline to validate that the sensor agrees with the oracle.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngStream
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult, relative_delta
from repro.tuner.kernels import BEAMFORMER_TARGETS, TensorCoreBeamformer
from repro.tuner.observers import NvmlObserver, PowerSensorObserver
from repro.tuner.runner import BenchmarkRunner
from repro.tuner.tuning import tune
from repro.tuner.kernels import beamformer_search_space

PAPER = {
    "fastest_tflops": 80.4,
    "fastest_tflop_per_j": 0.83,
    "most_efficient_tflop_per_j": 0.935,  # 12.7 % above 0.83
    "most_efficient_tflops": 63.1,  # 21.5 % below 80.4
    "tuning_seconds_ps3": 2274.4,
    "tuning_seconds_onboard": 7394.0,
    "speedup": 3.25,
}


def run(
    target_key: str = "rtx4000ada",
    seed: int = 7,
    ps3_verify_points: int = 12,
) -> ExperimentResult:
    result = ExperimentResult(name="Fig. 8: beamformer tuning (RTX 4000 Ada)")
    target = BEAMFORMER_TARGETS[target_key]
    kernel = TensorCoreBeamformer(target)
    space = beamformer_search_space()

    tuning = tune(kernel, space, target.clocks_mhz, trials=7, seed=seed)
    summary = tuning.summary()
    nvml_seconds = (
        tuning.tuning_seconds
        + summary["configs"] * NvmlObserver().continuous_duration_s
    )
    speedup = nvml_seconds / tuning.tuning_seconds

    tflops = np.array([r.tflops for r in tuning.results])
    eff = np.array([r.tflop_per_joule for r in tuning.results])
    result.series["tflops"] = tflops
    result.series["tflop_per_j"] = eff
    pareto = tuning.pareto()
    result.series["pareto_tflops"] = np.array([r.tflops for r in pareto])
    result.series["pareto_tflop_per_j"] = np.array([r.tflop_per_joule for r in pareto])

    # Validate the sensor path: re-measure a subsample through the full
    # simulated PowerSensor3 pipeline and compare energies to the oracle.
    rng = RngStream(seed, "fig8/verify")
    observer = PowerSensorObserver(idle_watts=target.spec.idle_watts, seed=seed)
    runner = BenchmarkRunner(kernel=kernel, observer=observer, trials=7, seed=seed)
    picks = rng.generator.choice(len(tuning.results), size=ps3_verify_points, replace=False)
    errors = []
    for i in picks:
        reference = tuning.results[int(i)]
        measured = runner.run_config(reference.config, reference.clock_mhz)
        errors.append(abs(measured.mean_energy / reference.mean_energy - 1.0))
    ps3_energy_err = float(np.mean(errors))

    rows = [
        ("configurations", summary["configs"], 5120),
        ("fastest TFLOP/s", summary["fastest_tflops"], PAPER["fastest_tflops"]),
        ("fastest TFLOP/J", summary["fastest_tflop_per_j"], PAPER["fastest_tflop_per_j"]),
        (
            "most efficient TFLOP/J",
            summary["most_efficient_tflop_per_j"],
            PAPER["most_efficient_tflop_per_j"],
        ),
        (
            "most efficient TFLOP/s",
            summary["most_efficient_tflops"],
            PAPER["most_efficient_tflops"],
        ),
        ("efficiency gain", summary["efficiency_gain"], 0.127),
        ("slowdown", summary["slowdown"], 0.215),
        ("tuning time PS3 [s]", tuning.tuning_seconds, PAPER["tuning_seconds_ps3"]),
        ("tuning time on-board [s]", nvml_seconds, PAPER["tuning_seconds_onboard"]),
        ("speedup", speedup, PAPER["speedup"]),
    ]
    for name, measured, paper in rows:
        result.rows.append(
            {
                "quantity": name,
                "measured": float(measured),
                "paper": float(paper),
                "delta": f"{relative_delta(float(measured), float(paper)):+.1%}",
            }
        )
    result.rows.append(
        {
            "quantity": "PS3 vs oracle energy error",
            "measured": ps3_energy_err,
            "paper": 0.0,
            "delta": "n/a",
        }
    )
    result.notes.append(
        f"{ps3_verify_points} configurations re-measured through the full "
        "simulated sensor pipeline"
    )

    # The paper picked its 10 clocks with the model-steered narrowing of
    # [22]; confirm the reproduced method lands on the same range.
    from repro.tuner.clockmodel import dvfs_menu, narrow_clock_range

    reference = tuning.fastest.config
    recommendation = narrow_clock_range(
        kernel, reference, dvfs_menu(600.0, target.spec.boost_clock_mhz)
    )
    overlap = sum(
        1
        for f in recommendation.recommended_clocks_mhz
        if target.clocks_mhz[0] <= f <= target.clocks_mhz[-1]
    )
    result.notes.append(
        f"model-steered narrowing ([22]) recommends "
        f"{recommendation.recommended_clocks_mhz[0]:.0f}-"
        f"{recommendation.recommended_clocks_mhz[-1]:.0f} MHz; "
        f"{overlap}/10 clocks inside the paper's 1200-2100 MHz tuning range"
    )
    return result


registry.register(
    "fig8",
    section="Fig. 8",
    runner=run,
    params=(
        Param("seed", "int", default=7),
        Param("ps3_verify_points", "int", default=12),
    ),
    bench={"ps3_verify_points": 6},
    report_index=7,
    series=True,
    help="beamformer auto-tuning and the 3.25x tuning-time claim",
)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
