"""Campaign experiment wrapping the psfio declarative workload runner.

One cell = one fio-style job (pattern x block size x queue depth x read
mix) against one FTL mapping policy on a freshly formatted, optionally
preconditioned drive, measured end-to-end through the simulated
PowerSensor3 — the same path the ``psfio`` CLI takes, expressed as a
registry experiment so campaign plans can sweep the whole grid.

The single result row is the scoreboard: bandwidth, PS3 watts, **joules
per IO** (the figure of merit of the extended Fig. 12 study), write
amplification and mapping-table footprint.
"""

from __future__ import annotations

from repro.campaign import registry
from repro.campaign.registry import Param
from repro.dut.ssd import SsdSpec
from repro.experiments.common import ExperimentResult
from repro.ftl import FTL_POLICIES
from repro.storage.jobfile import JobRunner, parse_jobfile

#: MiB in bytes (the drive capacity axis is expressed in MiB).
MIB = 1 << 20


def run(
    rw: str = "randwrite",
    bs: str = "4k",
    iodepth: int = 1,
    rwmixread: int = 50,
    ftl: str = "page",
    runtime_s: float = 2.0,
    capacity_mib: int = 64,
    precondition: float = 0.5,
    seed: int = 21,
    registry=None,
) -> ExperimentResult:
    """Run one job cell; the job file text is generated, then reparsed.

    Going through :func:`repro.storage.jobfile.parse_jobfile` keeps this
    experiment honest to the psfio grammar — a cell is exactly the job
    file a user could write by hand.
    """
    jobtext = "\n".join(
        [
            f"[{rw}]",
            f"rw={rw}",
            f"bs={bs}",
            f"iodepth={iodepth}",
            f"rwmixread={rwmixread}",
            f"runtime={runtime_s:g}",
            "pre_format=1",
            f"precondition={precondition:g}",
        ]
    )
    specs = parse_jobfile(jobtext)
    runner = JobRunner(
        specs,
        ftl=ftl,
        ssd_spec=SsdSpec(logical_bytes=capacity_mib * MIB),
        seed=seed,
        registry=registry,
    )
    outcome = runner.run()[0]

    result = ExperimentResult(name=f"Workload {rw} bs={bs} qd={iodepth} ({ftl})")
    result.rows.append(
        {
            "workload": outcome.name,
            "ftl": outcome.policy,
            "bandwidth [MB/s]": outcome.bandwidth_mean_bps / 1e6,
            "bandwidth CV": outcome.bandwidth_cv,
            "IOPS": outcome.iops_mean,
            "PS3 power [W]": outcome.power_mean_w,
            "J/IO [uJ]": outcome.joules_per_io * 1e6,
            "WA": outcome.write_amplification,
            "map [KiB]": outcome.map_bytes / 1024,
            "lookups": outcome.lookup_ops,
        }
    )
    if outcome.latency_percentiles_us:
        for quantile, value in sorted(outcome.latency_percentiles_us.items()):
            result.rows[0][f"p{quantile} [us]"] = value
    result.notes.append(
        f"capacity={capacity_mib} MiB precondition={precondition:g} passes "
        f"runtime={runtime_s:g}s seed={seed}"
    )
    return result


registry.register(
    "workload",
    section="psfio workload",
    runner=run,
    params=(
        Param(
            "rw",
            "str",
            default="randwrite",
            choices=("read", "write", "randread", "randwrite", "rw", "randrw"),
        ),
        Param("bs", "str", default="4k"),
        Param("iodepth", "int", default=1),
        Param("rwmixread", "int", default=50),
        Param("ftl", "str", default="page", choices=tuple(sorted(FTL_POLICIES))),
        Param("runtime_s", "float", default=2.0, full=20.0),
        Param("capacity_mib", "int", default=64, full=512),
        Param("precondition", "float", default=0.5),
        Param("seed", "int", default=21),
    ),
    accepts_registry=True,
    help="one psfio job x FTL policy, PS3-measured (J/IO scoreboard)",
)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
