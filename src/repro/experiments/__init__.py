"""Experiment harness: one module per paper table/figure.

Each module exposes ``run(...) -> ExperimentResult`` (bench-sized
defaults, ``full=True`` for paper scale where applicable) and a ``main()``
that prints the paper-style table.  The per-experiment index lives in
DESIGN.md; paper-vs-measured numbers are recorded in EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentResult, relative_delta

__all__ = ["ExperimentResult", "relative_delta"]
