"""Fig. 10: the same beamformer tuning on the NVIDIA Jetson AGX Orin.

The paper repeats the Fig. 8 measurement on the Jetson devkit, powered
over USB-C through PowerSensor3, and notes the overall behaviour matches
the RTX 4000 Ada.  It also names the two advantages PowerSensor3 has over
the Jetson's built-in sensor: ~0.1 s time resolution, and module-only
coverage (the carrier board is invisible to it).  Both are quantified
here: a sample workload is measured through the USB-C PowerSensor3 bench
and through the built-in monitor, and the carrier-board power the
built-in sensor misses is reported.

The paper does not print numeric axes for Fig. 10; EXPERIMENTS.md records
the model-chosen operating points.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.energy import integrate_energy
from repro.common.rng import RngStream
from repro.core.setup import SimulatedSetup
from repro.dut.gpu import KernelLaunch
from repro.dut.jetson import JetsonAgxOrin
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult
from repro.tuner.kernels import BEAMFORMER_TARGETS, TensorCoreBeamformer
from repro.tuner.kernels import beamformer_search_space
from repro.tuner.observers import NvmlObserver
from repro.tuner.tuning import tune
from repro.vendor.jetson_ina import JetsonPowerMonitor


def run(seed: int = 8) -> ExperimentResult:
    result = ExperimentResult(name="Fig. 10: beamformer tuning (Jetson AGX Orin)")
    target = BEAMFORMER_TARGETS["jetson_orin_gpu"]
    kernel = TensorCoreBeamformer(target)
    space = beamformer_search_space()

    tuning = tune(kernel, space, target.clocks_mhz, trials=7, seed=seed)
    summary = tuning.summary()
    nvml_seconds = (
        tuning.tuning_seconds
        + summary["configs"] * NvmlObserver().continuous_duration_s
    )
    result.series["tflops"] = np.array([r.tflops for r in tuning.results])
    result.series["tflop_per_j"] = np.array(
        [r.tflop_per_joule for r in tuning.results]
    )

    for name, value in [
        ("configurations", summary["configs"]),
        ("fastest TFLOP/s", summary["fastest_tflops"]),
        ("fastest TFLOP/J", summary["fastest_tflop_per_j"]),
        ("most efficient TFLOP/J", summary["most_efficient_tflop_per_j"]),
        ("most efficient TFLOP/s", summary["most_efficient_tflops"]),
        ("tuning time PS3 [s]", tuning.tuning_seconds),
        ("tuning time built-in [s]", nvml_seconds),
        ("speedup", nvml_seconds / tuning.tuning_seconds),
    ]:
        result.rows.append({"quantity": name, "value": float(value)})

    # Built-in sensor coverage: measure one workload both ways.
    jetson = JetsonAgxOrin(RngStream(seed, "fig10/jetson"))
    jetson.launch(KernelLaunch(start=0.5, duration=2.0, n_waves=8))
    module_trace, total_trace = jetson.render(t_end=3.5, dt=2e-4)

    setup = SimulatedSetup(["usbc"], seed=seed, direct=True, calibration_samples=32 * 1024)
    setup.connect(0, jetson.usb_c_rail(total_trace))
    block = setup.ps.pump_seconds(3.5)
    ps3_energy = integrate_energy(block.times, block.total_power())
    setup.close()

    monitor = JetsonPowerMonitor(module_trace, RngStream(seed, "fig10/ina"))
    builtin_energy = monitor.energy(0.0, 3.5)
    true_total = integrate_energy(total_trace.times, total_trace.watts)
    carrier_energy = true_total - integrate_energy(
        module_trace.times, module_trace.watts
    )
    result.rows.extend(
        [
            {"quantity": "sample workload energy, PS3 on USB-C [J]", "value": ps3_energy},
            {"quantity": "same, built-in sensor [J]", "value": builtin_energy},
            {
                "quantity": "carrier power invisible to built-in [W]",
                "value": carrier_energy / 3.5,
            },
            {
                "quantity": "built-in sensor update rate [Hz]",
                "value": 1.0 / 0.1,
            },
        ]
    )
    result.notes.append(
        "the built-in sensor misses the carrier board entirely and refreshes "
        "only every ~0.1 s; PowerSensor3 on the USB-C feed sees the whole device"
    )
    return result


registry.register(
    "fig10",
    section="Fig. 10",
    runner=run,
    params=(Param("seed", "int", default=8),),
    report_index=8,
    series=True,
    help="beamformer auto-tuning on the Jetson AGX Orin",
)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
