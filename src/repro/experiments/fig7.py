"""Fig. 7: GPU synthetic workload — PowerSensor3 versus on-board sensors.

A synthetic fused-multiply-add workload runs for ~2 seconds after a brief
idle, executing thread-block waves along the grid's y-dimension.  The
experiment measures the three PCIe feeds with PowerSensor3 (3.3 V slot,
12 V slot, external 8-pin) and compares against:

* Fig. 7a (NVIDIA RTX 4000 Ada): NVML 'instantaneous' and 'average'
  readings — the instantaneous energy roughly agrees, but the 10 Hz
  refresh misses the inter-wave power dips and the averaged field is
  inadequate for kernel-level energy;
* Fig. 7b (AMD W7700): ROCm SMI and AMD SMI — different interfaces,
  identical data, both closely matching PowerSensor3.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.analysis.energy import detect_activity, extract_features, integrate_energy
from repro.common.rng import RngStream
from repro.core.setup import SimulatedSetup
from repro.dut.gpu import Gpu, KernelLaunch
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult, relative_delta
from repro.vendor.nvml import NvmlDevice
from repro.vendor.rocm_smi import AmdSmiDevice, RocmSmiDevice

IDLE_BEFORE_S = 0.5
KERNEL_S = 2.0
TAIL_S = 2.0
N_WAVES = 8


def _measure_ps3(gpu: Gpu, trace, seed: int):
    """Measure the three feeds with a 3-module PowerSensor3 bench."""
    setup = SimulatedSetup(
        ["pcie_slot_3v3", "pcie_slot_12v", "pcie8pin"],
        seed=seed,
        direct=True,
        calibration_samples=32 * 1024,
    )
    rails = gpu.rails(trace)
    setup.connect(0, rails["slot_3v3"])
    setup.connect(1, rails["slot_12v"])
    setup.connect(2, rails["ext_12v"])
    block = setup.ps.pump_seconds(trace.times[-1])
    times = block.times
    watts = block.total_power()
    setup.close()
    return times, watts


def run(gpu_key: str = "rtx4000ada", seed: int = 6, dt: float = 1e-4) -> ExperimentResult:
    is_amd = gpu_key == "w7700"
    panel = "7b (AMD W7700)" if is_amd else "7a (NVIDIA RTX 4000 Ada)"
    result = ExperimentResult(name=f"Fig. {panel}: PS3 vs on-board sensor")

    gpu = Gpu(gpu_key, RngStream(seed, f"fig7/{gpu_key}"))
    utilization = 1.0 if is_amd else 0.8  # FMA load pins the W7700 at its limit
    gpu.launch(
        KernelLaunch(
            start=IDLE_BEFORE_S,
            duration=KERNEL_S,
            n_waves=N_WAVES,
            utilization=utilization,
        )
    )
    t_end = IDLE_BEFORE_S + KERNEL_S + TAIL_S
    trace = gpu.render(t_end, dt=dt)

    ps3_times, ps3_watts = _measure_ps3(gpu, trace, seed)
    result.series["ps3/time_s"] = ps3_times
    result.series["ps3/watts"] = ps3_watts

    window = (trace.times >= IDLE_BEFORE_S) & (trace.times <= IDLE_BEFORE_S + KERNEL_S)
    true_energy = integrate_energy(trace.times[window], trace.watts[window])
    ps3_window = (ps3_times >= IDLE_BEFORE_S) & (ps3_times <= IDLE_BEFORE_S + KERNEL_S)
    ps3_energy = integrate_energy(ps3_times[ps3_window], ps3_watts[ps3_window])

    # Trace features PowerSensor3 resolves (the figure's annotations).
    activity = detect_activity(ps3_times, ps3_watts, min_duration=0.1)[0]
    features = extract_features(ps3_times, ps3_watts, activity)

    poll_times = np.arange(0.0, t_end, 0.01)
    rng = RngStream(seed, "fig7/vendor")
    if is_amd:
        rocm = RocmSmiDevice(trace, rng.child("rocm"))
        amd = AmdSmiDevice(rocm)
        rocm_series = rocm.average_socket_power(poll_times)
        amd_series = amd.socket_power_info(poll_times)["current_socket_power"]
        vendor_energy = rocm.energy(IDLE_BEFORE_S, IDLE_BEFORE_S + KERNEL_S)
        result.series["rocm/time_s"] = poll_times
        result.series["rocm/watts"] = rocm_series
        result.rows.append(
            {
                "quantity": "ROCm SMI == AMD SMI",
                "value": bool(np.array_equal(rocm_series, amd_series)),
                "paper": "identical results",
            }
        )
        vendor_name = "AMD SMI"
        vendor_dips = extract_features(
            poll_times, rocm_series, detect_activity(poll_times, rocm_series, min_duration=0.1)[0]
        ).n_dips
    else:
        nvml = NvmlDevice(trace, rng.child("nvml"))
        inst = nvml.power_usage(poll_times, "instantaneous")
        avg = nvml.power_usage(poll_times, "average")
        vendor_energy = nvml.energy(IDLE_BEFORE_S, IDLE_BEFORE_S + KERNEL_S, "instantaneous")
        avg_energy = nvml.energy(IDLE_BEFORE_S, IDLE_BEFORE_S + KERNEL_S, "average")
        result.series["nvml_inst/time_s"] = poll_times
        result.series["nvml_inst/watts"] = inst
        result.series["nvml_avg/watts"] = avg
        result.rows.append(
            {
                "quantity": "NVML 'average' energy error",
                "value": f"{relative_delta(avg_energy, true_energy):+.1%}",
                "paper": "completely inadequate",
            }
        )
        vendor_name = "NVML instantaneous"
        vendor_dips = extract_features(
            poll_times, inst, detect_activity(poll_times, inst, min_duration=0.1)[0]
        ).n_dips

    result.rows.extend(
        [
            {"quantity": "true kernel energy [J]", "value": round(true_energy, 1), "paper": "-"},
            {
                "quantity": "PS3 kernel energy error",
                "value": f"{relative_delta(ps3_energy, true_energy):+.2%}",
                "paper": "reference instrument",
            },
            {
                "quantity": f"{vendor_name} energy error",
                "value": f"{relative_delta(vendor_energy, true_energy):+.2%}",
                "paper": "reasonable (NVIDIA) / excellent (AMD)",
            },
            {
                "quantity": "inter-wave dips seen (PS3)",
                "value": features.n_dips,
                "paper": f"{N_WAVES - 1} (visible)",
            },
            {
                "quantity": f"inter-wave dips seen ({vendor_name})",
                "value": vendor_dips,
                "paper": "missed at 10 Hz" if not is_amd else "resolved (~1 ms)",
            },
            {
                "quantity": "launch level [W]",
                "value": round(features.launch_watts, 1),
                "paper": "~95 (NVIDIA) / 150 limit (AMD)",
            },
            {
                "quantity": "steady level [W]",
                "value": round(features.steady_watts, 1),
                "paper": "~120 (NVIDIA) / 150 (AMD)",
            },
            {
                "quantity": "idle return [s]",
                "value": round(features.idle_return_time, 2),
                "paper": ">1 s (NVIDIA) / fast (AMD)",
            },
        ]
    )
    return result


_FIG7_PARAMS = (
    Param("seed", "int", default=6),
    Param("dt", "float", default=1e-4),
)

registry.register(
    "fig7a",
    section="Fig. 7a (NVIDIA)",
    runner=functools.partial(run, "rtx4000ada"),
    params=_FIG7_PARAMS,
    report_index=5,
    series=True,
    help="GPU workload, PowerSensor3 vs NVML",
)

registry.register(
    "fig7b",
    section="Fig. 7b (AMD)",
    runner=functools.partial(run, "w7700"),
    params=_FIG7_PARAMS,
    report_index=6,
    series=True,
    help="GPU workload, PowerSensor3 vs AMD SMI",
)


def main() -> None:
    run("rtx4000ada").print()
    print()
    run("w7700").print()


if __name__ == "__main__":
    main()
