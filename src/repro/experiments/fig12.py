"""Fig. 12: SSD power and bandwidth under fio workloads.

Panel (a): 10-second random-read jobs at request sizes from 1 KiB to
4096 KiB — bandwidth and power both rise with request size until the
device saturates.  Panel (b): a long random-write workload after
formatting and sequential preconditioning — garbage collection makes
bandwidth highly variable while power climbs to ~5 W at the first
bandwidth descent and stays stable, confirming bandwidth is not an
indicator of power.

Every point is measured through the simulated PowerSensor3 (3.3 V slot
module via the modified riser, as in the paper's Fig. 11 setup).

Scale: the simulated drive is capacity-scaled (DESIGN.md); the write
experiment reaches the steady state the paper needs >20 minutes for in a
proportionally shorter simulated time.
"""

from __future__ import annotations

import numpy as np

from repro.common.units import GIB
from repro.core.setup import SimulatedSetup
from repro.dut.base import TraceRail
from repro.dut.ssd import Ssd, SsdSpec
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult
from repro.storage.engine import IoEngine, precondition
from repro.storage.fio import FioJob

READ_SIZES = ("1k", "4k", "16k", "64k", "128k", "256k", "512k", "1m", "2m", "4m")


def _ps3_mean_power(setup: SimulatedSetup, trace, duration: float) -> float:
    """Measure a rendered power trace with the PowerSensor3 bench."""
    rail = TraceRail(trace, offset=setup.ps.source.clock.now)
    setup.connect(0, rail)
    block = setup.ps.pump_seconds(duration)
    return float(block.pair_power(0).mean())


def run(
    logical_bytes: int = 2 * GIB,
    read_runtime_s: float = 3.0,
    write_runtime_s: float = 40.0,
    seed: int = 9,
    full: bool = False,
) -> ExperimentResult:
    """``full=True`` runs the 8 GiB drive with longer workloads."""
    if full:
        logical_bytes = 8 * GIB
        read_runtime_s = 10.0
        write_runtime_s = 120.0
    result = ExperimentResult(name="Fig. 12: SSD power and bandwidth (fio)")
    ssd = Ssd(SsdSpec(logical_bytes=logical_bytes), seed=seed)
    engine = IoEngine(ssd, seed=seed)
    setup = SimulatedSetup(
        ["pcie_slot_3v3"], seed=seed, direct=True, calibration_samples=32 * 1024
    )

    # Panel (a): random-read request-size sweep.
    read_bw, read_power = [], []
    for size in READ_SIZES:
        job = FioJob(rw="randread", bs=size, iodepth=4, runtime_s=read_runtime_s)
        outcome = engine.run(job)
        measured = _ps3_mean_power(
            setup, outcome.power_trace(volts=3.3), read_runtime_s
        )
        read_bw.append(outcome.mean_bandwidth)
        read_power.append(measured)
        result.rows.append(
            {
                "panel": "a",
                "workload": f"randread {size}",
                "bandwidth [MB/s]": outcome.mean_bandwidth / 1e6,
                "PS3 power [W]": measured,
            }
        )
    result.series["read/request_bytes"] = np.array(
        [FioJob(rw="randread", bs=s).block_bytes for s in READ_SIZES]
    )
    result.series["read/bandwidth_bps"] = np.array(read_bw)
    result.series["read/power_w"] = np.array(read_power)

    # Panel (b): format, precondition sequentially, then sustained random
    # 4 KiB writes to steady state.
    ssd.format()
    precondition(ssd, engine, bs="128k")
    ssd.idle_flush()
    job = FioJob(rw="randwrite", bs="4k", iodepth=4, runtime_s=write_runtime_s)
    outcome = engine.run(job)
    measured = _ps3_mean_power(setup, outcome.power_trace(volts=3.3), write_runtime_s)
    setup.close()

    # Aggregate to 1-second granularity, as the paper plots.
    ticks_per_s = int(round(1.0 / engine.tick_s))
    n_seconds = len(outcome.intervals) // ticks_per_s
    bw = outcome.bandwidth[: n_seconds * ticks_per_s].reshape(n_seconds, ticks_per_s)
    pw = outcome.power[: n_seconds * ticks_per_s].reshape(n_seconds, ticks_per_s)
    bw_1s = bw.mean(axis=1)
    pw_1s = pw.mean(axis=1)
    result.series["write/time_s"] = np.arange(1, n_seconds + 1, dtype=float)
    result.series["write/bandwidth_bps"] = bw_1s
    result.series["write/power_w"] = pw_1s

    steady = slice(n_seconds // 3, None)
    result.rows.extend(
        [
            {
                "panel": "b",
                "workload": "randwrite 4k (initial)",
                "bandwidth [MB/s]": float(bw_1s[0] / 1e6),
                "PS3 power [W]": float(pw_1s[0]),
            },
            {
                "panel": "b",
                "workload": "randwrite 4k (steady mean)",
                "bandwidth [MB/s]": float(bw_1s[steady].mean() / 1e6),
                "PS3 power [W]": float(pw_1s[steady].mean()),
            },
            {
                "panel": "b",
                "workload": "randwrite 4k (steady CV)",
                "bandwidth [MB/s]": float(
                    bw_1s[steady].std() / max(bw_1s[steady].mean(), 1e-9)
                ),
                "PS3 power [W]": float(pw_1s[steady].std() / pw_1s[steady].mean()),
            },
        ]
    )
    result.rows.append(
        {
            "panel": "b",
            "workload": "whole-run PS3 mean",
            "bandwidth [MB/s]": float(outcome.mean_bandwidth / 1e6),
            "PS3 power [W]": measured,
        }
    )
    result.notes.extend(
        [
            "panel b: bandwidth coefficient-of-variation vs power CV shows "
            "bandwidth varies strongly while power is stable (~5 W)",
            f"write amplification at end of run: "
            f"{ssd.counters.write_amplification:.2f}",
        ]
    )
    return result


def run_ftl_comparison(
    logical_bytes: int = GIB // 2,
    write_runtime_s: float = 20.0,
    seed: int = 9,
    policies: tuple[str, ...] = ("page", "group", "compressed", "hybrid"),
) -> ExperimentResult:
    """Extended Fig. 12b: the write study swept across FTL policies.

    Each policy gets an identical drive, preconditioning pass and
    sustained random 4 KiB write workload; the simulated PowerSensor3
    measures every run, and the comparison reports **energy per IO**
    alongside bandwidth variability, write amplification and
    mapping-table footprint — the trade-off axes a mapping scheme moves.

    Kept separate from :func:`run` so the paper-matching figure stays
    bit-identical while this sweep is free to evolve.
    """
    result = ExperimentResult(name="Fig. 12 (extended): energy per IO by FTL policy")
    for policy in policies:
        ssd = Ssd(SsdSpec(logical_bytes=logical_bytes), seed=seed, ftl=policy)
        engine = IoEngine(ssd, seed=seed)
        setup = SimulatedSetup(
            ["pcie_slot_3v3"], seed=seed, direct=True, calibration_samples=32 * 1024
        )
        ssd.format()
        precondition(ssd, engine, bs="128k")
        ssd.idle_flush()
        job = FioJob(rw="randwrite", bs="4k", iodepth=4, runtime_s=write_runtime_s)
        outcome = engine.run(job)
        watts = _ps3_mean_power(
            setup, outcome.power_trace(volts=3.3), write_runtime_s
        )
        setup.close()

        bw = outcome.bandwidth
        steady = bw[bw.size // 3 :]
        energy_j = watts * write_runtime_s
        total_ios = float(bw.sum() * engine.tick_s / job.block_bytes)
        joules_per_io = energy_j / total_ios if total_ios else float("inf")
        result.rows.append(
            {
                "ftl": policy,
                "bandwidth [MB/s]": outcome.mean_bandwidth / 1e6,
                "bandwidth CV": float(steady.std() / max(steady.mean(), 1e-9)),
                "PS3 power [W]": watts,
                "J/IO [uJ]": joules_per_io * 1e6,
                "WA": ssd.counters.write_amplification,
                "map [KiB]": ssd.map_bytes() / 1024,
            }
        )
        result.series[f"{policy}/bandwidth_bps"] = bw
        result.series[f"{policy}/power_w"] = outcome.power
        result.series[f"{policy}/joules_per_io"] = np.array([joules_per_io])
        result.series[f"{policy}/map_bytes"] = np.array([float(ssd.map_bytes())])
    result.notes.append(
        "power is pinned near the saturated TLC level for every policy; what "
        "a mapping scheme changes is the host-visible share of that work — "
        "so energy per host IO tracks write amplification, while the "
        "mapping-table footprint moves the other way"
    )
    return result


registry.register(
    "fig12",
    section="Fig. 12",
    runner=run,
    params=(
        Param("logical_bytes", "int", default=2 * GIB, full=8 * GIB),
        Param("read_runtime_s", "float", default=3.0, full=10.0),
        Param("write_runtime_s", "float", default=40.0, full=120.0),
        Param("seed", "int", default=9),
    ),
    bench={"read_runtime_s": 1.0, "write_runtime_s": 30.0},
    report_index=9,
    series=True,
    help="SSD power/bandwidth under fio workloads",
)

registry.register(
    "fig12_ftl",
    section="Fig. 12 (FTL comparison)",
    runner=run_ftl_comparison,
    params=(
        Param("logical_bytes", "int", default=GIB // 2),
        Param("write_runtime_s", "float", default=20.0),
        Param("seed", "int", default=9),
    ),
    bench={"write_runtime_s": 10.0},
    series=True,
    help="energy per IO across the four FTL mapping policies",
)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
