"""Table II: error statistics versus effective sampling rate.

A calibrated 12 V / 10 A sensor measures a constant load; 128 k samples
are captured at 20 kHz with ``pstest``-equivalent code, then block
averaged down to 10 / 5 / 1 / 0.5 kHz.  The paper tabulates min / max /
peak-to-peak / std of the measured power for 0.5 A and 1 A loads.
"""

from __future__ import annotations

from repro.analysis.averaging import averaging_table
from repro.core.setup import SimulatedSetup
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail
from repro.campaign import registry
from repro.campaign.registry import Param
from repro.experiments.common import ExperimentResult

#: Paper Table II std column per rate (kHz -> W rms), identical for both loads.
PAPER_STD = {20.0: 0.72, 10.0: 0.51, 5.0: 0.36, 1.0: 0.16, 0.5: 0.115}


def run(
    loads_a: tuple[float, ...] = (0.5, 1.0),
    n_samples: int = 128 * 1024,
    seed: int = 2,
) -> ExperimentResult:
    result = ExperimentResult(name="Table II: error vs sampling rate (12 V / 10 A)")
    setup = SimulatedSetup(
        ["pcie_slot_12v"], seed=seed, direct=True, calibration_samples=128 * 1024
    )
    supply = LabSupply(12.0)
    for load_amps in loads_a:
        load = ElectronicLoad()
        load.set_current(load_amps)
        setup.connect(0, LoadedSupplyRail(supply, load))
        setup.ps.pump_seconds(0.01)  # let the load's turn-on slew settle
        block = setup.ps.pump(n_samples)
        power = block.pair_power(0)
        for row in averaging_table(power, setup.sample_rate):
            result.rows.append(
                {
                    "load [A]": load_amps,
                    "Fs [kHz]": row.rate_khz,
                    "min [W]": row.minimum,
                    "max [W]": row.maximum,
                    "p-p [W]": row.peak_to_peak,
                    "std [W]": row.std,
                    "paper std": PAPER_STD[row.rate_khz],
                }
            )
    setup.close()
    result.notes.append(
        f"{n_samples} samples per load point; block averaging of the 20 kHz capture"
    )
    return result


registry.register(
    "table2",
    section="Table II",
    runner=run,
    params=(
        Param("n_samples", "int", default=32 * 1024, full=128 * 1024),
        Param("seed", "int", default=2),
    ),
    bench={"loads_a": (0.5, 1.0), "n_samples": 64 * 1024},
    report_index=1,
    help="noise vs effective sampling rate on a 12 V / 10 A sensor",
)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
