"""Streaming robustness experiment: fleet x fault matrix x backpressure.

The paper's evaluation measures a clean bench; the production stack also
has to survive a dirty one.  This experiment drives a fleet of simulated
devices through the byte-accurate protocol path with a deterministic
fault matrix on the link (:mod:`repro.transport.faults`), fans the
decoded stream through a :class:`~repro.server.ring.BroadcastRing` with
a deliberately slow subscriber, and scores what arrives:

* stream health (packets dropped to resync, retries, stalls) from the
  :class:`~repro.core.health.StreamHealth` counters;
* fan-out loss accounting per cursor policy (``block`` flow-controls
  and stays lossless, ``drop-oldest`` evicts, ``downsample`` thins);
* the headline **delivered ratio** — subscriber-received samples over
  producer-decoded samples — the metric the campaign ablation groups
  rank defences by.

The first row is the fleet aggregate (the scoreboard row the ablation
report reads); one row per device follows.
"""

from __future__ import annotations

from repro.campaign import registry
from repro.campaign.registry import Param
from repro.common.errors import StreamStalledError
from repro.core.setup import SimulatedSetup
from repro.experiments.common import ExperimentResult
from repro.server.ring import BroadcastRing, RingCursor

#: Samples pumped per encoded frame (one ring append per pump).
FRAME_SAMPLES = 64


def run(
    fleet: int = 1,
    faults: str = "none",
    backpressure: str = "block",
    samples_per_device: int = 4096,
    ring_capacity: int = 16,
    drain_every: int = 3,
    seed: int = 20,
    registry=None,
) -> ExperimentResult:
    """Stream ``samples_per_device`` per device through faults + fan-out.

    The subscriber only drains its cursor every ``drain_every`` appends
    (and only half the backlog at a time), so the ring genuinely
    pressures the policy under test.  ``faults="none"`` disables link
    fault injection; any other value is a
    :func:`repro.transport.faults.parse_fault_spec` spec string.
    """
    result = ExperimentResult(name="Streaming robustness (fleet / faults / fan-out)")
    fault_spec = None if faults.strip().lower() in ("", "none") else faults

    totals = {
        "decoded": 0,
        "delivered": 0,
        "packets_dropped": 0,
        "retries": 0,
        "stalls": 0,
        "lost_frames": 0,
        "skipped_frames": 0,
        "flow_stalls": 0,
        "gave_up": 0,
    }
    device_rows = []
    for device in range(fleet):
        setup = SimulatedSetup(
            ["pcie_slot_12v"],
            seed=seed + device,
            direct=False,
            calibrate=False,
            faults=fault_spec,
            fault_seed=seed + 1000 + device,
            registry=registry,
            device=f"dev{device}",
        )
        try:
            ring = BroadcastRing(ring_capacity)
            cursor = RingCursor(ring, policy=backpressure)
            delivered = 0
            flow_stalls = 0
            appends = 0
            gave_up = False
            n_frames = max(samples_per_device // FRAME_SAMPLES, 1)
            for _ in range(n_frames):
                try:
                    block = setup.ps.pump(FRAME_SAMPLES)
                except StreamStalledError:
                    # A dead/stalled device is a datapoint, not a crash:
                    # it scores as lost throughput on the scoreboard.
                    gave_up = True
                    break
                n = len(block)
                if n == 0:
                    continue
                if backpressure == "block" and cursor.overrun():
                    # The lossless policy flow-controls the producer:
                    # drain fully before appending (and count the stall).
                    flow_stalls += 1
                    delivered += sum(s for _, s in cursor.take())
                ring.append(b"\0" * (2 * n), n)
                appends += 1
                if appends % drain_every == 0:
                    # A deliberately slow subscriber: one frame per visit,
                    # so sustained pressure genuinely exercises the policy.
                    delivered += sum(s for _, s in cursor.take(1))
            # End of stream: drain whatever the ring still retains.
            delivered += sum(s for _, s in cursor.take())

            health = setup.ps.source.health
            decoded = ring.samples_appended
            ratio = delivered / decoded if decoded else 0.0
            device_rows.append(
                {
                    "device": f"dev{device}",
                    "decoded": decoded,
                    "delivered": delivered,
                    "delivered ratio": ratio,
                    "packets dropped": health.packets_dropped,
                    "retries": health.retries,
                    "stalls": health.stalls,
                    "frames lost": cursor.lost_frames,
                    "frames skipped": cursor.skipped_frames,
                    "flow stalls": flow_stalls,
                    "gave up": gave_up,
                }
            )
            totals["decoded"] += decoded
            totals["delivered"] += delivered
            totals["packets_dropped"] += health.packets_dropped
            totals["retries"] += health.retries
            totals["stalls"] += health.stalls
            totals["lost_frames"] += cursor.lost_frames
            totals["skipped_frames"] += cursor.skipped_frames
            totals["flow_stalls"] += flow_stalls
            totals["gave_up"] += int(gave_up)
        finally:
            setup.close()

    ratio = totals["delivered"] / totals["decoded"] if totals["decoded"] else 0.0
    result.rows.append(
        {
            "device": "fleet",
            "decoded": totals["decoded"],
            "delivered": totals["delivered"],
            "delivered ratio": ratio,
            "packets dropped": totals["packets_dropped"],
            "retries": totals["retries"],
            "stalls": totals["stalls"],
            "frames lost": totals["lost_frames"],
            "frames skipped": totals["skipped_frames"],
            "flow stalls": totals["flow_stalls"],
            "gave up": totals["gave_up"],
        }
    )
    result.rows.extend(device_rows)
    result.notes.append(
        f"fleet={fleet} faults={faults} backpressure={backpressure} "
        f"ring={ring_capacity} drain_every={drain_every}"
    )
    return result


registry.register(
    "streaming",
    section="Streaming robustness",
    runner=run,
    params=(
        Param("fleet", "int", default=1),
        Param("faults", "str", default="none"),
        Param(
            "backpressure",
            "str",
            default="block",
            choices=("block", "drop-oldest", "downsample"),
        ),
        Param("samples_per_device", "int", default=4096, full=32 * 1024),
        Param("ring_capacity", "int", default=16),
        Param("drain_every", "int", default=3),
        Param("seed", "int", default=20),
    ),
    accepts_registry=True,
    help="fleet x link-fault matrix x fan-out backpressure policy",
)


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
