"""PMT core abstractions.

PMT (Corda et al., HUST'22) is a small library giving one interface over
many power sensors: ``create`` a backend, ``read`` a state, and compute
joules/watts/seconds between two states.  The paper uses PMT as the
harness for its GPU case studies; this reimplementation exposes the same
three-call surface over the simulated sensors.

Because the whole bench runs on simulated time, ``read`` takes the query
time explicitly instead of sampling a wall clock.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.common.errors import MeasurementError


@dataclass(frozen=True)
class PmtState:
    """A PMT measurement snapshot."""

    timestamp: float  # seconds
    joules: float  # cumulative energy since the backend was created
    watts: float  # instantaneous power at the snapshot


class PmtBackend(ABC):
    """One sensor behind the PMT interface."""

    name: str = "abstract"

    @abstractmethod
    def read(self, at_time: float) -> PmtState:
        """Snapshot the sensor at a simulated time."""

    def dump(self, times) -> list[PmtState]:
        """Convenience: snapshot at each time in an iterable."""
        return [self.read(float(t)) for t in times]


def pmt_seconds(first: PmtState, second: PmtState) -> float:
    return second.timestamp - first.timestamp


def pmt_joules(first: PmtState, second: PmtState) -> float:
    return second.joules - first.joules


def pmt_watts(first: PmtState, second: PmtState) -> float:
    dt = pmt_seconds(first, second)
    if dt <= 0:
        raise MeasurementError("states must be strictly ordered in time")
    return pmt_joules(first, second) / dt
