"""PMT core abstractions.

PMT (Corda et al., HUST'22) is a small library giving one interface over
many power sensors: ``create`` a backend, ``read`` a state, and compute
joules/watts/seconds between two states.  The paper uses PMT as the
harness for its GPU case studies; this reimplementation exposes the same
three-call surface over the simulated sensors.

Because the whole bench runs on simulated time, ``read`` takes the query
time explicitly instead of sampling a wall clock.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.common.errors import MeasurementError
from repro.observability import MetricsRegistry, Tracer


@dataclass(frozen=True)
class PmtState:
    """A PMT measurement snapshot."""

    timestamp: float  # seconds
    joules: float  # cumulative energy since the backend was created
    watts: float  # instantaneous power at the snapshot


class PmtBackend(ABC):
    """One sensor behind the PMT interface.

    Subclasses implement :meth:`_read`; the public :meth:`read` wraps it
    with optional observability — when a registry is bound (see
    :meth:`observe`), every snapshot is timed as a ``pmt_read`` span and
    counted in ``pmt_reads_total{backend=<name>}``.
    """

    name: str = "abstract"

    #: Observability handles; ``None`` until bound with :meth:`observe`
    #: (``PowerSensorBackend`` adopts its PowerSensor's automatically).
    registry: MetricsRegistry | None = None
    tracer: Tracer | None = None

    def observe(
        self, registry: MetricsRegistry, tracer: Tracer | None = None
    ) -> "PmtBackend":
        """Bind this backend to a metrics registry; returns self."""
        self.registry = registry
        self.tracer = tracer if tracer is not None else Tracer(registry)
        return self

    @abstractmethod
    def _read(self, at_time: float) -> PmtState:
        """Snapshot the sensor at a simulated time."""

    def read(self, at_time: float) -> PmtState:
        """Snapshot the sensor, recording the read if observability is bound."""
        if self.registry is None:
            return self._read(at_time)
        with self.tracer.span("pmt_read", backend=self.name):
            state = self._read(at_time)
        self.registry.counter(
            "pmt_reads_total", help="PMT snapshots served", backend=self.name
        ).inc()
        self.registry.gauge(
            "pmt_last_watts",
            help="instantaneous power at the last PMT read",
            backend=self.name,
        ).set(state.watts)
        return state

    def dump(self, times) -> list[PmtState]:
        """Convenience: snapshot at each time in an iterable."""
        return [self.read(float(t)) for t in times]


def pmt_seconds(first: PmtState, second: PmtState) -> float:
    return second.timestamp - first.timestamp


def pmt_joules(first: PmtState, second: PmtState) -> float:
    return second.joules - first.joules


def pmt_watts(first: PmtState, second: PmtState) -> float:
    dt = pmt_seconds(first, second)
    if dt <= 0:
        raise MeasurementError("states must be strictly ordered in time")
    return pmt_joules(first, second) / dt
