"""Power Measurement Toolkit (PMT) reimplementation.

One interface over many power sensors (Corda et al., HUST'22): create a
backend, read states, compute joules/watts/seconds between them.  The
paper's GPU case studies (Fig. 7) run through PMT.
"""

from repro.pmt.backends import (
    AmdSmiBackend,
    DummyBackend,
    FleetBackend,
    JetsonBackend,
    NvmlBackend,
    PowerSensorBackend,
    RaplBackend,
    RocmBackend,
    create,
)
from repro.pmt.base import PmtBackend, PmtState, pmt_joules, pmt_seconds, pmt_watts

__all__ = [
    "create",
    "PmtBackend",
    "PmtState",
    "pmt_joules",
    "pmt_watts",
    "pmt_seconds",
    "PowerSensorBackend",
    "FleetBackend",
    "NvmlBackend",
    "RocmBackend",
    "AmdSmiBackend",
    "JetsonBackend",
    "RaplBackend",
    "DummyBackend",
]
