"""PMT backends over the simulated sensors.

Mirrors the backends the paper lists (Section V-A1): PowerSensor3, NVML
for NVIDIA GPUs, ROCm SMI / AMD SMI for AMD GPUs, RAPL for CPUs, the
Jetson rail monitor, and a dummy.  ``create`` is the factory the real PMT
exposes.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, MeasurementError
from repro.core.powersensor import PowerSensor
from repro.pmt.base import PmtBackend, PmtState
from repro.vendor.jetson_ina import JetsonPowerMonitor
from repro.vendor.nvml import NvmlDevice
from repro.vendor.rapl import RaplDomain
from repro.vendor.rocm_smi import AmdSmiDevice, RocmSmiDevice


class PowerSensorBackend(PmtBackend):
    """PMT over a PowerSensor3 host handle.

    Reading at time t pumps the simulated stream up to t; cumulative
    energy is the host library's own integration.
    """

    name = "powersensor3"

    def __init__(self, ps: PowerSensor) -> None:
        self.ps = ps
        self.observe(ps.registry, getattr(ps, "tracer", None))

    def _read(self, at_time: float) -> PmtState:
        state = self.ps.read()
        if at_time < state.time:
            raise MeasurementError(
                f"cannot read at {at_time:.6f}s: stream already at {state.time:.6f}s"
            )
        self.ps.pump_seconds(at_time - state.time)
        state = self.ps.read()
        return PmtState(
            timestamp=state.time,
            joules=self.ps.total_energy(),
            watts=state.total_power,
        )


class RemotePowerSensorBackend(PowerSensorBackend):
    """PMT over a shared PowerSensor3 served by a psserve daemon.

    Accepts a connect spec (``host:port`` / ``unix:PATH``) or an already
    constructed :class:`~repro.server.RemoteSampleSource`, so several PMT
    consumers (and other tools) can meter the same device concurrently.
    """

    name = "powersensor3-remote"

    def __init__(self, remote, **source_kwargs) -> None:
        from repro.server.client import RemoteSampleSource

        if isinstance(remote, RemoteSampleSource):
            source = remote
        else:
            source = RemoteSampleSource(remote, **source_kwargs)
        super().__init__(PowerSensor(source))


class FleetBackend(PmtBackend):
    """PMT over a device fleet: per-member backends plus an aggregate.

    Accepts a :class:`~repro.core.fleet.Fleet` or a list of device specs
    (``sim://…``, ``remote://…``, ``replay://…``).  :attr:`members` maps
    each device name to its own :class:`PowerSensorBackend`, so callers
    can meter any member individually; reading the fleet backend itself
    pumps every member to the same timestamp and reports fleet-wide
    cumulative joules and instantaneous watts.
    """

    name = "powersensor3-fleet"

    def __init__(self, fleet) -> None:
        from repro.core.fleet import Fleet

        if not isinstance(fleet, Fleet):
            fleet = Fleet.from_specs(list(fleet))
        self.fleet = fleet
        self.members = {
            name: PowerSensorBackend(member.ps)
            for name, member in fleet.members.items()
        }
        self.observe(fleet.registry, fleet.tracer)

    def member(self, name: str) -> PowerSensorBackend:
        """The per-device backend for one fleet member."""
        try:
            return self.members[name]
        except KeyError:
            known = ", ".join(self.members) or "(none)"
            raise ConfigurationError(
                f"no fleet member named {name!r}; members: {known}"
            ) from None

    def _read(self, at_time: float) -> PmtState:
        if not self.members:
            raise MeasurementError("the fleet has no devices")
        states = [backend._read(at_time) for backend in self.members.values()]
        return PmtState(
            timestamp=at_time,
            joules=sum(s.joules for s in states),
            watts=sum(s.watts for s in states),
        )

    def close(self) -> None:
        self.fleet.close()


class _PolledApiBackend(PmtBackend):
    """Shared shape for backends over a polled vendor API."""

    poll_rate_hz = 100.0

    def __init__(self) -> None:
        self._t0: float | None = None

    def _power_at(self, at_time: float) -> float:
        raise NotImplementedError

    def _energy_between(self, start: float, stop: float) -> float:
        raise NotImplementedError

    def _read(self, at_time: float) -> PmtState:
        if self._t0 is None:
            self._t0 = at_time
        joules = 0.0
        if at_time > self._t0:
            joules = self._energy_between(self._t0, at_time)
        return PmtState(timestamp=at_time, joules=joules, watts=self._power_at(at_time))


class NvmlBackend(_PolledApiBackend):
    name = "nvml"

    def __init__(self, device: NvmlDevice, mode: str = "instantaneous") -> None:
        super().__init__()
        self.device = device
        self.mode = mode

    def _power_at(self, at_time: float) -> float:
        import numpy as np

        return float(self.device.power_usage(np.array([at_time]), self.mode)[0])

    def _energy_between(self, start: float, stop: float) -> float:
        return self.device.energy(start, stop, self.mode, self.poll_rate_hz)


class RocmBackend(_PolledApiBackend):
    name = "rocm"
    poll_rate_hz = 1000.0

    def __init__(self, device: RocmSmiDevice) -> None:
        super().__init__()
        self.device = device

    def _power_at(self, at_time: float) -> float:
        import numpy as np

        return float(self.device.average_socket_power(np.array([at_time]))[0])

    def _energy_between(self, start: float, stop: float) -> float:
        return self.device.energy(start, stop, self.poll_rate_hz)


class AmdSmiBackend(_PolledApiBackend):
    name = "amdsmi"
    poll_rate_hz = 1000.0

    def __init__(self, device: AmdSmiDevice) -> None:
        super().__init__()
        self.device = device

    def _power_at(self, at_time: float) -> float:
        import numpy as np

        info = self.device.socket_power_info(np.array([at_time]))
        return float(info["current_socket_power"][0])

    def _energy_between(self, start: float, stop: float) -> float:
        return self.device.energy(start, stop, self.poll_rate_hz)


class JetsonBackend(_PolledApiBackend):
    name = "jetson"

    def __init__(self, monitor: JetsonPowerMonitor) -> None:
        super().__init__()
        self.monitor = monitor

    def _power_at(self, at_time: float) -> float:
        import numpy as np

        return float(self.monitor.module_power(np.array([at_time]))[0])

    def _energy_between(self, start: float, stop: float) -> float:
        return self.monitor.energy(start, stop, self.poll_rate_hz)


class RaplBackend(PmtBackend):
    name = "rapl"

    def __init__(self, domain: RaplDomain) -> None:
        self.domain = domain
        self._t0_uj: int | None = None
        self._accumulated = 0.0
        self._last_uj = 0

    def _read(self, at_time: float) -> PmtState:
        import numpy as np

        uj = int(self.domain.energy_uj(np.array([at_time]))[0])
        if self._t0_uj is None:
            self._t0_uj = uj
            self._last_uj = uj
        self._accumulated += RaplDomain.counter_delta_j(self._last_uj, uj)
        self._last_uj = uj
        # Instantaneous power is not part of RAPL; report a short-window mean.
        eps = 0.01
        uj_before = int(self.domain.energy_uj(np.array([max(at_time - eps, 0.0)]))[0])
        watts = RaplDomain.counter_delta_j(uj_before, uj) / eps
        return PmtState(timestamp=at_time, joules=self._accumulated, watts=watts)


class DummyBackend(PmtBackend):
    """PMT's traditional zero-power backend (useful for plumbing tests)."""

    name = "dummy"

    def _read(self, at_time: float) -> PmtState:
        return PmtState(timestamp=at_time, joules=0.0, watts=0.0)


_FACTORIES = {
    "powersensor3": PowerSensorBackend,
    "powersensor3-remote": RemotePowerSensorBackend,
    "powersensor3-fleet": FleetBackend,
    "nvml": NvmlBackend,
    "rocm": RocmBackend,
    "amdsmi": AmdSmiBackend,
    "jetson": JetsonBackend,
    "rapl": RaplBackend,
    "dummy": DummyBackend,
}


def create(name: str, *args, **kwargs) -> PmtBackend:
    """PMT's factory: ``create("nvml", device)`` etc."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ConfigurationError(f"unknown PMT backend {name!r}; known: {known}")
    if name == "dummy":
        return factory()
    return factory(*args, **kwargs)
