"""Simulated PowerSensor3 electronics.

This package models the analog/digital hardware substrate of the paper's
toolkit: the Hall-effect current and optically isolated voltage transducers
(:mod:`repro.hardware.sensors`), the five sensor-module designs and their
datasheet constants (:mod:`repro.hardware.modules`), the STM32F411's 10-bit
ADC (:mod:`repro.hardware.adc`), the virtual EEPROM holding per-sensor
conversion values (:mod:`repro.hardware.eeprom`), the ST7735-style status
display (:mod:`repro.hardware.display`), and the baseboard that ties up to
four modules to the microcontroller (:mod:`repro.hardware.baseboard`).
"""

from repro.hardware.adc import Adc, AdcTiming
from repro.hardware.baseboard import Baseboard, SensorChannel
from repro.hardware.eeprom import SensorConfig, VirtualEeprom
from repro.hardware.modules import (
    MODULE_CATALOG,
    ModuleSpec,
    SensorModule,
    module_spec,
)
from repro.hardware.powersensor2 import PowerSensor2
from repro.hardware.sensors import CurrentSensor, ExternalField, VoltageSensor

__all__ = [
    "Adc",
    "AdcTiming",
    "Baseboard",
    "SensorChannel",
    "SensorConfig",
    "VirtualEeprom",
    "MODULE_CATALOG",
    "ModuleSpec",
    "SensorModule",
    "module_spec",
    "CurrentSensor",
    "ExternalField",
    "VoltageSensor",
    "PowerSensor2",
]
