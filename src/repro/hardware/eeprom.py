"""Virtual EEPROM: per-sensor conversion values stored on the device.

The STM32 firmware emulates an EEPROM in flash and stores, for each of the
eight logical sensors (4 module slots x {current, voltage}):

* the sensor name,
* the pair name (shared by the two sensors of a module),
* the reference voltage (midpoint for current sensors, 0 for voltage),
* the sensitivity (V/A) or gain (V/V),
* whether the sensor is enabled.

The host reads these at connect time so users never have to track which
physical modules are plugged where (paper, Section III-B1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError

NAME_LEN = 16
SENSORS = 8  # 4 module slots x (current, voltage)

_STRUCT = struct.Struct("<16s16sff?3x")  # name, pair, vref, slope, enabled + pad


def _encode_name(name: str) -> bytes:
    raw = name.encode("ascii", errors="replace")[: NAME_LEN - 1]
    return raw.ljust(NAME_LEN, b"\x00")


def _decode_name(raw: bytes) -> str:
    return raw.split(b"\x00", 1)[0].decode("ascii", errors="replace")


@dataclass(frozen=True)
class SensorConfig:
    """Conversion values for one logical sensor."""

    name: str = ""
    pair_name: str = ""
    vref: float = 0.0
    slope: float = 1.0  # sensitivity (V/A) for current, gain (V/V) for voltage
    enabled: bool = False

    def pack(self) -> bytes:
        return _STRUCT.pack(
            _encode_name(self.name),
            _encode_name(self.pair_name),
            float(self.vref),
            float(self.slope),
            bool(self.enabled),
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "SensorConfig":
        if len(raw) != _STRUCT.size:
            raise ConfigurationError(
                f"sensor config record must be {_STRUCT.size} bytes, got {len(raw)}"
            )
        name, pair, vref, slope, enabled = _STRUCT.unpack(raw)
        return cls(
            name=_decode_name(name),
            pair_name=_decode_name(pair),
            vref=vref,
            slope=slope,
            enabled=enabled,
        )

    @property
    def record_size(self) -> int:
        return _STRUCT.size

    def convert(self, adc_volts: float) -> float:
        """Convert an ADC-pin voltage to a physical value using these values.

        For a current sensor this yields amperes: ``(v - vref) / slope``;
        for a voltage sensor, with vref 0 and slope the divider gain, it
        yields the input voltage.
        """
        if self.slope == 0:
            raise ConfigurationError(f"sensor {self.name!r} has zero slope")
        return (adc_volts - self.vref) / self.slope


RECORD_SIZE = _STRUCT.size


@dataclass
class VirtualEeprom:
    """Eight sensor-config records with byte (de)serialisation.

    ``generation`` counts record writes so consumers that cache derived
    values (e.g. the firmware's enabled-sensor list) can detect in-place
    reconfiguration cheaply.
    """

    configs: list[SensorConfig] = field(
        default_factory=lambda: [SensorConfig() for _ in range(SENSORS)]
    )
    generation: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.configs) != SENSORS:
            raise ConfigurationError(f"EEPROM holds exactly {SENSORS} sensor records")

    def get(self, sensor: int) -> SensorConfig:
        self._check_index(sensor)
        return self.configs[sensor]

    def set(self, sensor: int, config: SensorConfig) -> None:
        self._check_index(sensor)
        self.configs[sensor] = config
        self.generation += 1

    def update(self, sensor: int, **changes) -> SensorConfig:
        """Replace selected fields of one record; returns the new record."""
        new = replace(self.get(sensor), **changes)
        self.set(sensor, new)
        return new

    def pack(self) -> bytes:
        return b"".join(c.pack() for c in self.configs)

    @classmethod
    def unpack(cls, raw: bytes) -> "VirtualEeprom":
        expected = RECORD_SIZE * SENSORS
        if len(raw) != expected:
            raise ConfigurationError(
                f"EEPROM image must be {expected} bytes, got {len(raw)}"
            )
        configs = [
            SensorConfig.unpack(raw[i * RECORD_SIZE : (i + 1) * RECORD_SIZE])
            for i in range(SENSORS)
        ]
        return cls(configs=configs)

    @staticmethod
    def _check_index(sensor: int) -> None:
        if not 0 <= sensor < SENSORS:
            raise ConfigurationError(f"sensor index {sensor} out of range 0..{SENSORS - 1}")
