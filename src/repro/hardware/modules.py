"""The five PowerSensor3 sensor-module designs and their datasheet constants.

The paper ships five module designs (Section III-A): a 20 A PCIe-8-pin
module for external GPU power, a 10 A module for PCIe slot power (used in a
12 V and a 3.3 V variant whose voltage dividers differ), a USB-C module, a
general-purpose 20 A terminal-block module, and a 50 A high-current module.

Each :class:`ModuleSpec` stores *physical* constants (sensitivity, voltage
full scale, rms noise of the two transducers).  The worst-case accuracy
numbers of the paper's Table I are not stored — they are *derived* from
these constants by :mod:`repro.analysis.accuracy`, and a test pins the
derivation to the published table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream
from repro.hardware.sensors import CurrentSensor, ExternalField, VoltageSensor

#: ADC reference / sensor supply voltage on the baseboard.
VDD = 3.3

#: ADC resolution used by the firmware (10 most significant bits).
ADC_BITS = 10
ADC_LEVELS = 1 << ADC_BITS


@dataclass(frozen=True)
class ModuleSpec:
    """Datasheet-level description of one sensor-module design."""

    key: str
    name: str
    connector: str
    nominal_voltage_v: float
    max_current_a: float
    sensitivity_v_per_a: float
    voltage_full_scale_v: float
    current_noise_rms_a: float
    voltage_noise_rms_v: float  # input-referred amplifier noise

    @property
    def voltage_gain(self) -> float:
        """Volts at the ADC pin per volt at the module input."""
        return VDD / self.voltage_full_scale_v

    @property
    def min_current_a(self) -> float:
        """Hall sensors are bidirectional; range is symmetric."""
        return -self.max_current_a

    @property
    def current_lsb_a(self) -> float:
        """Input-referred size of one ADC step on the current channel."""
        return VDD / ADC_LEVELS / self.sensitivity_v_per_a

    @property
    def voltage_lsb_v(self) -> float:
        """Input-referred size of one ADC step on the voltage channel."""
        return self.voltage_full_scale_v / ADC_LEVELS

    @property
    def nominal_max_power_w(self) -> float:
        return self.nominal_voltage_v * self.max_current_a


def _spec(**kwargs) -> ModuleSpec:
    return ModuleSpec(**kwargs)


# Noise constants: the Hall rms values follow the MLX91221 datasheet figure
# the paper quotes (115 mA rms for the 10 A part); voltage amplifier noise
# is input-referred through each module's divider.  Together with ADC
# quantisation these reproduce the paper's Table I worst-case numbers (see
# repro.analysis.accuracy and the table1 experiment).
MODULE_CATALOG: dict[str, ModuleSpec] = {
    "pcie8pin": _spec(
        key="pcie8pin",
        name="PCIe 8-pin 20 A",
        connector="PCIe 8-pin",
        nominal_voltage_v=12.0,
        max_current_a=20.0,
        sensitivity_v_per_a=0.060,
        voltage_full_scale_v=26.4,
        current_noise_rms_a=0.1358,
        voltage_noise_rms_v=0.00596,
    ),
    "pcie_slot_12v": _spec(
        key="pcie_slot_12v",
        name="PCIe slot 12 V / 10 A",
        connector="riser wires",
        nominal_voltage_v=12.0,
        max_current_a=10.0,
        sensitivity_v_per_a=0.120,
        voltage_full_scale_v=26.4,
        current_noise_rms_a=0.1150,
        voltage_noise_rms_v=0.00596,
    ),
    "pcie_slot_3v3": _spec(
        key="pcie_slot_3v3",
        name="PCIe slot 3.3 V / 10 A",
        connector="riser wires",
        nominal_voltage_v=3.3,
        max_current_a=10.0,
        sensitivity_v_per_a=0.120,
        voltage_full_scale_v=6.6,
        current_noise_rms_a=0.1150,
        voltage_noise_rms_v=0.00637,
    ),
    "usbc": _spec(
        key="usbc",
        name="USB-C 20 V / 10 A",
        connector="USB-C",
        nominal_voltage_v=20.0,
        max_current_a=10.0,
        sensitivity_v_per_a=0.120,
        voltage_full_scale_v=26.4,
        current_noise_rms_a=0.1150,
        voltage_noise_rms_v=0.00596,
    ),
    "generic20a": _spec(
        key="generic20a",
        name="General purpose 20 A",
        connector="terminal block",
        nominal_voltage_v=12.0,
        max_current_a=20.0,
        sensitivity_v_per_a=0.060,
        voltage_full_scale_v=26.4,
        current_noise_rms_a=0.1358,
        voltage_noise_rms_v=0.00596,
    ),
    "highcurrent50a": _spec(
        key="highcurrent50a",
        name="High current 50 A",
        connector="terminal block",
        nominal_voltage_v=12.0,
        max_current_a=50.0,
        sensitivity_v_per_a=0.024,
        voltage_full_scale_v=26.4,
        current_noise_rms_a=0.2800,
        voltage_noise_rms_v=0.00596,
    ),
}


def module_spec(key: str) -> ModuleSpec:
    """Look up a module design; raises ConfigurationError for unknown keys."""
    try:
        return MODULE_CATALOG[key]
    except KeyError:
        known = ", ".join(sorted(MODULE_CATALOG))
        raise ConfigurationError(f"unknown module {key!r}; known modules: {known}")


class SensorModule:
    """One manufactured sensor module: a current/voltage transducer pair.

    Instances carry *production* errors (Hall offset, voltage gain error,
    slight nonlinearity) drawn at manufacture time; the calibration
    procedure estimates and stores corrections for them in the device
    EEPROM, mirroring the paper's one-time calibration.
    """

    def __init__(
        self,
        spec: ModuleSpec,
        current_sensor: CurrentSensor,
        voltage_sensor: VoltageSensor,
    ) -> None:
        self.spec = spec
        self.current_sensor = current_sensor
        self.voltage_sensor = voltage_sensor

    @classmethod
    def manufacture(
        cls,
        spec_or_key: ModuleSpec | str,
        rng: RngStream,
        perfect: bool = False,
        external_field: ExternalField | None = None,
    ) -> "SensorModule":
        """Build a module with randomly drawn production tolerances.

        Args:
            spec_or_key: a :class:`ModuleSpec` or a catalog key.
            rng: random stream for this part's tolerances and noise.
            perfect: if True, zero out production errors (useful in tests
                that want to isolate noise behaviour from calibration).
            external_field: ambient magnetic environment, if any; the
                differential Hall sensor rejects it almost entirely.
        """
        spec = (
            spec_or_key
            if isinstance(spec_or_key, ModuleSpec)
            else module_spec(spec_or_key)
        )
        if perfect:
            offset = 0.0
            gain_error = 0.0
            nonlinearity = 0.0
        else:
            # Typical MLX91221 production spread: offset up to ~1 % of full
            # scale, divider resistors ~0.5 %, small cubic nonlinearity.
            offset = float(rng.normal(0.0, 0.01 * spec.max_current_a))
            gain_error = float(rng.normal(0.0, 0.005))
            nonlinearity = float(
                rng.normal(0.0, 0.0005 / max(spec.max_current_a, 1.0) ** 2)
            )
        current = CurrentSensor(
            sensitivity_v_per_a=spec.sensitivity_v_per_a,
            noise_rms_a=spec.current_noise_rms_a,
            rng=rng.child("current"),
            vdd=VDD,
            offset_a=offset,
            nonlinearity=nonlinearity,
            external_field=external_field,
        )
        voltage = VoltageSensor(
            gain_v_per_v=spec.voltage_gain,
            noise_rms_v_input=spec.voltage_noise_rms_v,
            rng=rng.child("voltage"),
            vdd=VDD,
            gain_error=gain_error,
        )
        return cls(spec, current, voltage)

    def with_spec(self, **changes) -> "SensorModule":
        """A copy of this module with spec fields replaced (sensors shared)."""
        return SensorModule(
            replace(self.spec, **changes), self.current_sensor, self.voltage_sensor
        )
