"""STM32F411 ADC model: quantisation and scan timing.

The firmware configures the ADC for 10-bit resolution with a 15-cycle
sampling time at a 24 MHz ADC clock; together with the 10 conversion cycles
that is 25 cycles = 1.04 us per conversion (paper, Section III-B).  Eight
channels (four current/voltage pairs) are scanned sequentially and six
consecutive scans are averaged by the CPU, yielding a 50 us output interval
(20 kHz).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AdcTiming:
    """Scan timing derived from the ADC configuration."""

    clock_hz: float = 24e6
    sampling_cycles: int = 15
    resolution_bits: int = 10
    channels: int = 8
    averages: int = 6

    @property
    def cycles_per_conversion(self) -> int:
        # Each bit costs one clock cycle to convert, on top of sampling.
        return self.sampling_cycles + self.resolution_bits

    @property
    def conversion_time_s(self) -> float:
        return self.cycles_per_conversion / self.clock_hz

    @property
    def scan_time_s(self) -> float:
        """Time to read all channels once."""
        return self.channels * self.conversion_time_s

    @property
    def output_interval_s(self) -> float:
        """Time per averaged output sample (50 us at default settings)."""
        return self.scan_time_s * self.averages

    @property
    def output_rate_hz(self) -> float:
        return 1.0 / self.output_interval_s

    def channel_offsets(self) -> np.ndarray:
        """Start time of each channel's conversion within one scan."""
        return np.arange(self.channels) * self.conversion_time_s

    def subsample_times(self, channel: int, sample_start: float) -> np.ndarray:
        """Times of the ``averages`` conversions of one channel in one output sample."""
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range 0..{self.channels - 1}")
        scan_starts = sample_start + np.arange(self.averages) * self.scan_time_s
        return scan_starts + channel * self.conversion_time_s


class Adc:
    """Ideal mid-tread quantiser with configurable resolution and reference."""

    def __init__(self, bits: int = 10, vref: float = 3.3) -> None:
        if bits < 1:
            raise ValueError("ADC needs at least one bit")
        if vref <= 0:
            raise ValueError("vref must be positive")
        self.bits = int(bits)
        self.vref = float(vref)
        self.levels = 1 << self.bits

    @property
    def lsb(self) -> float:
        return self.vref / self.levels

    def quantize(self, volts: np.ndarray) -> np.ndarray:
        """Convert analog voltages to integer codes in [0, levels-1]."""
        volts = np.asarray(volts, dtype=float)
        codes = np.floor(volts / self.lsb).astype(np.int64)
        return np.clip(codes, 0, self.levels - 1)

    def to_volts(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruction voltage (code centre) for integer codes."""
        codes = np.asarray(codes)
        return (codes.astype(float) + 0.5) * self.lsb
