"""PowerSensor2 comparison model (the paper's predecessor tool).

The paper's introduction lists PowerSensor3's improvements over
PowerSensor2 (Romein & Veenboer, ISPASS'18):

* sampling rate raised from 2.8 kHz to 20 kHz,
* current sensors that are hardly sensitive to external magnetic fields
  (PS2's open-loop single-ended sensors couple ambient fields into the
  reading),
* measurement of *both* voltage and current per channel (PS2 assumes the
  configured nominal rail voltage, so supply droop under load becomes a
  power error),
* a modular board design and a simplified one-time calibration.

This model exists so the improvement claims can be quantified in the
ablation benchmarks: it reuses the same Hall-sensor physics with PS2-era
parameters (single-ended field coupling, higher noise, 2.8 kHz sampling,
fixed assumed voltages).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream
from repro.hardware.adc import Adc
from repro.hardware.baseboard import PowerRail
from repro.hardware.sensors import CurrentSensor, ExternalField

#: PowerSensor2's output sample rate (paper, Section I).
PS2_SAMPLE_RATE_HZ = 2800.0

#: Single-ended open-loop Hall coupling to a uniform external field, A/mT.
#: Two orders of magnitude worse than the differential MLX91221.
PS2_FIELD_COUPLING_A_PER_MT = 0.25

#: ACS712-class sensor noise, input-referred.
PS2_CURRENT_NOISE_RMS_A = 0.080


class PowerSensor2:
    """A PowerSensor2-style meter: current-only channels at 2.8 kHz.

    Channels are attached to rails but only the *current* is measured;
    power is computed against the configured nominal voltage of each
    channel, exactly the simplification PowerSensor3 removed.
    """

    def __init__(
        self,
        nominal_voltages: list[float],
        seed: int = 0,
        external_field: ExternalField | None = None,
    ) -> None:
        if not nominal_voltages:
            raise ConfigurationError("PowerSensor2 needs at least one channel")
        if len(nominal_voltages) > 5:
            raise ConfigurationError("PowerSensor2 supports at most five channels")
        rng = RngStream(seed, "ps2")
        self.nominal_voltages = [float(v) for v in nominal_voltages]
        self.adc = Adc(bits=10)
        self.sensors = [
            CurrentSensor(
                sensitivity_v_per_a=0.100,
                noise_rms_a=PS2_CURRENT_NOISE_RMS_A,
                rng=rng.child(f"ch{i}"),
                offset_a=float(rng.child(f"off{i}").normal(0.0, 0.05)),
                field_coupling_a_per_mt=PS2_FIELD_COUPLING_A_PER_MT,
                external_field=external_field,
            )
            for i in range(len(nominal_voltages))
        ]
        self.rails: list[PowerRail | None] = [None] * len(nominal_voltages)
        self._offsets = [0.0] * len(nominal_voltages)

    @property
    def sample_rate(self) -> float:
        return PS2_SAMPLE_RATE_HZ

    def attach(self, channel: int, rail: PowerRail) -> None:
        self._check_channel(channel)
        self.rails[channel] = rail

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < len(self.sensors):
            raise ConfigurationError(f"channel {channel} out of range")

    def calibrate(self, n_samples: int = 4096, start: float = 0.0) -> None:
        """Zero-current offset calibration (rails must be unloaded)."""
        dt = 1.0 / self.sample_rate
        for channel, sensor in enumerate(self.sensors):
            analog = sensor.transduce_uniform(np.zeros(n_samples), start, dt)
            codes = self.adc.quantize(analog)
            mean_v = float(self.adc.to_volts(codes).mean())
            self._offsets[channel] = (
                mean_v - sensor.zero_current_voltage
            ) / sensor.sensitivity

    def measure(self, start: float, duration: float) -> tuple[np.ndarray, np.ndarray]:
        """Measure all channels; returns (times, total_power_watts).

        Power uses the configured nominal voltages — the true rail voltage
        is never observed, so droop under load becomes a systematic error.
        """
        n = max(int(round(duration * self.sample_rate)), 1)
        dt = 1.0 / self.sample_rate
        times = start + dt * np.arange(n)
        total = np.zeros(n)
        for channel, sensor in enumerate(self.sensors):
            rail = self.rails[channel]
            if rail is None:
                continue
            _, amps = rail.sample_uniform(start, dt, n)
            analog = sensor.transduce_uniform(amps, start, dt)
            codes = self.adc.quantize(analog)
            reading = (
                self.adc.to_volts(codes) - sensor.zero_current_voltage
            ) / sensor.sensitivity - self._offsets[channel]
            total += self.nominal_voltages[channel] * reading
        return times, total

    def measure_energy(self, start: float, duration: float) -> float:
        """Rectangle-integrated energy over the window (J)."""
        _, watts = self.measure(start, duration)
        return float(watts.sum() / self.sample_rate)
