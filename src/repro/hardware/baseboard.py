"""The PowerSensor3 baseboard: four module slots feeding the MCU's ADC.

Each populated slot contributes a current/voltage sensor pair wired to two
consecutive ADC channels (current on ``2*slot``, voltage on ``2*slot + 1``),
minimising the time skew between the two readings of a pair (paper,
Section III-B).  A slot is *connected* to a power rail of the device under
test; unconnected slots read their sensors' zero-input values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.common.errors import ConfigurationError
from repro.hardware.adc import Adc, AdcTiming
from repro.hardware.display import Display
from repro.hardware.modules import SensorModule

SLOTS = 4
CHANNELS = 2 * SLOTS


class PowerRail(Protocol):
    """Ground-truth electrical state of one supply rail of a DUT.

    Implementations must be pure functions of time so the two channels of a
    pair (sampled ~1 us apart) can query overlapping windows.
    """

    def sample_uniform(
        self, start: float, dt: float, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(volts, amps) arrays of length n at times start + i*dt."""
        ...


@dataclass
class SensorChannel:
    """One populated slot and the rail it measures."""

    slot: int
    module: SensorModule
    rail: PowerRail | None = None


class Baseboard:
    """Holds up to four sensor modules and produces raw ADC codes.

    The :meth:`read_codes` method is what the simulated firmware calls: it
    returns the per-subsample quantised codes with exact scan timing, so the
    firmware's 6-sample averaging operates on correlated analog noise just
    like the real device.
    """

    def __init__(self, timing: AdcTiming | None = None) -> None:
        self.timing = timing or AdcTiming()
        self.adc = Adc(bits=self.timing.resolution_bits)
        self.slots: list[SensorChannel | None] = [None] * SLOTS
        self.display = Display()
        self.display.precompute_fonts()

    def attach(self, slot: int, module: SensorModule) -> SensorChannel:
        """Populate a slot with a sensor module."""
        self._check_slot(slot)
        if self.slots[slot] is not None:
            raise ConfigurationError(f"slot {slot} is already populated")
        channel = SensorChannel(slot=slot, module=module)
        self.slots[slot] = channel
        return channel

    def connect(self, slot: int, rail: PowerRail) -> None:
        """Wire a populated slot to a DUT power rail."""
        channel = self._channel(slot)
        channel.rail = rail

    def detach(self, slot: int) -> None:
        self._check_slot(slot)
        self.slots[slot] = None

    def populated_slots(self) -> list[SensorChannel]:
        return [c for c in self.slots if c is not None]

    def _channel(self, slot: int) -> SensorChannel:
        self._check_slot(slot)
        channel = self.slots[slot]
        if channel is None:
            raise ConfigurationError(f"slot {slot} is not populated")
        return channel

    @staticmethod
    def _check_slot(slot: int) -> None:
        if not 0 <= slot < SLOTS:
            raise ConfigurationError(f"slot {slot} out of range 0..{SLOTS - 1}")

    def read_codes(self, start: float, n_output: int) -> np.ndarray:
        """Raw ADC codes for ``n_output`` output samples starting at ``start``.

        Returns an int array of shape ``(n_output, averages, channels)``.
        Channel ``2*slot`` carries the slot's current sensor, ``2*slot + 1``
        its voltage sensor; unpopulated channels read code 0.
        """
        t = self.timing
        total_sub = n_output * t.averages
        codes = np.zeros((n_output, t.averages, CHANNELS), dtype=np.int64)
        for channel in self.populated_slots():
            slot = channel.slot
            if channel.rail is not None:
                i_start = start + (2 * slot) * t.conversion_time_s
                u_start = start + (2 * slot + 1) * t.conversion_time_s
                _, amps = channel.rail.sample_uniform(i_start, t.scan_time_s, total_sub)
                volts, _ = channel.rail.sample_uniform(u_start, t.scan_time_s, total_sub)
            else:
                amps = np.zeros(total_sub)
                volts = np.zeros(total_sub)
            i_analog = channel.module.current_sensor.transduce_uniform(
                amps, start + (2 * slot) * t.conversion_time_s, t.scan_time_s
            )
            u_analog = channel.module.voltage_sensor.transduce_uniform(
                volts, start + (2 * slot + 1) * t.conversion_time_s, t.scan_time_s
            )
            codes[:, :, 2 * slot] = self.adc.quantize(i_analog).reshape(
                n_output, t.averages
            )
            codes[:, :, 2 * slot + 1] = self.adc.quantize(u_analog).reshape(
                n_output, t.averages
            )
        return codes

    def averaged_codes(self, start: float, n_output: int) -> np.ndarray:
        """Firmware-style averaged 10-bit values, shape (n_output, channels)."""
        raw = self.read_codes(start, n_output)
        summed = raw.sum(axis=1)
        return (summed + self.timing.averages // 2) // self.timing.averages
