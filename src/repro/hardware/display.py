"""ST7735-style status display model.

The baseboard carries a small SPI TFT that shows total power prominently
plus per-pair voltage/current/power in smaller fonts whenever the host is
not streaming (paper, Section III-B2).  The paper's firmware accelerates
this with (1) DMA transfers of the framebuffer and (2) pre-computed glyph
bitmaps for every character/size/colour combination used.  Both are
modelled here: glyph rendering rasterises from a pre-computed cache, and a
DMA accounting model tracks bytes pushed over SPI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# A compact 5x7 font covering the characters the power screen needs.
# Each glyph is 5 column bytes, LSB = top row (classic ST7735 layout).
_FONT_5X7: dict[str, tuple[int, int, int, int, int]] = {
    "0": (0x3E, 0x51, 0x49, 0x45, 0x3E),
    "1": (0x00, 0x42, 0x7F, 0x40, 0x00),
    "2": (0x42, 0x61, 0x51, 0x49, 0x46),
    "3": (0x21, 0x41, 0x45, 0x4B, 0x31),
    "4": (0x18, 0x14, 0x12, 0x7F, 0x10),
    "5": (0x27, 0x45, 0x45, 0x45, 0x39),
    "6": (0x3C, 0x4A, 0x49, 0x49, 0x30),
    "7": (0x01, 0x71, 0x09, 0x05, 0x03),
    "8": (0x36, 0x49, 0x49, 0x49, 0x36),
    "9": (0x06, 0x49, 0x49, 0x29, 0x1E),
    ".": (0x00, 0x60, 0x60, 0x00, 0x00),
    "-": (0x08, 0x08, 0x08, 0x08, 0x08),
    " ": (0x00, 0x00, 0x00, 0x00, 0x00),
    "W": (0x3F, 0x40, 0x38, 0x40, 0x3F),
    "V": (0x1F, 0x20, 0x40, 0x20, 0x1F),
    "A": (0x7E, 0x11, 0x11, 0x11, 0x7E),
    "m": (0x7C, 0x04, 0x18, 0x04, 0x78),
    "k": (0x7F, 0x10, 0x28, 0x44, 0x00),
    ":": (0x00, 0x36, 0x36, 0x00, 0x00),
    "/": (0x20, 0x10, 0x08, 0x04, 0x02),
}

GLYPH_W = 5
GLYPH_H = 7


@dataclass(frozen=True)
class _GlyphKey:
    char: str
    scale: int
    color: int


@dataclass
class DisplayStats:
    """Accounting of rendering work, mirroring the firmware optimisations."""

    frames_rendered: int = 0
    glyphs_drawn: int = 0
    glyph_cache_misses: int = 0
    dma_bytes: int = 0


class Display:
    """A tiny framebuffer display with a pre-computed glyph cache."""

    def __init__(self, width: int = 160, height: int = 80) -> None:
        self.width = width
        self.height = height
        self.framebuffer = np.zeros((height, width), dtype=np.uint16)
        self._glyph_cache: dict[_GlyphKey, np.ndarray] = {}
        self.stats = DisplayStats()

    def precompute_fonts(self, scales=(1, 2, 3), colors=(0xFFFF, 0x07E0)) -> int:
        """Pre-rasterise all glyphs for the given sizes and colours.

        Mirrors the paper's font pre-computation script; returns the number
        of cached glyphs.
        """
        for char in _FONT_5X7:
            for scale in scales:
                for color in colors:
                    self._glyph(char, scale, color)
        return len(self._glyph_cache)

    def _glyph(self, char: str, scale: int, color: int) -> np.ndarray:
        key = _GlyphKey(char, scale, color)
        cached = self._glyph_cache.get(key)
        if cached is not None:
            return cached
        self.stats.glyph_cache_misses += 1
        columns = _FONT_5X7.get(char, _FONT_5X7[" "])
        bitmap = np.zeros((GLYPH_H, GLYPH_W), dtype=bool)
        for x, col in enumerate(columns):
            for y in range(GLYPH_H):
                bitmap[y, x] = bool(col & (1 << y))
        glyph = np.where(np.kron(bitmap, np.ones((scale, scale), bool)), color, 0)
        glyph = glyph.astype(np.uint16)
        self._glyph_cache[key] = glyph
        return glyph

    def draw_text(
        self, x: int, y: int, text: str, scale: int = 1, color: int = 0xFFFF
    ) -> None:
        """Draw text at pixel position; clipped at the framebuffer edges."""
        cursor = x
        for char in text:
            glyph = self._glyph(char, scale, color)
            h, w = glyph.shape
            x0, y0 = cursor, y
            x1 = min(x0 + w, self.width)
            y1 = min(y0 + h, self.height)
            if x0 < self.width and y0 < self.height:
                region = glyph[: y1 - y0, : x1 - x0]
                target = self.framebuffer[y0:y1, x0:x1]
                target[region != 0] = region[region != 0]
                self.stats.glyphs_drawn += 1
            cursor += w + scale  # one scaled column of spacing

    def clear(self) -> None:
        self.framebuffer[:] = 0

    def render_power_screen(
        self, total_watts: float, pairs: list[tuple[str, float, float]]
    ) -> None:
        """Render total power big plus per-pair volts/amps/watts rows.

        Args:
            total_watts: total across enabled pairs.
            pairs: (name, volts, amps) per enabled pair.
        """
        self.clear()
        self.draw_text(4, 4, f"{total_watts:7.2f}W", scale=3, color=0xFFFF)
        y = 4 + GLYPH_H * 3 + 6
        for name, volts, amps in pairs:
            line = f"{volts:5.2f}V {amps:6.3f}A {volts * amps:7.2f}W"
            self.draw_text(4, y, line, scale=1, color=0x07E0)
            y += GLYPH_H + 2
        self.stats.frames_rendered += 1
        self.flush()

    def flush(self) -> None:
        """Model the DMA transfer of the framebuffer to the panel."""
        self.stats.dma_bytes += self.framebuffer.nbytes
