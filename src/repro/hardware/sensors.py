"""Analog transducer models: Hall current sensor and isolated voltage sensor.

Current sensing models the Melexis MLX91221 family: a ratiometric Hall
sensor whose output sits at Vdd/2 for zero current and moves by a fixed
sensitivity (V/A) — the differential Hall arrangement makes it insensitive
to uniform external magnetic fields, which we model by *not* coupling any
environmental field term (PowerSensor2's open-loop sensors needed one).

Voltage sensing models the Broadcom ACPL-C87B: an optically isolated
amplifier behind a resistive divider, reduced here to a single
volts-per-volt gain to the ADC pin.

Both transducers add band-limited Gaussian noise (Ornstein-Uhlenbeck, see
:mod:`repro.common.noise`) at their datasheet bandwidth, plus static
production errors (offset for the Hall part, gain for the voltage path)
that the one-time calibration procedure of :mod:`repro.calibration`
estimates and corrects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.noise import OrnsteinUhlenbeckNoise
from repro.common.rng import RngStream

#: Datasheet -3 dB *signal* bandwidths (paper, Section III-A).  At a 20 kHz
#: output rate the 50 us sample interval — not these — limits the observable
#: step response, so the signal path is not separately filtered.
CURRENT_SENSOR_BANDWIDTH_HZ = 300_000.0
VOLTAGE_SENSOR_BANDWIDTH_HZ = 100_000.0

#: Correlation bandwidths of the transducers' *noise*.  The Hall sensor's
#: noise spectrum is dominated by its low-frequency region: with the
#: firmware's six sub-samples spaced one ADC scan (8.33 us) apart, a
#: 23.4 kHz OU correlation bandwidth makes the average reduce the 115 mA rms
#: datasheet noise by sqrt(3.67) rather than sqrt(6) — which is exactly what
#: reconciles the datasheet figure with the 0.72 W rms the paper measures at
#: 20 kHz (Table II).  Consecutive 50 us output samples remain effectively
#: independent, preserving the table's sqrt(N) block-averaging column.
CURRENT_NOISE_BANDWIDTH_HZ = 23_400.0
VOLTAGE_NOISE_BANDWIDTH_HZ = 100_000.0


@dataclass
class ProductionErrors:
    """Static per-part deviations set once when a sensor is 'manufactured'."""

    current_offset_a: float = 0.0  # Hall zero-current offset, amperes
    voltage_gain_error: float = 0.0  # relative gain error of the voltage path
    current_nonlinearity: float = 0.0  # cubic nonlinearity coefficient (1/A^2)


class ExternalField:
    """An ambient magnetic field at the sensor's location, in millitesla.

    Servers are magnetically noisy (fan motors, VRM inductors, neighbouring
    power cables).  A differential Hall arrangement (MLX91221, used by
    PowerSensor3) rejects a *uniform* external field almost entirely, while
    the single-ended open-loop sensors of earlier tools couple it straight
    into the current reading — one of the improvements the paper lists over
    PowerSensor2.  The field is a sum of a static component, mains-frequency
    ripple, and scheduled steps (e.g. a fan spinning up).
    """

    def __init__(
        self,
        static_mt: float = 0.0,
        ripple_mt: float = 0.0,
        ripple_hz: float = 50.0,
    ) -> None:
        self.static_mt = float(static_mt)
        self.ripple_mt = float(ripple_mt)
        self.ripple_hz = float(ripple_hz)
        self._steps: list[tuple[float, float]] = []  # (time, new level)

    def add_step(self, at_time: float, level_mt: float) -> None:
        """Schedule the static component to change at a given time."""
        self._steps.append((float(at_time), float(level_mt)))
        self._steps.sort()

    def at(self, times: np.ndarray) -> np.ndarray:
        """Field strength (mT) at the given times."""
        times = np.asarray(times, dtype=float)
        field = np.full(times.shape, self.static_mt)
        for at_time, level in self._steps:
            field = np.where(times >= at_time, level, field)
        if self.ripple_mt:
            field = field + self.ripple_mt * np.sin(
                2 * np.pi * self.ripple_hz * times
            )
        return field


class _DriftModel:
    """Slow thermal drift of the Hall offset.

    Drift is a deterministic function of time (ambient temperature modelled
    as a small diurnal sinusoid) plus a very slow bounded random component.
    It is evaluated analytically, so 50-hour stability experiments do not
    need to integrate anything between sample windows.
    """

    def __init__(self, tempco_a_per_k: float, rng: RngStream) -> None:
        self.tempco_a_per_k = tempco_a_per_k
        # Diurnal ambient temperature swing amplitude (kelvin) and phase;
        # a lab drifts a few kelvin over a 50-hour run.
        self.swing_k = float(rng.uniform(1.5, 3.5))
        self.phase = float(rng.uniform(0.0, 2 * np.pi))
        # Slow wander: a few very low frequency sinusoids stand in for a
        # bounded random walk while staying analytic in t.
        self.wander_amps = rng.normal(0.0, 0.15, size=3) * tempco_a_per_k
        self.wander_freqs = rng.uniform(1.0, 4.0, size=3) / 86400.0  # per second

    def offset_at(self, t: float | np.ndarray):
        day = 2 * np.pi / 86400.0
        temp = self.swing_k * np.sin(day * np.asarray(t, dtype=float) + self.phase)
        drift = self.tempco_a_per_k * temp
        for amp, freq in zip(self.wander_amps, self.wander_freqs):
            drift = drift + amp * np.sin(2 * np.pi * freq * np.asarray(t, dtype=float))
        return drift


class CurrentSensor:
    """MLX91221-style ratiometric Hall current sensor.

    Output voltage: ``vdd/2 + sensitivity * (i + offset + drift(t)) + noise``
    clipped to the supply rails.
    """

    #: Amperes of reading error per millitesla of uniform external field.
    #: The differential arrangement rejects uniform fields almost entirely;
    #: single-ended open-loop sensors (PowerSensor2 era) couple strongly.
    DIFFERENTIAL_FIELD_COUPLING_A_PER_MT = 0.002

    def __init__(
        self,
        sensitivity_v_per_a: float,
        noise_rms_a: float,
        rng: RngStream,
        vdd: float = 3.3,
        offset_a: float = 0.0,
        nonlinearity: float = 0.0,
        tempco_a_per_k: float = 2e-3,
        field_coupling_a_per_mt: float | None = None,
        external_field: ExternalField | None = None,
        noise_bandwidth_hz: float = CURRENT_NOISE_BANDWIDTH_HZ,
    ) -> None:
        if sensitivity_v_per_a <= 0:
            raise ValueError("sensitivity must be positive")
        self.sensitivity = float(sensitivity_v_per_a)
        self.vdd = float(vdd)
        self.offset_a = float(offset_a)
        self.nonlinearity = float(nonlinearity)
        self.noise_rms_a = float(noise_rms_a)
        self.field_coupling_a_per_mt = (
            self.DIFFERENTIAL_FIELD_COUPLING_A_PER_MT
            if field_coupling_a_per_mt is None
            else float(field_coupling_a_per_mt)
        )
        self.external_field = external_field
        self._noise = OrnsteinUhlenbeckNoise(
            sigma=noise_rms_a * self.sensitivity,
            bandwidth_hz=noise_bandwidth_hz,
            rng=rng.child("noise"),
        )
        self._drift = _DriftModel(tempco_a_per_k, rng.child("drift"))

    @property
    def zero_current_voltage(self) -> float:
        return self.vdd / 2.0

    def _effective_current(
        self, currents_a: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        effective = (
            currents_a
            + self.offset_a
            + self._drift.offset_at(times)
            + self.nonlinearity * currents_a**3
        )
        if self.external_field is not None and self.field_coupling_a_per_mt:
            effective = effective + self.field_coupling_a_per_mt * (
                self.external_field.at(times)
            )
        return effective

    def transduce(self, currents_a: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Analog output voltages for true currents at the given times."""
        currents_a = np.asarray(currents_a, dtype=float)
        times = np.asarray(times, dtype=float)
        effective = self._effective_current(currents_a, times)
        v = self.zero_current_voltage + self.sensitivity * effective
        v = v + self._noise.sample(times)
        return np.clip(v, 0.0, self.vdd)

    def transduce_uniform(
        self, currents_a: np.ndarray, start: float, dt: float
    ) -> np.ndarray:
        """Fast path: same as :meth:`transduce` on a uniform time grid."""
        currents_a = np.asarray(currents_a, dtype=float)
        n = currents_a.size
        times = start + dt * np.arange(n)
        effective = self._effective_current(currents_a, times)
        v = self.zero_current_voltage + self.sensitivity * effective
        v = v + self._noise.sample_uniform(start, dt, n)
        return np.clip(v, 0.0, self.vdd)


class VoltageSensor:
    """ACPL-C87B-style isolated voltage sensor behind a resistive divider.

    Output voltage: ``u * gain * (1 + gain_error) + noise`` clipped to the
    ADC supply.  ``gain`` maps the module's full-scale input voltage onto
    the ADC range.
    """

    def __init__(
        self,
        gain_v_per_v: float,
        noise_rms_v_input: float,
        rng: RngStream,
        vdd: float = 3.3,
        gain_error: float = 0.0,
    ) -> None:
        if gain_v_per_v <= 0:
            raise ValueError("gain must be positive")
        self.gain = float(gain_v_per_v)
        self.vdd = float(vdd)
        self.gain_error = float(gain_error)
        self.noise_rms_v_input = float(noise_rms_v_input)
        self._noise = OrnsteinUhlenbeckNoise(
            sigma=noise_rms_v_input * self.gain,
            bandwidth_hz=VOLTAGE_NOISE_BANDWIDTH_HZ,
            rng=rng.child("noise"),
        )

    def transduce(self, volts_in: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Analog output voltages for true input voltages at given times."""
        volts_in = np.asarray(volts_in, dtype=float)
        times = np.asarray(times, dtype=float)
        v = volts_in * self.gain * (1.0 + self.gain_error)
        v = v + self._noise.sample(times)
        return np.clip(v, 0.0, self.vdd)

    def transduce_uniform(
        self, volts_in: np.ndarray, start: float, dt: float
    ) -> np.ndarray:
        """Fast path: same as :meth:`transduce` on a uniform time grid."""
        volts_in = np.asarray(volts_in, dtype=float)
        v = volts_in * self.gain * (1.0 + self.gain_error)
        v = v + self._noise.sample_uniform(start, dt, volts_in.size)
        return np.clip(v, 0.0, self.vdd)
