"""Campaign execution: one artifact directory per content-hashed run ID.

Layout under the output directory::

    campaign.json              the expanded plan (cells, ablation groups)
    runs/<run_id>/result.json  the ExperimentResult table/notes
    runs/<run_id>/series.npz   figure series, when the experiment has any
    runs/<run_id>/metrics.json the run's metrics-registry snapshot
    runs/<run_id>/run.json     status record — written (atomically) last

``run.json`` is the completion marker: a cell killed mid-run leaves no
``run.json`` behind (every file is published tmp-then-rename, like the
store's ``.seg.tmp`` protocol), so ``resume`` re-runs exactly the cells
that never completed.  A cell that *raises* is recorded as ``failed``
and does not abort the campaign — one bad cell marks the cell, not the
matrix.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign import registry
from repro.campaign.plan import CampaignCell, CampaignPlan
from repro.common.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.observability import MetricsRegistry

Progress = Callable[[str], None]


def write_json_atomic(path: Path, payload: dict) -> None:
    """Publish a JSON file via the store's tmp-then-rename protocol."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(json.dumps(payload, indent=2))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def execute_cell(
    cell: CampaignCell, metrics: MetricsRegistry | None = None
) -> ExperimentResult:
    """Run one cell's experiment with its resolved parameters.

    When the experiment publishes metrics (``accepts_registry``) the
    given registry is threaded through; either way the campaign-level
    counters (cell runtime, row counts) land in it, so every run
    snapshot has content to merge.
    """
    experiment = registry.get(cell.experiment)
    kwargs = dict(cell.params)
    if experiment.accepts_registry and metrics is not None:
        kwargs["registry"] = metrics
    started = time.perf_counter()
    result = experiment.runner(**kwargs)
    elapsed = time.perf_counter() - started
    if metrics is not None:
        labels = {"experiment": cell.experiment}
        metrics.counter("campaign_runs_total", **labels).inc()
        metrics.counter("campaign_result_rows_total", **labels).inc(len(result.rows))
        metrics.histogram("campaign_run_seconds", **labels).observe(elapsed)
    return result


@dataclass
class RunRecord:
    """One cell's outcome, as persisted in ``run.json``."""

    run_id: str
    group: str
    experiment: str
    label: str
    params: dict[str, Any]
    role: str | None
    status: str  # "ok" | "failed" | "skipped"
    elapsed_s: float = 0.0
    error: str | None = None
    error_type: str | None = None
    artifacts: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "group": self.group,
            "experiment": self.experiment,
            "label": self.label,
            "params": self.params,
            "role": self.role,
            "status": self.status,
            "elapsed_s": self.elapsed_s,
            "error": self.error,
            "error_type": self.error_type,
            "artifacts": self.artifacts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> RunRecord:
        return cls(**payload)


@dataclass
class CampaignSummary:
    """Aggregate of one ``CampaignRunner.run()`` invocation."""

    plan: str
    out_dir: Path
    records: list[RunRecord] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        counts = {"ok": 0, "failed": 0, "skipped": 0}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    @property
    def failed(self) -> list[RunRecord]:
        return [r for r in self.records if r.status == "failed"]


class CampaignRunner:
    """Execute a plan into an artifact directory, resumably."""

    def __init__(
        self,
        plan: CampaignPlan,
        out_dir: str | Path,
        progress: Progress | None = None,
    ) -> None:
        self.plan = plan
        self.out_dir = Path(out_dir)
        self.runs_dir = self.out_dir / "runs"
        self.progress = progress or (lambda message: None)

    # -- paths ---------------------------------------------------------- #

    def run_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id

    def completed(self, run_id: str) -> bool:
        """Did a previous invocation finish this cell (ok or failed)?"""
        return self.load_record(run_id) is not None

    def load_record(self, run_id: str) -> RunRecord | None:
        path = self.run_dir(run_id) / "run.json"
        if not path.exists():
            return None
        try:
            return RunRecord.from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, TypeError, KeyError):
            # A corrupt marker means the cell did not complete cleanly;
            # treat it as missing so resume re-runs it.
            return None

    # -- execution ------------------------------------------------------ #

    def run(self, resume: bool = False) -> CampaignSummary:
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        write_json_atomic(self.out_dir / "campaign.json", self.plan.to_dict())
        summary = CampaignSummary(plan=self.plan.name, out_dir=self.out_dir)
        executed: set[str] = set()
        total = len(self.plan.cells)
        for index, cell in enumerate(self.plan.cells, start=1):
            tag = f"[{index}/{total}] {cell.label} ({cell.run_id})"
            if cell.run_id in executed:
                continue  # shared cell (e.g. a baseline that is also a grid cell)
            executed.add(cell.run_id)
            previous = self.load_record(cell.run_id) if resume else None
            if previous is not None and previous.status == "ok":
                self.progress(f"{tag}: already complete, skipping")
                record = previous
                record.status = "skipped"
                summary.records.append(record)
                continue
            self.progress(f"{tag}: running")
            summary.records.append(self._run_cell(cell))
        return summary

    def _run_cell(self, cell: CampaignCell) -> RunRecord:
        directory = self.run_dir(cell.run_id)
        directory.mkdir(parents=True, exist_ok=True)
        metrics = MetricsRegistry()
        record = RunRecord(
            run_id=cell.run_id,
            group=cell.group,
            experiment=cell.experiment,
            label=cell.label,
            params=dict(cell.params),
            role=cell.role,
            status="ok",
        )
        started = time.perf_counter()
        try:
            result = execute_cell(cell, metrics)
            result.save(directory)
            record.artifacts = sorted(
                p.name for p in directory.iterdir() if p.suffix != ".tmp"
            )
        except ConfigurationError:
            # A malformed cell is a plan bug: fail the campaign loudly.
            raise
        except Exception as error:  # noqa: BLE001 - cell isolation by design
            record.status = "failed"
            record.error = f"{error}"
            record.error_type = type(error).__name__
            metrics.counter(
                "campaign_failures_total", experiment=cell.experiment
            ).inc()
            (directory / "traceback.txt").write_text(traceback.format_exc())
        record.elapsed_s = time.perf_counter() - started
        write_json_atomic(directory / "metrics.json", metrics.snapshot())
        write_json_atomic(directory / "run.json", record.to_dict())
        return record
