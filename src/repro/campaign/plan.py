"""Declarative campaign plans: INI grids, filters, ablation groups.

A plan file reuses the :mod:`repro.storage.jobfile` grammar conventions
(configparser INI dialect, ``=`` delimiter, lowercase keys, unknown keys
rejected)::

    [campaign]
    name = demo
    seed = 42
    scale = bench

    [grid:streaming-matrix]
    experiment = streaming
    fleet = 1,2,4
    faults = none; drop:0.01; flip:0.002
    backpressure = block,drop-oldest,downsample
    exclude = fleet=4/backpressure=block

    [ablation:stream-defences]
    experiment = streaming
    metric = delivered ratio
    goal = max
    faults = drop:0.02
    knockout.fault-injection = faults=none
    knockout.ring-policy = backpressure=block

Semantics:

* ``[grid:NAME]`` — every non-reserved key is a parameter of the named
  experiment; comma-separated values expand into the cartesian product
  (use ``;`` as the list separator when values themselves contain
  commas, e.g. compound fault specs).  Cells are labelled like jobfile
  jobs: ``NAME[fleet=2/faults=drop:0.01]`` over the multi-valued axes.
* ``include = `` / ``exclude = `` — ``;``-separated conjunction
  patterns ``key=value/key2=value2`` filtering the expanded product
  (exclude wins; include, when present, keeps only matching cells).
* ``[ablation:NAME]`` — aumai-style knockout bookkeeping: the section's
  parameters define the **baseline** cell, and every ``knockout.C = ``
  key adds one cell with the listed ``key=value`` overrides applied
  (``;``-separated).  ``metric`` names the result-row column scored by
  the report; ``goal`` is ``max`` (default) or ``min``.
* Run IDs are content hashes of (experiment, scale, resolved params) —
  the same plan always produces the same IDs, and any parameter change
  produces new ones.  Unless a section pins ``seed``, each cell gets a
  seed derived from its run ID, so repeated runs are reproducible and
  distinct cells are decorrelated.
"""

from __future__ import annotations

import configparser
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign import registry
from repro.campaign.registry import Experiment
from repro.common.errors import ConfigurationError

#: Keys with meaning to the planner, not the experiment schema.
RESERVED_KEYS = ("experiment", "include", "exclude")

#: Ablation sections add these on top of the reserved keys.
ABLATION_KEYS = ("metric", "goal")

GOALS = ("max", "min")


def split_values(raw: str) -> list[str]:
    """Split a list value: on ``;`` when present, else on ``,``."""
    separator = ";" if ";" in raw else ","
    return [token.strip() for token in raw.split(separator) if token.strip()]


def compute_run_id(experiment: str, params: dict[str, Any], scale: str) -> str:
    """Stable content-hashed run ID for one cell."""
    canonical = json.dumps(
        {"experiment": experiment, "scale": scale, "params": params},
        sort_keys=True,
        default=list,  # tuples in defaults serialise as lists
    )
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    return f"{experiment}-{digest}"


def derive_seed(campaign_seed: int, experiment: str, params: dict[str, Any]) -> int:
    """A per-cell seed: deterministic, decorrelated across cells."""
    canonical = json.dumps(
        {"experiment": experiment, "params": params, "campaign_seed": campaign_seed},
        sort_keys=True,
        default=list,
    )
    digest = hashlib.sha256(canonical.encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class CampaignCell:
    """One fully resolved run: experiment + params + identity."""

    group: str  # the plan section that produced it
    experiment: str
    params: dict[str, Any]
    label: str
    run_id: str
    role: str | None = None  # ablations: "baseline" or the component name

    def to_dict(self) -> dict:
        return {
            "group": self.group,
            "experiment": self.experiment,
            "params": self.params,
            "label": self.label,
            "run_id": self.run_id,
            "role": self.role,
        }


@dataclass(frozen=True)
class AblationGroup:
    """One knockout group: the baseline and its component cells."""

    name: str
    experiment: str
    metric: str
    goal: str
    baseline_run_id: str
    knockouts: dict[str, str]  # component -> run_id

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "experiment": self.experiment,
            "metric": self.metric,
            "goal": self.goal,
            "baseline_run_id": self.baseline_run_id,
            "knockouts": dict(self.knockouts),
        }


@dataclass
class CampaignPlan:
    """A parsed plan: campaign header, expanded cells, ablation groups."""

    name: str
    seed: int = 0
    scale: str = "bench"
    cells: list[CampaignCell] = field(default_factory=list)
    ablations: list[AblationGroup] = field(default_factory=list)

    @property
    def full(self) -> bool:
        return self.scale == "full"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "scale": self.scale,
            "cells": [cell.to_dict() for cell in self.cells],
            "ablations": [group.to_dict() for group in self.ablations],
        }

    @classmethod
    def parse(cls, text: str) -> CampaignPlan:
        parser = configparser.ConfigParser(
            allow_no_value=True, delimiters=("=",), interpolation=None
        )
        parser.optionxform = str.lower  # type: ignore[assignment]
        try:
            parser.read_string(text)
        except configparser.Error as error:
            raise ConfigurationError(f"cannot parse plan: {error}") from error

        header = dict(parser["campaign"]) if parser.has_section("campaign") else {}
        unknown = set(header) - {"name", "seed", "scale"}
        if unknown:
            raise ConfigurationError(
                f"[campaign]: unknown key(s) {sorted(unknown)}"
            )
        scale = (header.get("scale") or "bench").strip().lower()
        if scale not in ("bench", "full"):
            raise ConfigurationError(f"scale must be bench or full, got {scale!r}")
        plan = cls(
            name=(header.get("name") or "campaign").strip(),
            seed=int(header.get("seed") or 0),
            scale=scale,
        )

        sections = [s for s in parser.sections() if s.lower() != "campaign"]
        if not sections:
            raise ConfigurationError("plan defines no grid or ablation sections")
        for section in sections:
            options = dict(parser[section])
            if section.lower().startswith("grid:"):
                plan._expand_grid(section, options)
            elif section.lower().startswith("ablation:"):
                plan._expand_ablation(section, options)
            else:
                raise ConfigurationError(
                    f"section [{section}] must be [grid:NAME] or [ablation:NAME]"
                )
        seen: dict[str, str] = {}
        for cell in plan.cells:
            previous = seen.setdefault(cell.run_id, cell.group)
            if previous != cell.group:
                # The same content in two sections is legal (an ablation
                # baseline may coincide with a grid cell); the runner
                # executes it once and both groups share the artifact.
                continue
        return plan

    @classmethod
    def load(cls, path: str | Path) -> CampaignPlan:
        return cls.parse(Path(path).read_text())

    # -- section expansion ---------------------------------------------- #

    def _experiment_for(self, section: str, options: dict) -> Experiment:
        name = (options.get("experiment") or "").strip()
        if not name:
            raise ConfigurationError(f"section [{section}] is missing experiment=")
        return registry.get(name)

    def _resolve_cell(
        self,
        section: str,
        experiment: Experiment,
        chosen: dict[str, Any],
        label: str,
        role: str | None = None,
    ) -> CampaignCell:
        """Defaults + overrides -> typed params, derived seed, run ID."""
        params = experiment.scaled_args(self.full)
        params.update(chosen)
        if "seed" in params and "seed" not in chosen:
            params["seed"] = derive_seed(self.seed, experiment.name, params)
        run_id = compute_run_id(experiment.name, params, self.scale)
        return CampaignCell(
            group=section,
            experiment=experiment.name,
            params=params,
            label=label,
            run_id=run_id,
            role=role,
        )

    def _expand_grid(self, section: str, options: dict) -> None:
        experiment = self._experiment_for(section, options)
        axes: list[list[tuple[str, str]]] = []
        for key, raw in options.items():
            if key in RESERVED_KEYS:
                continue
            values = split_values(raw or "")
            if not values:
                raise ConfigurationError(f"[{section}]: empty {key}= list")
            experiment.param(key)  # unknown keys are configuration errors
            axes.append([(key, value) for value in values])

        include = split_values(options.get("include") or "")
        exclude = split_values(options.get("exclude") or "")
        multi = {axis[0][0] for axis in axes if len(axis) > 1}
        short = section.split(":", 1)[1]
        n_kept = 0
        for combo in itertools.product(*axes):
            raw_choice = dict(combo)
            if exclude and any(_matches(raw_choice, p) for p in exclude):
                continue
            if include and not any(_matches(raw_choice, p) for p in include):
                continue
            chosen = {
                key: experiment.param(key).parse(value)
                for key, value in raw_choice.items()
            }
            varying = [f"{k}={v}" for k, v in combo if k in multi]
            label = f"{short}[{'/'.join(varying)}]" if varying else short
            self.cells.append(
                self._resolve_cell(section, experiment, chosen, label)
            )
            n_kept += 1
        if n_kept == 0:
            raise ConfigurationError(
                f"[{section}]: include/exclude filters removed every cell"
            )

    def _expand_ablation(self, section: str, options: dict) -> None:
        experiment = self._experiment_for(section, options)
        short = section.split(":", 1)[1]
        metric = (options.get("metric") or "").strip()
        if not metric:
            raise ConfigurationError(f"[{section}] is missing metric=")
        goal = (options.get("goal") or "max").strip().lower()
        if goal not in GOALS:
            raise ConfigurationError(
                f"[{section}]: goal must be one of {GOALS}, got {goal!r}"
            )

        baseline_raw: dict[str, str] = {}
        knockouts_raw: dict[str, str] = {}
        for key, raw in options.items():
            if key in RESERVED_KEYS or key in ABLATION_KEYS:
                continue
            if key.startswith("knockout."):
                component = key[len("knockout."):].strip()
                if not component:
                    raise ConfigurationError(
                        f"[{section}]: knockout key needs a component name"
                    )
                knockouts_raw[component] = raw or ""
                continue
            experiment.param(key)
            values = split_values(raw or "")
            if len(values) != 1:
                raise ConfigurationError(
                    f"[{section}]: baseline key {key}= must be a single value "
                    "(grids belong in [grid:...] sections)"
                )
            baseline_raw[key] = values[0]
        if not knockouts_raw:
            raise ConfigurationError(
                f"[{section}] defines no knockout.<component>= entries"
            )

        baseline = {
            key: experiment.param(key).parse(value)
            for key, value in baseline_raw.items()
        }
        baseline_cell = self._resolve_cell(
            section, experiment, baseline, f"{short}[baseline]", role="baseline"
        )
        self.cells.append(baseline_cell)

        knockouts: dict[str, str] = {}
        for component, raw in knockouts_raw.items():
            overrides = dict(baseline)
            for assignment in split_values(raw):
                key, sep, value = assignment.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise ConfigurationError(
                        f"[{section}]: knockout.{component} entries must be "
                        f"key=value, got {assignment!r}"
                    )
                overrides[key] = experiment.param(key).parse(value)
            cell = self._resolve_cell(
                section,
                experiment,
                overrides,
                f"{short}[-{component}]",
                role=component,
            )
            self.cells.append(cell)
            knockouts[component] = cell.run_id

        self.ablations.append(
            AblationGroup(
                name=short,
                experiment=experiment.name,
                metric=metric,
                goal=goal,
                baseline_run_id=baseline_cell.run_id,
                knockouts=knockouts,
            )
        )


def _matches(choice: dict[str, str], pattern: str) -> bool:
    """Does a raw axis choice match a ``key=value/key2=value2`` pattern?"""
    for clause in pattern.split("/"):
        key, sep, value = clause.partition("=")
        if not sep:
            raise ConfigurationError(
                f"filter pattern {pattern!r}: clauses must be key=value"
            )
        if choice.get(key.strip()) != value.strip():
            return False
    return True
