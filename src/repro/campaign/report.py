"""Campaign reporting: merged metric snapshots and ablation rankings.

The ablation report follows the aumai-ablation bookkeeping model: each
group has a baseline run and one run per knocked-out component, and a
component's **importance** is the metric delta its removal causes,
signed so that positive means "the component helps":

* ``goal = max`` (throughput-like): importance = baseline - knockout;
* ``goal = min`` (cost-like):       importance = knockout - baseline.

Components are ranked by importance, most load-bearing first; a
negative importance flags a *harmful* component — removing it improved
the metric.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.plan import AblationGroup, CampaignPlan
from repro.campaign.runner import RunRecord
from repro.common.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.observability import MetricsRegistry


def load_plan(out_dir: str | Path) -> CampaignPlan:
    """Reconstruct the plan a campaign directory was produced from."""
    path = Path(out_dir) / "campaign.json"
    if not path.exists():
        raise ConfigurationError(
            f"{path} not found — is {out_dir!r} a campaign output directory?"
        )
    payload = json.loads(path.read_text())
    plan = CampaignPlan(
        name=payload["name"], seed=payload["seed"], scale=payload["scale"]
    )
    from repro.campaign.plan import CampaignCell

    plan.cells = [CampaignCell(**cell) for cell in payload["cells"]]
    plan.ablations = [AblationGroup(**group) for group in payload["ablations"]]
    return plan


def scan_runs(out_dir: str | Path) -> dict[str, RunRecord]:
    """All completed run records in a campaign directory, by run ID."""
    runs_dir = Path(out_dir) / "runs"
    records: dict[str, RunRecord] = {}
    if not runs_dir.is_dir():
        return records
    for run_json in sorted(runs_dir.glob("*/run.json")):
        try:
            record = RunRecord.from_dict(json.loads(run_json.read_text()))
        except (json.JSONDecodeError, TypeError, KeyError):
            continue  # incomplete cell: no valid completion marker
        records[record.run_id] = record
    return records


def merged_metrics(out_dir: str | Path) -> dict:
    """Merge every run's metrics snapshot into one campaign snapshot."""
    runs_dir = Path(out_dir) / "runs"
    merged: dict | None = None
    for metrics_json in sorted(runs_dir.glob("*/metrics.json")):
        try:
            snapshot = json.loads(metrics_json.read_text())
        except json.JSONDecodeError:
            continue
        merged = (
            snapshot
            if merged is None
            else MetricsRegistry.merge_snapshots(merged, snapshot)
        )
    return merged if merged is not None else {"metrics": []}


def metric_value(out_dir: str | Path, run_id: str, metric: str) -> float | None:
    """Extract a metric column from a run's persisted result rows.

    The first row carrying the column wins — experiments put their
    scoreboard row first (or make the column unique).
    """
    directory = Path(out_dir) / "runs" / run_id
    if not (directory / "result.json").exists():
        return None
    result = ExperimentResult.load(directory)
    for row in result.rows:
        if metric in row:
            value = row[metric]
            try:
                return float(value)
            except (TypeError, ValueError):
                return None
    return None


@dataclass
class ComponentScore:
    component: str
    run_id: str
    value: float | None
    importance: float | None

    @property
    def harmful(self) -> bool:
        return self.importance is not None and self.importance < 0


@dataclass
class GroupReport:
    """One ablation group's ranked importance table."""

    name: str
    experiment: str
    metric: str
    goal: str
    baseline_run_id: str
    baseline_value: float | None
    scores: list[ComponentScore] = field(default_factory=list)

    def ranked(self) -> list[ComponentScore]:
        """Most load-bearing first; unmeasurable components sink last."""
        return sorted(
            self.scores,
            key=lambda s: (s.importance is None, -(s.importance or 0.0)),
        )


def ablation_report(out_dir: str | Path) -> list[GroupReport]:
    """Score every ablation group from the persisted run artifacts."""
    plan = load_plan(out_dir)
    reports = []
    for group in plan.ablations:
        baseline = metric_value(out_dir, group.baseline_run_id, group.metric)
        report = GroupReport(
            name=group.name,
            experiment=group.experiment,
            metric=group.metric,
            goal=group.goal,
            baseline_run_id=group.baseline_run_id,
            baseline_value=baseline,
        )
        for component, run_id in group.knockouts.items():
            value = metric_value(out_dir, run_id, group.metric)
            importance = None
            if baseline is not None and value is not None:
                delta = baseline - value
                importance = delta if group.goal == "max" else -delta
            report.scores.append(
                ComponentScore(
                    component=component,
                    run_id=run_id,
                    value=value,
                    importance=importance,
                )
            )
        reports.append(report)
    return reports


# ---------------------------------------------------------------------- #
# Rendering                                                              #
# ---------------------------------------------------------------------- #


def _fmt(value: float | None) -> str:
    if value is None:
        return "n/a"
    return f"{value:.6g}"


def render_markdown(out_dir: str | Path) -> str:
    """The campaign report: status matrix, ablations, merged metrics."""
    plan = load_plan(out_dir)
    records = scan_runs(out_dir)
    lines = [
        f"# Campaign report: {plan.name}",
        "",
        f"Scale: {plan.scale} — seed {plan.seed} — "
        f"{len(plan.cells)} planned cells — regenerated by `pscampaign report`.",
        "",
        "## Runs",
        "",
        "| group | cell | run ID | status | elapsed [s] |",
        "|---|---|---|---|---|",
    ]
    counts = {"ok": 0, "failed": 0, "missing": 0}
    seen: set[str] = set()
    for cell in plan.cells:
        if cell.run_id in seen:
            continue
        seen.add(cell.run_id)
        record = records.get(cell.run_id)
        if record is None:
            status, elapsed = "missing", ""
            counts["missing"] += 1
        else:
            status = record.status if record.status != "skipped" else "ok"
            counts[status] = counts.get(status, 0) + 1
            elapsed = f"{record.elapsed_s:.2f}"
            if record.status == "failed":
                status = f"failed ({record.error_type})"
        lines.append(
            f"| {cell.group} | {cell.label} | {cell.run_id} | {status} | {elapsed} |"
        )
    lines += [
        "",
        f"**{counts['ok']} ok, {counts['failed']} failed, "
        f"{counts['missing']} missing** of {len(seen)} unique cells.",
        "",
    ]

    reports = ablation_report(out_dir)
    if reports:
        lines.append("## Ablations")
        lines.append("")
        for report in reports:
            direction = "higher is better" if report.goal == "max" else "lower is better"
            lines += [
                f"### {report.name} ({report.experiment})",
                "",
                f"Metric: `{report.metric}` ({direction}); "
                f"baseline = {_fmt(report.baseline_value)}.",
                "",
                "| rank | component | metric without it | importance | verdict |",
                "|---|---|---|---|---|",
            ]
            for rank, score in enumerate(report.ranked(), start=1):
                if score.importance is None:
                    verdict = "unmeasured"
                elif score.harmful:
                    verdict = "harmful — removal improved the metric"
                elif score.importance == 0:
                    verdict = "no effect"
                else:
                    verdict = "load-bearing"
                lines.append(
                    f"| {rank} | {score.component} | {_fmt(score.value)} "
                    f"| {_fmt(score.importance)} | {verdict} |"
                )
            lines.append("")

    merged = merged_metrics(out_dir)
    lines += [
        "## Merged metrics",
        "",
        f"{len(merged.get('metrics', []))} merged series across "
        f"{counts['ok'] + counts['failed']} completed runs "
        "(see `merged_metrics.json`).",
        "",
    ]
    return "\n".join(lines)


def write_report(out_dir: str | Path) -> tuple[Path, Path]:
    """Write ``campaign_report.md`` + ``merged_metrics.json``; return paths."""
    out_dir = Path(out_dir)
    report_path = out_dir / "campaign_report.md"
    metrics_path = out_dir / "merged_metrics.json"
    report_path.write_text(render_markdown(out_dir))
    metrics_path.write_text(json.dumps(merged_metrics(out_dir), indent=2))
    return report_path, metrics_path
