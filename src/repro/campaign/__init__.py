"""Declarative, resumable campaign runner over the experiment registry.

The paper's evaluation is a matrix — sensor configs x DUTs x workloads
(Tables I-II, Figs. 4-12) — and this package turns the reproduction's
"bag of bench scripts" into a scenario engine that can execute hundreds
of configurations per run:

* :mod:`repro.campaign.registry` — every experiment module registers an
  :class:`~repro.campaign.registry.Experiment` descriptor (name,
  parameter schema with bench/full scales, runner, artifacts); the
  report and the benchmarks are generated from it.
* :mod:`repro.campaign.plan` — a declarative INI plan (the
  :mod:`repro.storage.jobfile` grammar conventions) expressing cartesian
  grids over experiments and their axes, include/exclude filters, and
  aumai-style ablation (knockout) groups.
* :mod:`repro.campaign.runner` — executes each cell under a stable
  content-hashed run ID with a derived seed, persists the result plus a
  metrics-registry snapshot atomically, skips completed cells on
  resume, and isolates crashes to the failing cell.
* :mod:`repro.campaign.report` — merges per-run metric snapshots and
  ranks per-component importance from the ablation groups' deltas.

The ``pscampaign`` CLI (:mod:`repro.cli.pscampaign`) fronts all of it.
"""

from repro.campaign.plan import CampaignPlan
from repro.campaign.registry import Experiment, Param, experiments, get, register
from repro.campaign.runner import CampaignRunner, RunRecord, execute_cell
from repro.campaign.report import (
    ablation_report,
    merged_metrics,
    render_markdown,
    scan_runs,
)

__all__ = [
    "CampaignPlan",
    "CampaignRunner",
    "Experiment",
    "Param",
    "RunRecord",
    "ablation_report",
    "execute_cell",
    "experiments",
    "get",
    "merged_metrics",
    "register",
    "render_markdown",
    "scan_runs",
]
