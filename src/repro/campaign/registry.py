"""The experiment registry: one descriptor per reproducible artifact.

Every module in :mod:`repro.experiments` registers an :class:`Experiment`
at import time: a stable name, the report section title, the runner
callable, and a typed parameter schema carrying both the bench-scale
defaults and the paper-scale (``full``) overrides.  The reproduce-all
report, the pytest-benchmark drivers and the campaign planner are all
generated from this table instead of hand-wired lists.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ConfigurationError
from repro.experiments.common import ExperimentResult

#: Sentinel for "no paper-scale override" (``None`` is a legal value).
_UNSET = object()

_PARSERS: dict[str, Callable[[str], Any]] = {
    "int": lambda text: int(text, 0),
    "float": float,
    "str": str,
    "bool": lambda text: text.strip().lower() not in ("0", "false", "no", ""),
}


@dataclass(frozen=True)
class Param:
    """One schema entry: name, type, bench default, paper-scale value.

    ``default`` is the bench-scale value the reproduce-all report and
    campaign cells use when a plan does not pin the axis; ``full`` is
    the paper-scale override selected by ``scale = full`` (report
    ``--full``).  ``choices`` restricts string axes to a closed set.
    """

    name: str
    kind: str = "str"
    default: Any = None
    full: Any = _UNSET
    choices: tuple[str, ...] | None = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _PARSERS:
            raise ConfigurationError(
                f"param {self.name!r}: unknown kind {self.kind!r} "
                f"(choose from {sorted(_PARSERS)})"
            )

    def parse(self, text: str) -> Any:
        """Parse one plan-file token into this parameter's type."""
        try:
            value = _PARSERS[self.kind](text.strip())
        except ValueError as error:
            raise ConfigurationError(
                f"param {self.name!r}: cannot parse {text!r} as {self.kind}"
            ) from error
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"param {self.name!r}: {value!r} not in {sorted(self.choices)}"
            )
        return value

    def value(self, full: bool) -> Any:
        """The bench- or paper-scale value of this parameter."""
        if full and self.full is not _UNSET:
            return self.full
        return self.default


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: what to run, how to scale it, what it emits.

    Attributes:
        name: stable registry key (``fig4``, ``ablation_noise``, ...);
            also the run-ID prefix.
        section: the report section title ("Fig. 4", "Table I", ...).
        runner: callable returning an :class:`ExperimentResult`; called
            with the resolved parameter dict as keyword arguments.
        params: the typed parameter schema plans may sweep.
        bench: benchmark-scaled overrides for the pytest-benchmark
            driver (free-form kwargs, not restricted to ``params``).
        report_index: position in the reproduce-all report, or ``None``
            for experiments the report does not include.
        accepts_registry: the runner takes a ``registry=`` keyword and
            publishes metrics into it (the campaign runner then persists
            a per-run snapshot with real content).
        series: the result carries figure series (a ``series.npz``
            artifact alongside ``result.json``).
    """

    name: str
    section: str
    runner: Callable[..., ExperimentResult]
    params: tuple[Param, ...] = ()
    bench: Mapping[str, Any] = field(default_factory=dict)
    report_index: int | None = None
    accepts_registry: bool = False
    series: bool = False
    help: str = ""

    def param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise ConfigurationError(
            f"experiment {self.name!r} has no parameter {name!r} "
            f"(schema: {[p.name for p in self.params] or 'none'})"
        )

    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    def scaled_args(self, full: bool = False) -> dict[str, Any]:
        """The fully resolved parameter dict at bench or paper scale."""
        return {p.name: p.value(full) for p in self.params}

    @property
    def artifacts(self) -> tuple[str, ...]:
        return ("result.json", "series.npz") if self.series else ("result.json",)


_REGISTRY: dict[str, Experiment] = {}
_LOADED = False


def register(
    name: str,
    section: str,
    runner: Callable[..., ExperimentResult],
    params: tuple[Param, ...] = (),
    bench: Mapping[str, Any] | None = None,
    report_index: int | None = None,
    accepts_registry: bool = False,
    series: bool = False,
    help: str = "",
) -> Experiment:
    """Register an experiment descriptor (module-import time).

    Re-registering a name is an error — two modules claiming the same
    experiment would silently shadow each other's schema.
    """
    if name in _REGISTRY:
        raise ConfigurationError(f"experiment {name!r} is already registered")
    experiment = Experiment(
        name=name,
        section=section,
        runner=runner,
        params=tuple(params),
        bench=dict(bench or {}),
        report_index=report_index,
        accepts_registry=accepts_registry,
        series=series,
        help=help,
    )
    _REGISTRY[name] = experiment
    return experiment


def load_all() -> None:
    """Import every experiment module so its registrations run."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # Imported for their registration side effects only.
    from repro.experiments import (  # noqa: F401
        ablations,
        fig4,
        fig5,
        fig7,
        fig8,
        fig10,
        fig12,
        stability,
        streaming,
        table1,
        table2,
        workloads,
    )


def get(name: str) -> Experiment:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r} (registered: {', '.join(names())})"
        ) from None


def names() -> list[str]:
    load_all()
    return sorted(_REGISTRY)


def experiments() -> list[Experiment]:
    load_all()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def report_experiments() -> list[Experiment]:
    """The reproduce-all report's experiments, in pinned order."""
    load_all()
    ordered = [e for e in _REGISTRY.values() if e.report_index is not None]
    ordered.sort(key=lambda e: e.report_index)  # type: ignore[arg-type, return-value]
    return ordered
