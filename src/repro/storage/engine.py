"""The I/O engine: runs fio jobs against the simulated SSD.

Reads use the drive's steady-state performance model (no FTL state is
involved in reading); writes step the FTL in ticks, issuing as many page
programs as the NAND backend can absorb per tick and recording the
host-visible share — which is where garbage-collection-induced bandwidth
variability appears while power stays pinned at the saturated level
(Fig. 12b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import MeasurementError
from repro.common.rng import RngStream
from repro.dut.base import PowerTrace
from repro.dut.ssd import Ssd
from repro.storage.fio import FioJob


@dataclass
class IntervalSample:
    """Per-interval statistics, like fio's interval logs."""

    time_s: float
    bandwidth_bps: float
    iops: float
    power_watts: float
    write_amplification: float = 1.0
    #: Read/write split for mixed workloads (zero for pure patterns).
    read_bandwidth_bps: float = 0.0
    write_bandwidth_bps: float = 0.0


@dataclass
class JobResult:
    """Outcome of one fio job run."""

    job: FioJob
    intervals: list[IntervalSample] = field(default_factory=list)
    #: Per-request completion latencies (read jobs only; empty otherwise).
    latencies_s: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def latency_percentiles(self, quantiles=(50, 95, 99)) -> dict[int, float]:
        """fio-style completion-latency percentiles, in seconds."""
        if self.latencies_s.size == 0:
            raise MeasurementError("job recorded no per-request latencies")
        return {
            q: float(np.percentile(self.latencies_s, q)) for q in quantiles
        }

    @property
    def times(self) -> np.ndarray:
        return np.array([s.time_s for s in self.intervals])

    @property
    def bandwidth(self) -> np.ndarray:
        return np.array([s.bandwidth_bps for s in self.intervals])

    @property
    def power(self) -> np.ndarray:
        return np.array([s.power_watts for s in self.intervals])

    @property
    def mean_bandwidth(self) -> float:
        return float(self.bandwidth.mean()) if self.intervals else 0.0

    @property
    def mean_power(self) -> float:
        return float(self.power.mean()) if self.intervals else 0.0

    def power_trace(self, volts: float = 12.0) -> PowerTrace:
        """Ground-truth rail trace for PowerSensor3 to measure."""
        return PowerTrace(
            times=self.times,
            volts=np.full(len(self.intervals), volts),
            amps=self.power / volts,
        )


class IoEngine:
    """Runs fio jobs against an :class:`~repro.dut.ssd.Ssd`."""

    def __init__(self, ssd: Ssd, seed: int = 0, tick_s: float = 0.05) -> None:
        self.ssd = ssd
        self.rng = RngStream(seed, "ioengine")
        self.tick_s = tick_s

    def run(self, job: FioJob) -> JobResult:
        if job.is_mixed:
            return self._run_mixed(job)
        if job.is_write:
            return self._run_write(job)
        return self._run_read(job)

    def stepper(self, job: FioJob) -> JobStepper:
        """Stateful tick-at-a-time execution (the job-file runner's path).

        ``run()`` executes a whole job in one call with vectorised noise
        draws and is pinned bit-identical by the Fig. 12 traces; the
        stepper draws noise per tick so a caller can interleave
        steady-state checks and early termination between ticks.  FTL
        state advances through the same write path either way.
        """
        return JobStepper(self, job)

    # ------------------------------------------------------------------ #
    # Reads: steady performance model + measurement noise                #
    # ------------------------------------------------------------------ #

    def _run_read(self, job: FioJob) -> JobResult:
        result = JobResult(job=job)
        bw = self.ssd.read_bandwidth(job.block_bytes, job.iodepth)
        power = self.ssd.read_power(bw, job.block_bytes)
        n_ticks = max(int(round(job.runtime_s / self.tick_s)), 1)
        bw_noise = self.rng.normal(0.0, 0.015 * bw, size=n_ticks)
        p_noise = self.rng.normal(0.0, 0.02, size=n_ticks)
        for k in range(n_ticks):
            tick_bw = max(bw + bw_noise[k], 0.0)
            result.intervals.append(
                IntervalSample(
                    time_s=(k + 1) * self.tick_s,
                    bandwidth_bps=tick_bw,
                    iops=tick_bw / job.block_bytes,
                    power_watts=max(power + p_noise[k], self.ssd.spec.idle_watts),
                )
            )
        result.latencies_s = self._read_latencies(job, bw)
        return result

    def _read_latencies(
        self, job: FioJob, bandwidth: float, n_requests: int = 4096
    ) -> np.ndarray:
        """Per-request completion latencies for a random-read job.

        Service time is the flash command overhead plus the transfer; queue
        wait grows with device utilisation (an M/D/1-style tail), which is
        what pushes p99 far above the median on a saturated drive.
        """
        spec = self.ssd.spec
        service = spec.read_cmd_overhead_s + job.block_bytes / spec.nand_read_bw
        utilization = min(bandwidth / spec.interface_bw, 0.98)
        mean_wait = service * utilization / max(1.0 - utilization, 0.02)
        waits = self.rng.exponential(max(mean_wait, 1e-9), size=n_requests)
        jitter = self.rng.normal(1.0, 0.03, size=n_requests)
        return service * np.clip(jitter, 0.8, 1.2) + waits

    # ------------------------------------------------------------------ #
    # Writes: FTL stepping                                               #
    # ------------------------------------------------------------------ #

    def _write_tick(
        self, job: FioJob, write_window_s: float, seq_cursor: int, backlog_pages: int
    ) -> tuple[int, int, int, int]:
        """One tick of the FTL write path.

        Returns ``(host_pages, internal_pages, seq_cursor, backlog_pages)``
        where ``internal_pages`` is capped at the window's NAND budget and
        the excess (GC bursts) carries over as backlog.
        """
        spec = self.ssd.spec
        pages_per_req = max(job.block_bytes // spec.page_bytes, 1)
        budget = self.ssd.write_budget_pages(write_window_s)
        host_pages = 0
        if backlog_pages >= budget:
            return 0, budget, seq_cursor, backlog_pages - budget
        internal_pages = backlog_pages
        backlog_pages = 0
        while internal_pages < budget:
            remaining = budget - internal_pages
            chunk_pages = min(max(remaining // 2, pages_per_req), 8192)
            chunk_pages = (chunk_pages // pages_per_req) * pages_per_req
            chunk_pages = max(chunk_pages, pages_per_req)
            lpns, seq_cursor = self._pick_lpns(job, chunk_pages, seq_cursor)
            relocated = self.ssd.write_pages(lpns)
            host_pages += lpns.size
            internal_pages += lpns.size + relocated
        if internal_pages > budget:
            backlog_pages = internal_pages - budget
            internal_pages = budget
        return host_pages, internal_pages, seq_cursor, backlog_pages

    def _run_write(self, job: FioJob) -> JobResult:
        spec = self.ssd.spec
        result = JobResult(job=job)
        n_ticks = max(int(round(job.runtime_s / self.tick_s)), 1)
        seq_cursor = 0
        # Internal page programs (GC bursts) that exceeded a tick's NAND
        # budget stall host writes in the following ticks.
        backlog_pages = 0
        for k in range(n_ticks):
            budget = self.ssd.write_budget_pages(self.tick_s)
            host_pages, internal_pages, seq_cursor, backlog_pages = self._write_tick(
                job, self.tick_s, seq_cursor, backlog_pages
            )
            busy = min(internal_pages / budget, 1.0)
            bw = host_pages * spec.page_bytes / self.tick_s
            wa = (internal_pages + backlog_pages) / max(host_pages, 1)
            result.intervals.append(
                IntervalSample(
                    time_s=(k + 1) * self.tick_s,
                    bandwidth_bps=bw,
                    iops=bw / job.block_bytes,
                    power_watts=self.ssd.write_power(busy)
                    + float(self.rng.normal(0.0, 0.03)),
                    write_amplification=wa,
                )
            )
        return result

    # ------------------------------------------------------------------ #
    # Mixed workloads: the device time-shares reads and writes           #
    # ------------------------------------------------------------------ #

    def _run_mixed(self, job: FioJob) -> JobResult:
        spec = self.ssd.spec
        result = JobResult(job=job)
        read_fraction = job.read_fraction
        write_fraction = 1.0 - read_fraction
        full_read_bw = self.ssd.read_bandwidth(job.block_bytes, job.iodepth)
        n_ticks = max(int(round(job.runtime_s / self.tick_s)), 1)
        seq_cursor = 0
        backlog_pages = 0
        for k in range(n_ticks):
            write_window = self.tick_s * write_fraction
            host_pages = internal_pages = 0
            busy = 0.0
            if write_fraction > 0:
                budget = self.ssd.write_budget_pages(write_window)
                host_pages, internal_pages, seq_cursor, backlog_pages = (
                    self._write_tick(job, write_window, seq_cursor, backlog_pages)
                )
                busy = min(internal_pages / budget, 1.0)
            read_bw = full_read_bw * read_fraction
            write_bw = host_pages * spec.page_bytes / self.tick_s
            read_power = self.ssd.read_power(full_read_bw, job.block_bytes)
            power = (
                read_fraction * read_power
                + write_fraction * self.ssd.write_power(busy)
                + float(self.rng.normal(0.0, 0.03))
            )
            total_bw = read_bw + write_bw
            result.intervals.append(
                IntervalSample(
                    time_s=(k + 1) * self.tick_s,
                    bandwidth_bps=total_bw,
                    iops=total_bw / job.block_bytes,
                    power_watts=max(power, spec.idle_watts),
                    write_amplification=(internal_pages + backlog_pages)
                    / max(host_pages, 1),
                    read_bandwidth_bps=read_bw,
                    write_bandwidth_bps=write_bw,
                )
            )
        return result

    def _pick_lpns(
        self, job: FioJob, n_pages: int, seq_cursor: int
    ) -> tuple[np.ndarray, int]:
        spec = self.ssd.spec
        pages_per_req = max(job.block_bytes // spec.page_bytes, 1)
        n_reqs = max(n_pages // pages_per_req, 1)
        if job.is_random:
            max_start = spec.logical_pages - pages_per_req
            starts = self.rng.integers(0, max_start + 1, size=n_reqs)
        else:
            starts = (
                seq_cursor + np.arange(n_reqs, dtype=np.int64) * pages_per_req
            ) % (spec.logical_pages - pages_per_req + 1)
            seq_cursor = int(
                (seq_cursor + n_reqs * pages_per_req) % spec.logical_pages
            )
        offsets = np.arange(pages_per_req, dtype=np.int64)
        lpns = (starts[:, None] + offsets[None, :]).reshape(-1)
        return lpns, seq_cursor


class JobStepper:
    """Advance one fio job through the FTL one tick at a time.

    Produced by :meth:`IoEngine.stepper`.  Each :meth:`tick` runs
    ``engine.tick_s`` of simulated workload and returns the interval
    sample; mapping-lookup overhead for the read share is charged to the
    FTL policy's ``lookup_ops`` counter as it happens.
    """

    def __init__(self, engine: IoEngine, job: FioJob) -> None:
        self.engine = engine
        self.job = job
        self.ssd = engine.ssd
        self._seq_cursor = 0
        self._backlog_pages = 0
        self._ticks = 0
        self._read_bw = 0.0
        self._read_power = 0.0
        if not job.is_write:
            self._read_bw = self.ssd.read_bandwidth(job.block_bytes, job.iodepth)
            self._read_power = self.ssd.read_power(self._read_bw, job.block_bytes)

    @property
    def time_s(self) -> float:
        return self._ticks * self.engine.tick_s

    def _account_read_lookups(self, read_bytes: float) -> None:
        pages = int(read_bytes / self.ssd.spec.page_bytes)
        if pages > 0:
            ftl = self.ssd.ftl
            ftl.counters.lookup_ops += ftl.lookup_cost(pages)

    def tick(self) -> IntervalSample:
        engine = self.engine
        job = self.job
        spec = self.ssd.spec
        tick_s = engine.tick_s
        self._ticks += 1
        read_fraction = job.read_fraction
        write_fraction = 1.0 - read_fraction

        host_pages = internal_pages = 0
        busy = 0.0
        if write_fraction > 0:
            write_window = tick_s * write_fraction
            budget = self.ssd.write_budget_pages(write_window)
            host_pages, internal_pages, self._seq_cursor, self._backlog_pages = (
                engine._write_tick(
                    job, write_window, self._seq_cursor, self._backlog_pages
                )
            )
            busy = min(internal_pages / budget, 1.0)

        write_bw = host_pages * spec.page_bytes / tick_s
        wa = (internal_pages + self._backlog_pages) / max(host_pages, 1)
        if read_fraction == 0.0:
            power = self.ssd.write_power(busy) + float(
                engine.rng.normal(0.0, 0.03)
            )
            return IntervalSample(
                time_s=self.time_s,
                bandwidth_bps=write_bw,
                iops=write_bw / job.block_bytes,
                power_watts=max(power, spec.idle_watts),
                write_amplification=wa,
                write_bandwidth_bps=write_bw,
            )

        read_bw = self._read_bw * read_fraction
        if write_fraction == 0.0:
            read_bw = max(
                self._read_bw + float(engine.rng.normal(0.0, 0.015 * self._read_bw)),
                0.0,
            )
        self._account_read_lookups(read_bw * tick_s)
        power = (
            read_fraction * self._read_power
            + write_fraction * self.ssd.write_power(busy)
            + float(engine.rng.normal(0.0, 0.03 if job.is_mixed else 0.02))
        )
        total_bw = read_bw + write_bw
        return IntervalSample(
            time_s=self.time_s,
            bandwidth_bps=total_bw,
            iops=total_bw / job.block_bytes,
            power_watts=max(power, spec.idle_watts),
            write_amplification=wa,
            read_bandwidth_bps=read_bw if job.is_mixed else 0.0,
            write_bandwidth_bps=write_bw,
        )

    def read_latencies(self) -> np.ndarray:
        """Per-request completion latencies for the job's read share."""
        if self.job.read_fraction == 0.0:
            return np.zeros(0)
        return self.engine._read_latencies(self.job, self._read_bw)


def precondition(ssd: Ssd, engine: IoEngine, bs: str = "128k", passes: float = 1.0) -> None:
    """The paper's preconditioning: sequential writes across the LBA space.

    Runs sequential writes until ``passes`` times the logical capacity has
    been written, leaving the drive fully mapped.
    """
    spec = ssd.spec
    pages_total = int(spec.logical_pages * passes)
    pages_per_req = max(FioJob(rw="write", bs=bs).block_bytes // spec.page_bytes, 1)
    cursor = 0
    chunk = 8192
    written = 0
    while written < pages_total:
        n = min(chunk, pages_total - written)
        n = max((n // pages_per_req) * pages_per_req, pages_per_req)
        lpns = (cursor + np.arange(n, dtype=np.int64)) % spec.logical_pages
        ssd.write_pages(lpns)
        cursor = int((cursor + n) % spec.logical_pages)
        written += n
