"""fio-style storage workload generation against the simulated SSD."""

from repro.storage.engine import (
    IntervalSample,
    IoEngine,
    JobResult,
    JobStepper,
    precondition,
)
from repro.storage.fio import FioJob, parse_size
from repro.storage.jobfile import (
    JobOutcome,
    JobRunner,
    JobSpec,
    SteadyState,
    load_jobfile,
    parse_jobfile,
    run_jobfile,
    write_report,
)

__all__ = [
    "FioJob",
    "parse_size",
    "IoEngine",
    "JobResult",
    "JobStepper",
    "IntervalSample",
    "precondition",
    "JobSpec",
    "JobOutcome",
    "JobRunner",
    "SteadyState",
    "parse_jobfile",
    "load_jobfile",
    "run_jobfile",
    "write_report",
]
