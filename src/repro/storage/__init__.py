"""fio-style storage workload generation against the simulated SSD."""

from repro.storage.engine import IntervalSample, IoEngine, JobResult, precondition
from repro.storage.fio import FioJob, parse_size

__all__ = [
    "FioJob",
    "parse_size",
    "IoEngine",
    "JobResult",
    "IntervalSample",
    "precondition",
]
