"""fio-style job specifications.

The paper drives its SSD workloads with fio using direct I/O and the
io_uring engine (Section V-C).  :class:`FioJob` captures the knobs those
experiments use — read/write pattern, block size, queue depth, runtime —
with fio's human-readable size syntax ("4k", "1m").
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import GIB, KIB, MIB

PATTERNS = ("read", "write", "randread", "randwrite", "rw", "randrw")

# An ``i`` is only legal as part of a binary-prefix spelling (kib/mib/
# gib): accepting a dangling ``i`` made "4ib" parse as 4 bytes, which
# silently turned a typo'd block size into a one-page workload.
_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)(?:([kmg])i?)?b?$", re.IGNORECASE)
_SUFFIX = {"": 1, "k": KIB, "m": MIB, "g": GIB}


def parse_size(text: str | int) -> int:
    """Parse fio-style sizes: "4k" -> 4096, "1m" -> 1048576, 512 -> 512."""
    if isinstance(text, int):
        if text <= 0:
            raise ConfigurationError("size must be positive")
        return text
    match = _SIZE_RE.match(text.strip())
    if not match:
        raise ConfigurationError(f"cannot parse size {text!r}")
    value, suffix = match.groups()
    return int(float(value) * _SUFFIX[(suffix or "").lower()])


@dataclass(frozen=True)
class FioJob:
    """One fio job: what to do to the device and for how long."""

    rw: str  # read / write / randread / randwrite / rw / randrw
    bs: str | int = "4k"  # block (request) size
    iodepth: int = 4
    runtime_s: float = 10.0
    ioengine: str = "io_uring"
    direct: bool = True
    name: str = "job"
    #: Read share of a mixed (rw / randrw) workload, percent.
    rwmixread: int = 50

    def __post_init__(self) -> None:
        if self.rw not in PATTERNS:
            raise ConfigurationError(
                f"rw must be one of {PATTERNS}, got {self.rw!r}"
            )
        if self.iodepth < 1:
            raise ConfigurationError("iodepth must be >= 1")
        if self.runtime_s <= 0:
            raise ConfigurationError("runtime must be positive")
        if not 0 <= self.rwmixread <= 100:
            raise ConfigurationError("rwmixread must be 0..100")
        parse_size(self.bs)  # validate eagerly

    @property
    def block_bytes(self) -> int:
        return parse_size(self.bs)

    @property
    def is_write(self) -> bool:
        return self.rw in ("write", "randwrite")

    @property
    def is_mixed(self) -> bool:
        return self.rw in ("rw", "randrw")

    @property
    def is_random(self) -> bool:
        return self.rw.startswith("rand")

    @property
    def read_fraction(self) -> float:
        """Fraction of the workload that is reads."""
        if self.is_mixed:
            return self.rwmixread / 100.0
        return 0.0 if self.is_write else 1.0
