"""fio-grade declarative job files and the energy-aware workload runner.

The paper drives its Fig. 12 SSD study with hand-built fio invocations;
this module makes the whole study *declarative*, in the spirit of PMT's
goal of energy as a first-class scriptable measurement target.  A job
file is fio's INI dialect::

    [global]
    bs=4k
    iodepth=4
    runtime=10

    [precondition]
    rw=write
    bs=128k
    precondition=1.0
    pre_format=1

    [steady-writes]
    stonewall
    rw=randwrite
    ss=iops_slope:0.3%
    ss_dur=5
    runtime=40

    [size-sweep]
    stonewall
    rw=randread
    bs=4k,64k,1m
    iodepth=1,8

Supported semantics:

* ``[global]`` defaults merged into every job section;
* **grids** — comma-separated ``rw``/``bs``/``iodepth``/``rwmixread``
  values expand into the cartesian product of jobs
  (``name[bs=64k/iodepth=8]``);
* ``stonewall`` — fio runs sections concurrently unless stonewalled; the
  simulated drive is a single device, so *all* jobs serialise in file
  order and ``stonewall`` additionally drains the SLC cache
  (:meth:`~repro.dut.ssd.Ssd.idle_flush`), marking a fresh stage
  boundary exactly where fio would barrier;
* ``pre_format`` / ``precondition=<passes>`` — NVMe format and the
  paper's sequential preconditioning (reusing
  :func:`repro.storage.engine.precondition`) before the job body; a job
  may be *only* preconditioning (``runtime=0``);
* ``ss=`` — fio steady-state detection: ``iops_slope:0.3%`` /
  ``bw_slope:…`` terminate when the least-squares slope of the rolling
  ``ss_dur``-second window of 1-second means falls under the threshold
  (as a fraction of the window mean per second); ``iops:…`` / ``bw:…``
  use fio's max-deviation-from-mean criterion.  ``ss_ramp`` excludes
  warm-up seconds.  ``runtime`` stays the hard cap.

Every job is measured through the simulated PowerSensor3 bench (3.3 V
slot rail, as in the paper's Fig. 11 riser setup): each outcome reports
bandwidth, latency percentiles, PS3 watts, and **joules per IO** — the
figure of merit the FTL comparison sweeps.
"""

from __future__ import annotations

import configparser
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.setup import SimulatedSetup
from repro.dut.base import TraceRail
from repro.dut.ssd import Ssd, SsdSpec
from repro.ftl import FTL_POLICIES
from repro.storage.engine import IntervalSample, IoEngine, JobResult, precondition
from repro.storage.fio import FioJob

#: Keys whose comma-separated values expand into a parameter grid.
GRID_KEYS = ("rw", "bs", "iodepth", "rwmixread")

#: Steady-state metrics and criteria (fio's ``steadystate=`` grammar).
SS_METRICS = ("iops", "bw")


@dataclass(frozen=True)
class SteadyState:
    """A parsed ``ss=`` criterion: terminate when attained."""

    metric: str  # "iops" | "bw"
    mode: str  # "slope" | "dev"
    threshold: float  # fraction of the window mean
    window_s: float = 4.0  # ss_dur
    ramp_s: float = 0.0  # ss_ramp

    @classmethod
    def parse(
        cls, text: str, window_s: float = 4.0, ramp_s: float = 0.0
    ) -> SteadyState:
        """Parse ``iops_slope:0.3%`` / ``bw:5%`` style criteria."""
        head, sep, value = text.strip().partition(":")
        if not sep or not value:
            raise ConfigurationError(
                f"steady-state spec {text!r} must be metric:threshold"
            )
        metric, _, mode = head.partition("_")
        mode = mode or "dev"
        if metric not in SS_METRICS or mode not in ("slope", "dev"):
            raise ConfigurationError(
                f"steady-state metric {head!r} must be one of "
                "iops, bw, iops_slope, bw_slope"
            )
        value = value.strip()
        if not value.endswith("%"):
            raise ConfigurationError(
                f"steady-state threshold {value!r} must be a percentage"
            )
        threshold = float(value[:-1]) / 100.0
        if threshold <= 0:
            raise ConfigurationError("steady-state threshold must be positive")
        if window_s <= 0:
            raise ConfigurationError("ss_dur must be positive")
        return cls(
            metric=metric,
            mode=mode,
            threshold=threshold,
            window_s=window_s,
            ramp_s=max(ramp_s, 0.0),
        )

    @property
    def criterion(self) -> str:
        mode = f"_{self.mode}" if self.mode == "slope" else ""
        return f"{self.metric}{mode}:{self.threshold * 100:g}%"

    def check(self, window: np.ndarray) -> tuple[bool, float]:
        """Evaluate one rolling window of per-second means.

        Returns ``(attained, value)`` where ``value`` is the measured
        slope (fraction of mean per second) or max deviation (fraction
        of mean), mirroring what fio prints as ``iops slope``/``mean
        dev``.
        """
        mean = float(window.mean())
        if mean <= 0.0:
            return False, float("inf")
        if self.mode == "slope":
            x = np.arange(window.size, dtype=float)
            slope = float(np.polyfit(x, window, 1)[0])
            value = abs(slope) / mean
        else:
            value = float(np.abs(window - mean).max()) / mean
        return value <= self.threshold, value


@dataclass(frozen=True)
class JobSpec:
    """One expanded job: the fio knobs plus runner directives."""

    job: FioJob
    stonewall: bool = False
    pre_format: bool = False
    precondition_passes: float = 0.0
    precondition_bs: str = "128k"
    steady_state: SteadyState | None = None
    #: Runtime 0 is legal for pure preconditioning stages.
    runtime_s: float = 0.0

    @property
    def name(self) -> str:
        return self.job.name


def _parse_runtime(text: str) -> float:
    text = text.strip().lower()
    if text.endswith("s"):
        text = text[:-1]
    runtime = float(text)
    if runtime < 0:
        raise ConfigurationError("runtime must be >= 0")
    return runtime


def _parse_flag(text: str | None) -> bool:
    if text is None:  # bare key, fio style: `stonewall`
        return True
    return text.strip().lower() not in ("0", "false", "no", "")


_KNOWN_KEYS = {
    "name", "rw", "bs", "iodepth", "rwmixread", "runtime", "ioengine",
    "direct", "stonewall", "pre_format", "precondition", "precondition_bs",
    "ss", "ss_dur", "ss_ramp",
}


def parse_jobfile(text: str) -> list[JobSpec]:
    """Parse a job file's text into expanded :class:`JobSpec` instances.

    Unknown keys are rejected — a silently ignored ``iodpeth=32`` is a
    measurement error waiting to be published.
    """
    parser = configparser.ConfigParser(
        allow_no_value=True, delimiters=("=",), interpolation=None
    )
    parser.optionxform = str.lower  # type: ignore[assignment]
    try:
        parser.read_string(text)
    except configparser.Error as error:
        raise ConfigurationError(f"cannot parse job file: {error}") from error
    sections = [s for s in parser.sections() if s.lower() != "global"]
    if not sections:
        raise ConfigurationError("job file defines no job sections")
    defaults = dict(parser["global"]) if parser.has_section("global") else {}

    specs: list[JobSpec] = []
    for section in sections:
        options = {**defaults, **dict(parser[section])}
        unknown = set(options) - _KNOWN_KEYS
        if unknown:
            raise ConfigurationError(
                f"job [{section}]: unknown key(s) {sorted(unknown)}"
            )
        specs.extend(_expand_section(section, options))
    return specs


def load_jobfile(path: str | Path) -> list[JobSpec]:
    return parse_jobfile(Path(path).read_text())


def _expand_section(section: str, options: dict) -> list[JobSpec]:
    if "rw" not in options or options["rw"] is None:
        raise ConfigurationError(f"job [{section}] is missing rw=")
    grids: list[list[tuple[str, str]]] = []
    for key in GRID_KEYS:
        raw = options.get(key)
        if raw is None:
            continue
        values = [v.strip() for v in str(raw).split(",") if v.strip()]
        if not values:
            raise ConfigurationError(f"job [{section}]: empty {key}= list")
        grids.append([(key, v) for v in values])

    stonewall = _parse_flag(options["stonewall"]) if "stonewall" in options else False
    pre_format = _parse_flag(options["pre_format"]) if "pre_format" in options else False
    passes = float(options.get("precondition") or 0.0)
    if passes < 0:
        raise ConfigurationError(f"job [{section}]: precondition must be >= 0")
    runtime = _parse_runtime(options.get("runtime") or "10")
    if runtime == 0 and passes == 0 and not pre_format:
        raise ConfigurationError(
            f"job [{section}]: runtime=0 needs pre_format or precondition"
        )
    steady = None
    if "ss" in options:
        steady = SteadyState.parse(
            options["ss"],
            window_s=float(options.get("ss_dur") or 4.0),
            ramp_s=float(options.get("ss_ramp") or 0.0),
        )

    # Only grid keys with more than one value mark the job name; single
    # values stay implicit (the report records them anyway).
    multi = {axis[0][0] for axis in grids if len(axis) > 1}
    specs = []
    for combo in itertools.product(*grids):
        chosen = dict(combo)
        varying = [f"{k}={v}" for k, v in combo if k in multi]
        name = options.get("name") or section
        if varying:
            name = f"{name}[{'/'.join(varying)}]"
        job = FioJob(
            rw=chosen.get("rw", options["rw"]),
            bs=chosen.get("bs", options.get("bs") or "4k"),
            iodepth=int(chosen.get("iodepth", options.get("iodepth") or 4)),
            rwmixread=int(chosen.get("rwmixread", options.get("rwmixread") or 50)),
            runtime_s=max(runtime, 1e-9),
            ioengine=options.get("ioengine") or "io_uring",
            direct=_parse_flag(options["direct"]) if "direct" in options else True,
            name=name,
        )
        specs.append(
            JobSpec(
                job=job,
                stonewall=stonewall,
                pre_format=pre_format,
                precondition_passes=passes,
                precondition_bs=options.get("precondition_bs") or "128k",
                steady_state=steady,
                runtime_s=runtime,
            )
        )
    return specs


# ---------------------------------------------------------------------- #
# Execution                                                              #
# ---------------------------------------------------------------------- #


@dataclass
class JobOutcome:
    """One job's measured result, JSON-ready."""

    name: str
    policy: str
    params: dict
    runtime_s: float
    bandwidth_mean_bps: float
    bandwidth_cv: float
    iops_mean: float
    total_ios: float
    power_mean_w: float
    energy_j: float
    joules_per_io: float
    write_amplification: float
    map_bytes: int
    lookup_ops: int
    latency_percentiles_us: dict[int, float] = field(default_factory=dict)
    steady_state: dict | None = None
    intervals: list[IntervalSample] = field(default_factory=list)

    def to_dict(self) -> dict:
        out = {
            k: v
            for k, v in self.__dict__.items()
            if k != "intervals"
        }
        out["latency_percentiles_us"] = {
            str(q): v for q, v in self.latency_percentiles_us.items()
        }
        return out


def measure_trace(setup: SimulatedSetup, trace, duration: float) -> float:
    """Mean watts of a rendered power trace through the PS3 bench."""
    rail = TraceRail(trace, offset=setup.ps.source.clock.now)
    setup.connect(0, rail)
    block = setup.ps.pump_seconds(duration)
    return float(block.pair_power(0).mean())


class JobRunner:
    """Execute a parsed job list against one FTL policy, PS3-measured."""

    def __init__(
        self,
        specs: list[JobSpec],
        *,
        ftl: str = "page",
        ftl_options: dict | None = None,
        ssd_spec: SsdSpec | None = None,
        seed: int = 0,
        volts: float = 3.3,
        registry=None,
        keep_intervals: bool = False,
    ) -> None:
        if not specs:
            raise ConfigurationError("no jobs to run")
        self.specs = specs
        self.ftl = ftl
        self.ftl_options = ftl_options
        self.ssd_spec = ssd_spec or SsdSpec()
        self.seed = seed
        self.volts = volts
        self.registry = registry
        self.keep_intervals = keep_intervals

    def run(self) -> list[JobOutcome]:
        ssd = Ssd(self.ssd_spec, seed=self.seed, ftl=self.ftl,
                  ftl_options=self.ftl_options)
        engine = IoEngine(ssd, seed=self.seed)
        setup = SimulatedSetup(
            ["pcie_slot_3v3"],
            seed=self.seed,
            direct=True,
            calibration_samples=32 * 1024,
        )
        try:
            return [
                self._run_one(spec, ssd, engine, setup) for spec in self.specs
            ]
        finally:
            setup.close()

    def _run_one(
        self, spec: JobSpec, ssd: Ssd, engine: IoEngine, setup: SimulatedSetup
    ) -> JobOutcome:
        if spec.stonewall:
            ssd.idle_flush()
        if spec.pre_format:
            ssd.format()
        if spec.precondition_passes > 0:
            precondition(
                ssd, engine, bs=spec.precondition_bs,
                passes=spec.precondition_passes,
            )

        counters_before = (
            ssd.counters.host_pages_written,
            ssd.counters.internal_pages_written,
            ssd.counters.lookup_ops,
        )
        intervals, steady = self._tick_until_done(spec, engine)
        host, internal, lookups = (
            ssd.counters.host_pages_written - counters_before[0],
            ssd.counters.internal_pages_written - counters_before[1],
            ssd.counters.lookup_ops - counters_before[2],
        )

        job = spec.job
        result_bw = np.array([s.bandwidth_bps for s in intervals])
        duration = len(intervals) * engine.tick_s
        total_ios = float(result_bw.sum() * engine.tick_s / job.block_bytes)
        outcome = JobOutcome(
            name=job.name,
            policy=ssd.ftl_name,
            params={
                "rw": job.rw,
                "bs": job.block_bytes,
                "iodepth": job.iodepth,
                "rwmixread": job.rwmixread,
                "runtime_s": spec.runtime_s,
            },
            runtime_s=duration,
            bandwidth_mean_bps=float(result_bw.mean()) if intervals else 0.0,
            bandwidth_cv=(
                float(result_bw.std() / max(result_bw.mean(), 1e-12))
                if intervals
                else 0.0
            ),
            iops_mean=(
                float(result_bw.mean()) / job.block_bytes if intervals else 0.0
            ),
            total_ios=total_ios,
            power_mean_w=0.0,
            energy_j=0.0,
            joules_per_io=0.0,
            write_amplification=(
                (host + internal) / host if host else 1.0
            ),
            map_bytes=ssd.map_bytes(),
            lookup_ops=int(lookups),
            steady_state=steady,
            intervals=list(intervals) if self.keep_intervals else [],
        )

        if intervals:
            result = JobResult(job=job, intervals=list(intervals))
            watts = measure_trace(
                setup, result.power_trace(volts=self.volts), duration
            )
            outcome.power_mean_w = watts
            outcome.energy_j = watts * duration
            outcome.joules_per_io = (
                outcome.energy_j / total_ios if total_ios > 0 else float("inf")
            )
            if job.read_fraction > 0:
                stepper = engine.stepper(job)
                lat = stepper.read_latencies()
                outcome.latency_percentiles_us = {
                    q: float(np.percentile(lat, q) * 1e6) for q in (50, 95, 99)
                }
        if self.registry is not None:
            ssd.publish_metrics(self.registry)
            self.registry.counter(
                "jobfile_jobs_total", policy=ssd.ftl_name
            ).inc()
        return outcome

    def _tick_until_done(
        self, spec: JobSpec, engine: IoEngine
    ) -> tuple[list[IntervalSample], dict | None]:
        """Run the job body, checking steady state at 1-second boundaries."""
        if spec.runtime_s <= 0:
            return [], None
        stepper = engine.stepper(spec.job)
        ticks_per_s = max(int(round(1.0 / engine.tick_s)), 1)
        n_ticks = max(int(round(spec.runtime_s / engine.tick_s)), 1)
        intervals: list[IntervalSample] = []
        ss = spec.steady_state
        steady: dict | None = None
        if ss is not None:
            steady = {
                "criterion": ss.criterion,
                "window_s": ss.window_s,
                "ramp_s": ss.ramp_s,
                "attained": False,
                "value": None,
                "stopped_at_s": None,
            }
        per_second: list[float] = []
        for k in range(n_ticks):
            intervals.append(stepper.tick())
            if ss is None or (k + 1) % ticks_per_s:
                continue
            second = intervals[-ticks_per_s:]
            if ss.metric == "bw":
                per_second.append(
                    float(np.mean([s.bandwidth_bps for s in second]))
                )
            else:
                per_second.append(float(np.mean([s.iops for s in second])))
            elapsed = len(per_second)
            window = int(round(ss.window_s))
            if elapsed <= ss.ramp_s or elapsed - ss.ramp_s < window:
                continue
            attained, value = ss.check(np.array(per_second[-window:]))
            steady["value"] = value  # type: ignore[index]
            if attained:
                steady["attained"] = True  # type: ignore[index]
                steady["stopped_at_s"] = elapsed  # type: ignore[index]
                break
        return intervals, steady


def run_jobfile(
    path: str | Path,
    *,
    ftl: str | list[str] = "page",
    ssd_spec: SsdSpec | None = None,
    seed: int = 0,
    volts: float = 3.3,
    registry=None,
    keep_intervals: bool = False,
) -> dict:
    """Run a job file against one or more FTL policies; returns the report.

    ``ftl`` may be a policy name, a list of names, or ``"all"``.
    """
    specs = load_jobfile(path)
    policies = _resolve_policies(ftl)
    report = {
        "jobfile": str(path),
        "seed": seed,
        "volts": volts,
        "policies": {},
    }
    for policy in policies:
        runner = JobRunner(
            specs,
            ftl=policy,
            ssd_spec=ssd_spec,
            seed=seed,
            volts=volts,
            registry=registry,
            keep_intervals=keep_intervals,
        )
        report["policies"][policy] = [o.to_dict() for o in runner.run()]
    return report


def _resolve_policies(ftl: str | list[str]) -> list[str]:
    if isinstance(ftl, str):
        names = (
            sorted(FTL_POLICIES)
            if ftl == "all"
            else [f.strip() for f in ftl.split(",") if f.strip()]
        )
    else:
        names = list(ftl)
    if not names:
        raise ConfigurationError("no FTL policies selected")
    for name in names:
        if name not in FTL_POLICIES:
            raise ConfigurationError(
                f"unknown FTL policy {name!r}; expected one of "
                f"{sorted(FTL_POLICIES)} or 'all'"
            )
    return names


def write_report(report: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
