"""Pareto-front extraction over auto-tuning results (Figs. 8 and 10).

The tuning figures plot compute performance (TFLOP/s) against energy
efficiency (TFLOP/J); the Pareto-optimal configurations are those not
dominated in both objectives.  Both objectives are maximised here.
"""

from __future__ import annotations

import numpy as np


def pareto_front(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Indices of the Pareto-optimal points, maximising both objectives.

    Returned indices are sorted by descending x.  Ties are kept (a point
    equal to a front member in both coordinates is also on the front).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("xs and ys must be 1-D arrays of equal length")
    # Sort by descending x, then descending y: within an equal-x group the
    # best y is seen first, so lower-y twins are correctly rejected.
    order = np.lexsort((-ys, -xs))
    front: list[int] = []
    best_y = -np.inf
    for idx in order:
        y = ys[idx]
        if y > best_y:
            front.append(int(idx))
            best_y = y
        elif y == best_y and front and xs[idx] == xs[front[-1]]:
            front.append(int(idx))
    return np.asarray(front, dtype=int)


def dominates(a: tuple[float, float], b: tuple[float, float]) -> bool:
    """True if point a dominates b (>= in both objectives, > in one)."""
    return a[0] >= b[0] and a[1] >= b[1] and (a[0] > b[0] or a[1] > b[1])


def hypervolume_2d(
    xs: np.ndarray, ys: np.ndarray, reference: tuple[float, float] = (0.0, 0.0)
) -> float:
    """Dominated hypervolume of the front w.r.t. a reference point.

    A scalar quality measure for comparing tuning runs; larger is better.
    """
    front = pareto_front(xs, ys)
    if front.size == 0:
        return 0.0
    pts = sorted(
        ((float(xs[i]), float(ys[i])) for i in front), key=lambda p: -p[0]
    )
    volume = 0.0
    prev_y = reference[1]
    for x, y in pts:
        if x <= reference[0] or y <= prev_y:
            continue
        volume += (x - reference[0]) * (y - prev_y)
        prev_y = y
    return volume
