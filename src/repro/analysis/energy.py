"""Energy integration and power-trace feature extraction.

Used by the GPU case studies (Fig. 7): integrate energy over a window,
find where a kernel starts and stops from the power trace alone, and
extract features like the initial power spike, ramp, and idle-return time
that the paper's annotated traces highlight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError


def integrate_energy(times: np.ndarray, watts: np.ndarray) -> float:
    """Trapezoid-rule energy (J) of a sampled power trace."""
    times = np.asarray(times, dtype=float)
    watts = np.asarray(watts, dtype=float)
    if times.size != watts.size:
        raise MeasurementError("times and watts must have equal length")
    if times.size < 2:
        raise MeasurementError("need at least two samples to integrate")
    return float(np.trapezoid(watts, times))


@dataclass(frozen=True)
class ActivityWindow:
    """A contiguous above-threshold region of a power trace."""

    start: float
    stop: float

    @property
    def duration(self) -> float:
        return self.stop - self.start


def detect_activity(
    times: np.ndarray,
    watts: np.ndarray,
    idle_watts: float | None = None,
    threshold_fraction: float = 0.25,
    min_duration: float = 0.0,
) -> list[ActivityWindow]:
    """Find regions where power rises clearly above idle.

    Args:
        times, watts: the sampled trace.
        idle_watts: idle level; estimated from the lowest decile if None.
        threshold_fraction: activity threshold as a fraction of the span
            between idle and peak power.
        min_duration: drop windows shorter than this (filters noise blips).
    """
    times = np.asarray(times, dtype=float)
    watts = np.asarray(watts, dtype=float)
    if watts.size == 0:
        return []
    if idle_watts is None:
        idle_watts = float(np.percentile(watts, 10))
    peak = float(watts.max())
    if peak <= idle_watts:
        return []
    threshold = idle_watts + threshold_fraction * (peak - idle_watts)
    active = watts > threshold
    edges = np.diff(active.astype(np.int8))
    starts = list(np.flatnonzero(edges == 1) + 1)
    stops = list(np.flatnonzero(edges == -1) + 1)
    if active[0]:
        starts.insert(0, 0)
    if active[-1]:
        stops.append(watts.size - 1)
    windows = [
        ActivityWindow(start=float(times[a]), stop=float(times[b]))
        for a, b in zip(starts, stops)
    ]
    return [w for w in windows if w.duration >= min_duration]


def count_dips(
    values: np.ndarray,
    enter_below: float,
    exit_above: float,
    max_samples: int | None = None,
) -> int:
    """Count short excursions below a level with hysteresis.

    A dip starts when the signal falls below ``enter_below`` and is counted
    once it *recovers* above ``exit_above``.  The dead band debounces
    sensor noise chattering around a single threshold; a trailing
    excursion that never recovers (the workload's falling edge) is not a
    dip; and excursions longer than ``max_samples`` (e.g. the clock-ramp
    or power-limit-drop phases of a GPU trace) are not dips either.
    """
    if exit_above < enter_below:
        raise MeasurementError("exit level must be >= entry level")
    dips = 0
    entered_at: int | None = None
    for i, value in enumerate(np.asarray(values, dtype=float)):
        if entered_at is None and value < enter_below:
            entered_at = i
        elif entered_at is not None and value > exit_above:
            if max_samples is None or (i - entered_at) <= max_samples:
                dips += 1
            entered_at = None
    return dips


@dataclass(frozen=True)
class TraceFeatures:
    """Headline features of a GPU workload power trace (Fig. 7 insets)."""

    idle_watts: float
    peak_watts: float
    launch_watts: float  # power level right at activity start
    initial_spike_watts: float  # peak within the first part of the activity
    steady_watts: float  # median power over the second half of the activity
    ramp_time: float  # from activity start to 95 % of steady level
    idle_return_time: float  # from activity stop back to near idle
    n_dips: int  # transient dips below 90 % of steady during activity


def extract_features(
    times: np.ndarray,
    watts: np.ndarray,
    window: ActivityWindow,
    spike_window: float = 0.2,
) -> TraceFeatures:
    """Extract Fig. 7-style features for one activity window."""
    times = np.asarray(times, dtype=float)
    watts = np.asarray(watts, dtype=float)
    before = watts[times < window.start]
    idle = float(np.median(before)) if before.size else float(np.percentile(watts, 5))
    in_win = (times >= window.start) & (times <= window.stop)
    t_win = times[in_win]
    p_win = watts[in_win]
    if p_win.size == 0:
        raise MeasurementError("activity window contains no samples")
    peak = float(p_win.max())
    spike_mask = t_win <= window.start + spike_window
    spike = float(p_win[spike_mask].max()) if spike_mask.any() else peak
    second_half = p_win[t_win >= (window.start + window.stop) / 2]
    steady = float(np.median(second_half)) if second_half.size else peak

    # Ramp: first time power sustains 95 % of steady.
    at_steady = np.flatnonzero(p_win >= 0.95 * steady)
    ramp_time = float(t_win[at_steady[0]] - window.start) if at_steady.size else 0.0

    # Idle return: after the window, time until within 10 % of idle span.
    after = times > window.stop
    t_after = times[after]
    p_after = watts[after]
    idle_return = 0.0
    if t_after.size:
        near_idle = p_after <= idle + 0.1 * (steady - idle)
        hit = np.flatnonzero(near_idle)
        idle_return = float(t_after[hit[0]] - window.stop) if hit.size else float("inf")

    # Dips are short excursions below the *local* envelope: detrend with a
    # ~31 ms median filter (which tracks ramps and limit-drop phases but
    # not millisecond dips), then count recovered excursions with a
    # hysteresis band well above the sensor noise.  The last 50 ms are
    # excluded so the workload's falling edge is not miscounted.
    dt_sample = float(np.median(np.diff(t_win))) if t_win.size > 1 else 1.0
    from scipy.ndimage import median_filter

    size = max(int(0.031 / dt_sample) | 1, 3)
    baseline = median_filter(p_win, size=size, mode="nearest")
    detrended = p_win - baseline
    trimmed = detrended[t_win <= window.stop - 0.05]
    n_dips = count_dips(
        trimmed,
        enter_below=-0.08 * steady,
        exit_above=-0.03 * steady,
        max_samples=max(int(0.05 / dt_sample), 1),
    )

    launch_mask = t_win <= window.start + 0.02
    launch = float(p_win[launch_mask].mean()) if launch_mask.any() else float(p_win[0])
    return TraceFeatures(
        idle_watts=idle,
        peak_watts=peak,
        launch_watts=launch,
        initial_spike_watts=spike,
        steady_watts=steady,
        ramp_time=ramp_time,
        idle_return_time=idle_return,
        n_dips=n_dips,
    )
