"""Streaming statistics for live 20 kHz captures.

Continuous mode produces 20 000 samples per second per pair; tools that
monitor for hours (psinfo-style dashboards, the long-term stability rig)
cannot hold every sample.  :class:`StreamingStats` maintains count, mean,
variance (Welford's online algorithm — numerically stable for arbitrarily
long runs), extremes, and total energy in O(1) memory, and merges across
workers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError


@dataclass
class StreamingStats:
    """Online count / mean / variance / extremes over sample chunks."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def update(self, samples: np.ndarray) -> None:
        """Fold a chunk of samples in (Chan et al. parallel update)."""
        samples = np.asarray(samples, dtype=float)
        n = int(samples.size)
        if n == 0:
            return
        chunk_mean = float(samples.mean())
        chunk_m2 = float(((samples - chunk_mean) ** 2).sum())
        if self.count == 0:
            self.count, self.mean, self._m2 = n, chunk_mean, chunk_m2
        else:
            total = self.count + n
            delta = chunk_mean - self.mean
            self._m2 += chunk_m2 + delta**2 * self.count * n / total
            self.mean += delta * n / total
            self.count = total
        self.minimum = min(self.minimum, float(samples.min()))
        self.maximum = max(self.maximum, float(samples.max()))

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Combine with another accumulator (e.g. from a second worker)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
        else:
            total = self.count + other.count
            delta = other.mean - self.mean
            self._m2 += other._m2 + delta**2 * self.count * other.count / total
            self.mean += delta * other.count / total
            self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def variance(self) -> float:
        if self.count < 1:
            raise MeasurementError("no samples accumulated")
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def peak_to_peak(self) -> float:
        if self.count < 1:
            raise MeasurementError("no samples accumulated")
        return self.maximum - self.minimum


class StreamingPowerMonitor:
    """Per-pair streaming power statistics plus energy accumulation.

    Feed :class:`~repro.core.sources.SampleBlock` objects as they arrive;
    read statistics at any time without retaining the samples.
    """

    def __init__(self, n_pairs: int = 4) -> None:
        self.pairs = [StreamingStats() for _ in range(n_pairs)]
        self.total = StreamingStats()
        self.energy_joules = 0.0
        self._last_time: float | None = None

    def update(self, block) -> None:
        if len(block) == 0:
            return
        total_power = block.total_power()
        for pair, stats in enumerate(self.pairs):
            stats.update(block.pair_power(pair))
        self.total.update(total_power)
        times = block.times
        if self._last_time is None:
            dts = np.diff(times, prepend=times[0])
        else:
            dts = np.diff(times, prepend=self._last_time)
        self.energy_joules += float((total_power * np.maximum(dts, 0.0)).sum())
        self._last_time = float(times[-1])
