"""Spectral analysis of power captures.

Two uses in this reproduction: verifying the transducer-noise correlation
model (the OU process has a single-pole spectrum whose corner frequency is
the modelled noise bandwidth), and locating periodic workload structure
(e.g. the 100 Hz square modulation of Fig. 5, or GPU wave periodicity) in
a capture without marker information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError


@dataclass(frozen=True)
class PowerSpectrum:
    """One-sided Welch power spectral density."""

    frequencies: np.ndarray  # Hz
    density: np.ndarray  # W^2 / Hz
    sample_rate_hz: float

    def dominant_frequency(self, min_hz: float = 0.0) -> float:
        """Frequency of the largest spectral peak above ``min_hz``."""
        mask = self.frequencies >= min_hz
        if not mask.any():
            raise MeasurementError("no bins above the requested frequency")
        idx = np.argmax(self.density[mask])
        return float(self.frequencies[mask][idx])

    def corner_frequency(self) -> float:
        """-3 dB corner of a low-pass-shaped spectrum.

        Estimates the plateau from the lowest decade and returns the first
        frequency where the density falls below half the plateau.
        """
        if self.frequencies.size < 8:
            raise MeasurementError("spectrum too short for a corner estimate")
        plateau_bins = max(self.frequencies.size // 10, 2)
        plateau = float(np.median(self.density[1 : plateau_bins + 1]))
        below = np.flatnonzero(self.density < plateau / 2.0)
        below = below[below > plateau_bins]
        if below.size == 0:
            raise MeasurementError("spectrum shows no corner within the band")
        return float(self.frequencies[below[0]])


def welch_psd(
    samples: np.ndarray, sample_rate_hz: float, segment: int = 4096
) -> PowerSpectrum:
    """Welch-averaged one-sided PSD with a Hann window.

    Args:
        samples: the capture (detrended internally by mean removal).
        sample_rate_hz: the capture's sampling rate.
        segment: samples per Welch segment (50 % overlap).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size < 16:
        raise MeasurementError("need at least 16 samples for a spectrum")
    segment = int(min(segment, samples.size))
    window = np.hanning(segment)
    norm = sample_rate_hz * (window**2).sum()
    step = max(segment // 2, 1)
    acc = None
    count = 0
    data = samples - samples.mean()
    for start in range(0, data.size - segment + 1, step):
        chunk = data[start : start + segment] * window
        spectrum = np.abs(np.fft.rfft(chunk)) ** 2 / norm
        acc = spectrum if acc is None else acc + spectrum
        count += 1
    if acc is None:  # capture shorter than one segment cannot happen here
        raise MeasurementError("no complete Welch segment")
    density = acc / count
    density[1:-1] *= 2.0  # one-sided
    freqs = np.fft.rfftfreq(segment, d=1.0 / sample_rate_hz)
    return PowerSpectrum(
        frequencies=freqs, density=density, sample_rate_hz=sample_rate_hz
    )
