"""Noise versus effective sampling rate (the paper's Table II).

Averaging blocks of 20 kHz samples trades time resolution for noise; the
paper tabulates min / max / peak-to-peak / standard deviation of the power
error after reducing a 128 k-sample capture to 10, 5, 1, and 0.5 kHz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.stats import block_average, downsample_rate, summarize

#: The effective sampling rates reported in Table II, in kHz.
TABLE2_RATES_KHZ = (20.0, 10.0, 5.0, 1.0, 0.5)


@dataclass(frozen=True)
class AveragingRow:
    """One row of the averaging table for one load point."""

    rate_khz: float
    minimum: float
    maximum: float
    peak_to_peak: float
    std: float


def averaging_table(
    power_samples: np.ndarray,
    base_rate_hz: float,
    rates_khz: tuple[float, ...] = TABLE2_RATES_KHZ,
) -> list[AveragingRow]:
    """Reduce a power capture to each target rate and summarise it.

    Args:
        power_samples: instantaneous power at the base rate, watts.
        base_rate_hz: the capture's sampling rate (20 kHz on the device).
        rates_khz: effective rates to evaluate, highest first.

    Returns:
        One :class:`AveragingRow` per requested rate.
    """
    rows = []
    for rate_khz in rates_khz:
        block = downsample_rate(base_rate_hz, rate_khz * 1e3)
        summary = summarize(block_average(power_samples, block))
        rows.append(
            AveragingRow(
                rate_khz=rate_khz,
                minimum=summary.minimum,
                maximum=summary.maximum,
                peak_to_peak=summary.peak_to_peak,
                std=summary.std,
            )
        )
    return rows
