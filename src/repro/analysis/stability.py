"""Long-term stability statistics (the paper's Section IV-B).

The paper samples 128 k-sample windows every 15 minutes for 50 hours at a
constant 7.5 A load and reports the fluctuation of the window averages
(+-0.09 W observed), concluding that one calibration at production time
suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError


@dataclass(frozen=True)
class StabilityPoint:
    """Summary of one measurement window in a long-term run."""

    time_hours: float
    mean: float
    minimum: float
    maximum: float


@dataclass(frozen=True)
class StabilityStatistics:
    """Aggregate drift statistics over all windows."""

    n_windows: int
    grand_mean: float
    mean_fluctuation: float  # max |window mean - grand mean|
    mean_span: float  # max window mean - min window mean
    extreme_span: float  # max of maxima - min of minima

    @property
    def requires_recalibration(self) -> bool:
        """The paper's criterion: drift well below the noise floor."""
        return self.mean_fluctuation > 0.5


def stability_statistics(points: list[StabilityPoint]) -> StabilityStatistics:
    """Aggregate per-window summaries into drift statistics."""
    if not points:
        raise MeasurementError("no stability windows to analyse")
    means = np.array([p.mean for p in points])
    grand = float(means.mean())
    return StabilityStatistics(
        n_windows=len(points),
        grand_mean=grand,
        mean_fluctuation=float(np.abs(means - grand).max()),
        mean_span=float(means.max() - means.min()),
        extreme_span=float(
            max(p.maximum for p in points) - min(p.minimum for p in points)
        ),
    )
