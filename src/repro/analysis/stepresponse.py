"""Step-response metrics (the paper's Fig. 5).

The electronic load steps between two currents; the sensor's observed
response characterises how well PowerSensor3 resolves power transients
such as GPU kernel starts.  At 20 kHz the sample interval (50 us), not the
300 kHz analog bandwidth, dominates the observed rise time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError


@dataclass(frozen=True)
class StepMetrics:
    """Characterisation of one observed step."""

    edge_time: float  # time of 50 % crossing
    rise_time: float  # 10 % -> 90 % duration
    settle_time: float  # time from edge until within band of final value
    low_level: float
    high_level: float

    @property
    def amplitude(self) -> float:
        return self.high_level - self.low_level


def _crossing_time(times: np.ndarray, values: np.ndarray, level: float) -> float:
    """First time the signal crosses ``level`` upward, linearly interpolated."""
    above = values >= level
    idx = np.flatnonzero(~above[:-1] & above[1:])
    if idx.size == 0:
        raise MeasurementError(f"signal never crosses level {level:.3f}")
    i = int(idx[0])
    v0, v1 = values[i], values[i + 1]
    if v1 == v0:
        return float(times[i + 1])
    frac = (level - v0) / (v1 - v0)
    return float(times[i] + frac * (times[i + 1] - times[i]))


def measure_step(
    times: np.ndarray,
    values: np.ndarray,
    settle_band: float = 0.05,
) -> StepMetrics:
    """Measure a single rising step in a (time, value) capture.

    Low/high levels are estimated from the first and last 10 % of the
    capture, so the window should contain exactly one rising edge with
    settled plateaus on both sides.

    Raises:
        MeasurementError: if no rising edge is present.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size < 10:
        raise MeasurementError("need at least 10 samples to measure a step")
    n_edge = max(times.size // 10, 2)
    low = float(np.median(values[:n_edge]))
    high = float(np.median(values[-n_edge:]))
    if high <= low:
        raise MeasurementError("capture does not contain a rising step")
    amplitude = high - low
    t10 = _crossing_time(times, values, low + 0.1 * amplitude)
    t50 = _crossing_time(times, values, low + 0.5 * amplitude)
    t90 = _crossing_time(times, values, low + 0.9 * amplitude)

    inside = np.abs(values - high) <= settle_band * amplitude
    settle_time = 0.0
    # Last sample outside the band after the edge determines settling.
    after_edge = times >= t50
    outside_after = np.flatnonzero(after_edge & ~inside)
    if outside_after.size:
        last_outside = int(outside_after[-1])
        if last_outside + 1 < times.size:
            settle_time = float(times[last_outside + 1] - t50)
        else:
            raise MeasurementError("signal does not settle within the capture")
    return StepMetrics(
        edge_time=t50,
        rise_time=t90 - t10,
        settle_time=max(settle_time, 0.0),
        low_level=low,
        high_level=high,
    )


def falling_to_rising(values: np.ndarray) -> np.ndarray:
    """Mirror a falling-step capture so :func:`measure_step` applies."""
    return -np.asarray(values, dtype=float)
