"""Worst-case accuracy derivation (the paper's Table I).

The paper computes the power measurement error from the voltage and
current errors via

    E_p = sqrt((U * E_i)^2 + (I * E_u)^2 + (E_i * E_u)^2)

where E_i and E_u are the worst-case (3 sigma) current and voltage reading
errors: ADC quantisation noise combined with the transducer's inherent
noise.  This module derives E_i, E_u, and E_p from the physical constants
in :data:`repro.hardware.modules.MODULE_CATALOG`; the table1 experiment
checks the result against the published numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.modules import ModuleSpec

#: Worst-case errors are quoted at 3 sigma of the combined noise.
WORST_CASE_SIGMAS = 3.0


def quantization_rms(lsb: float) -> float:
    """RMS of uniform quantisation noise for a given input-referred LSB."""
    return lsb / math.sqrt(12.0)


def current_error(spec: ModuleSpec, sigmas: float = WORST_CASE_SIGMAS) -> float:
    """Worst-case current reading error E_i in amperes."""
    q = quantization_rms(spec.current_lsb_a)
    sigma = math.hypot(spec.current_noise_rms_a, q)
    return sigmas * sigma


def voltage_error(spec: ModuleSpec, sigmas: float = WORST_CASE_SIGMAS) -> float:
    """Worst-case voltage reading error E_u in volts."""
    q = quantization_rms(spec.voltage_lsb_v)
    sigma = math.hypot(spec.voltage_noise_rms_v, q)
    return sigmas * sigma


def power_error(u: float, i: float, e_u: float, e_i: float) -> float:
    """The paper's error-propagation formula for the power reading."""
    return math.sqrt((u * e_i) ** 2 + (i * e_u) ** 2 + (e_i * e_u) ** 2)


@dataclass(frozen=True)
class ModuleAccuracy:
    """One row of Table I: derived worst-case accuracy of a module."""

    spec: ModuleSpec
    voltage_error_v: float
    current_error_a: float
    power_error_w: float

    @property
    def label(self) -> str:
        return (
            f"{self.spec.nominal_voltage_v:g} V / {self.spec.max_current_a:g} A"
        )


def worst_case_accuracy(
    spec: ModuleSpec, sigmas: float = WORST_CASE_SIGMAS
) -> ModuleAccuracy:
    """Derive a module's Table I row from its physical constants.

    The power error is evaluated at the module's nominal voltage and
    maximum current — the worst case, since both error terms scale with
    the operating point.
    """
    e_i = current_error(spec, sigmas)
    e_u = voltage_error(spec, sigmas)
    e_p = power_error(spec.nominal_voltage_v, spec.max_current_a, e_u, e_i)
    return ModuleAccuracy(
        spec=spec,
        voltage_error_v=e_u,
        current_error_a=e_i,
        power_error_w=e_p,
    )
