"""Measurement analysis: the math behind the paper's evaluation section.

* :mod:`repro.analysis.accuracy` — worst-case error propagation (Table I).
* :mod:`repro.analysis.averaging` — noise vs. effective sampling rate
  (Table II).
* :mod:`repro.analysis.stepresponse` — step/transient metrics (Fig. 5).
* :mod:`repro.analysis.stability` — long-term drift statistics (Section IV-B).
* :mod:`repro.analysis.energy` — energy integration and GPU-trace phase
  detection (Fig. 7).
* :mod:`repro.analysis.pareto` — Pareto fronts over tuning results
  (Figs. 8/10).
"""

from repro.analysis.accuracy import (
    ModuleAccuracy,
    power_error,
    worst_case_accuracy,
)
from repro.analysis.averaging import AveragingRow, averaging_table
from repro.analysis.energy import detect_activity, integrate_energy
from repro.analysis.pareto import pareto_front
from repro.analysis.stability import StabilityPoint, stability_statistics
from repro.analysis.spectrum import PowerSpectrum, welch_psd
from repro.analysis.stepresponse import StepMetrics, measure_step
from repro.analysis.streaming import StreamingPowerMonitor, StreamingStats

__all__ = [
    "ModuleAccuracy",
    "power_error",
    "worst_case_accuracy",
    "AveragingRow",
    "averaging_table",
    "integrate_energy",
    "detect_activity",
    "pareto_front",
    "StabilityPoint",
    "stability_statistics",
    "StepMetrics",
    "measure_step",
    "PowerSpectrum",
    "welch_psd",
    "StreamingStats",
    "StreamingPowerMonitor",
]
