"""Common machinery for vendor power-API models.

Every vendor sensor in the paper's comparison is a *polled* interface over
an internal refresh loop: the device updates its reading at some rate
(10 Hz for NVML, ~1 ms for AMD SMI, ~0.1 s for the Jetson INA rail
monitor), and a host poll returns the value of the most recent internal
update.  :class:`PolledSensor` implements that structure over a
ground-truth power trace; subclasses choose the refresh period, the
per-update transform (instantaneous vs. windowed average) and the error
model.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngStream
from repro.dut.base import PowerTrace


def trace_power_at(trace: PowerTrace, times: np.ndarray) -> np.ndarray:
    """Ground-truth power at arbitrary times (sample-and-hold lookup)."""
    times = np.asarray(times, dtype=float)
    idx = np.searchsorted(trace.times, times, side="right") - 1
    idx = np.clip(idx, 0, trace.times.size - 1)
    return trace.watts[idx]


def trace_window_mean(trace: PowerTrace, ends: np.ndarray, window: float) -> np.ndarray:
    """Mean ground-truth power over ``[end - window, end]`` for each end."""
    ends = np.asarray(ends, dtype=float)
    dts = np.diff(trace.times, append=trace.times[-1] + 1e-9)
    csum = np.concatenate(([0.0], np.cumsum(trace.watts * dts)))
    ctime = np.concatenate(([trace.times[0]], trace.times + dts))

    def integral(ts: np.ndarray) -> np.ndarray:
        return np.interp(ts, ctime, csum)

    starts = np.maximum(ends - window, trace.times[0])
    spans = np.maximum(ends - starts, 1e-12)
    return (integral(ends) - integral(starts)) / spans


class PolledSensor:
    """A sensor with an internal refresh loop and poll semantics."""

    def __init__(
        self,
        trace: PowerTrace,
        update_period_s: float,
        rng: RngStream,
        scale_error: float = 0.0,
        jitter_watts: float = 0.0,
        window_s: float = 0.0,
        phase_s: float = 0.0,
    ) -> None:
        if update_period_s <= 0:
            raise ValueError("update period must be positive")
        self.trace = trace
        self.update_period_s = float(update_period_s)
        self.window_s = float(window_s)
        self.scale = 1.0 + float(scale_error)
        self.jitter_watts = float(jitter_watts)
        self.phase_s = float(phase_s)
        self._rng = rng
        self._update_times, self._update_values = self._refresh_timeline()

    @property
    def update_rate_hz(self) -> float:
        return 1.0 / self.update_period_s

    def _refresh_timeline(self) -> tuple[np.ndarray, np.ndarray]:
        t0 = float(self.trace.times[0])
        t1 = float(self.trace.times[-1])
        n = max(int(np.ceil((t1 - t0) / self.update_period_s)) + 1, 1)
        updates = t0 + self.phase_s + np.arange(n) * self.update_period_s
        if self.window_s > 0:
            values = trace_window_mean(self.trace, updates, self.window_s)
        else:
            values = trace_power_at(self.trace, updates)
        values = values * self.scale
        if self.jitter_watts > 0:
            values = values + self._rng.normal(0.0, self.jitter_watts, size=n)
        return updates, np.maximum(values, 0.0)

    def read(self, query_times: np.ndarray) -> np.ndarray:
        """Polled power readings (W) at the query times."""
        query_times = np.asarray(query_times, dtype=float)
        idx = np.searchsorted(self._update_times, query_times, side="right") - 1
        idx = np.clip(idx, 0, self._update_times.size - 1)
        return self._update_values[idx]

    def energy(self, start: float, stop: float, poll_rate_hz: float) -> float:
        """Energy a host would estimate by polling over [start, stop] (J).

        Rectangle integration of polled readings — exactly what software
        energy meters built on these APIs do.
        """
        if stop <= start:
            raise ValueError("stop must be after start")
        n = max(int((stop - start) * poll_rate_hz), 1)
        dt = (stop - start) / n
        polls = start + dt * (np.arange(n) + 0.5)
        return float(self.read(polls).sum() * dt)
