"""Vendor power-API models: the baselines PowerSensor3 is compared against.

Each model wraps a ground-truth :class:`~repro.dut.base.PowerTrace` and
reproduces the respective API's polling semantics, refresh rate, and
documented accuracy defects (see module docstrings for the citations).
"""

from repro.vendor.base import PolledSensor, trace_power_at, trace_window_mean
from repro.vendor.jetson_ina import JetsonPowerMonitor
from repro.vendor.nvml import NvmlDevice
from repro.vendor.rapl import RaplDomain
from repro.vendor.rocm_smi import AmdSmiDevice, RocmSmiDevice

__all__ = [
    "PolledSensor",
    "trace_power_at",
    "trace_window_mean",
    "NvmlDevice",
    "RocmSmiDevice",
    "AmdSmiDevice",
    "JetsonPowerMonitor",
    "RaplDomain",
]
