"""Intel RAPL model: CPU package energy counters.

RAPL exposes cumulative energy counters (microjoules) that wrap at 32
bits, refreshed at ~1 kHz (Khan et al., TOMPECS'18; paper Section II).
PMT's CPU backend reads these counters; the model integrates a package
power trace into a wrapping counter with the same semantics.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngStream
from repro.dut.base import PowerTrace
from repro.vendor.base import trace_window_mean

RAPL_UPDATE_PERIOD_S = 0.001
RAPL_COUNTER_WRAP_UJ = 1 << 32


class RaplDomain:
    """One RAPL domain (e.g. package-0) over a ground-truth trace."""

    def __init__(
        self,
        trace: PowerTrace,
        rng: RngStream | None = None,
        name: str = "package-0",
    ) -> None:
        self.name = name
        self.trace = trace
        rng = rng or RngStream(0, "rapl")
        self._scale = 1.0 + float(rng.normal(0.0, 0.015))

    def _cumulative_joules(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        t0 = float(self.trace.times[0])
        means = trace_window_mean(self.trace, times, np.maximum(times - t0, 1e-9))
        return means * (times - t0) * self._scale

    def energy_uj(self, times: np.ndarray) -> np.ndarray:
        """The wrapping microjoule counter as read at the given times.

        Counter updates are quantised to the 1 kHz refresh.
        """
        times = np.asarray(times, dtype=float)
        quantised = np.floor(times / RAPL_UPDATE_PERIOD_S) * RAPL_UPDATE_PERIOD_S
        uj = self._cumulative_joules(quantised) * 1e6
        return np.mod(uj, RAPL_COUNTER_WRAP_UJ).astype(np.int64)

    @staticmethod
    def counter_delta_j(first_uj: int, second_uj: int) -> float:
        """Energy between two counter reads, unwrapping one wrap if needed."""
        delta = (int(second_uj) - int(first_uj)) % RAPL_COUNTER_WRAP_UJ
        return delta * 1e-6
