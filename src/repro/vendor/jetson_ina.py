"""Jetson built-in power monitor model (INA3221-style rail monitor).

The paper names two limitations of the Jetson AGX Orin's built-in sensor
(Section V-B): its time resolution is very limited (~0.1 s), and it only
covers the SoC *module* — the carrier board's consumption is invisible.
Both are modelled: the sensor polls the module trace only, at 10 Hz.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngStream
from repro.dut.base import PowerTrace
from repro.vendor.base import PolledSensor

#: Practical refresh interval of the tegrastats/INA path.
JETSON_UPDATE_PERIOD_S = 0.1


class JetsonPowerMonitor:
    """The devkit's built-in rail monitor (module power only)."""

    def __init__(self, module_trace: PowerTrace, rng: RngStream | None = None) -> None:
        rng = rng or RngStream(0, "jetson-ina")
        self._sensor = PolledSensor(
            module_trace,
            JETSON_UPDATE_PERIOD_S,
            rng,
            scale_error=float(rng.normal(0.0, 0.02)),
            jitter_watts=0.05,
        )

    def module_power(self, times: np.ndarray) -> np.ndarray:
        """Module (not total-system) power readings, W."""
        return self._sensor.read(times)

    def energy(self, start: float, stop: float, poll_rate_hz: float = 100.0) -> float:
        return self._sensor.energy(start, stop, poll_rate_hz)
