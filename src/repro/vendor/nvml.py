"""NVML power-reading model (NVIDIA's on-board sensor API).

Models the two NVML interfaces the paper compares against in Fig. 7a:

* ``instantaneous`` — available since driver 530: an unaveraged reading,
  but refreshed only at ~10 Hz, so fine-grained behaviour (inter-wave
  power dips, short kernels) is invisible.
* ``average`` (the 'legacy' field) — a ~1 s sliding-window average
  refreshed at ~10 Hz; adequate only for coarse energy estimates.

Per Yang et al. (SC'24), readings additionally carry a per-board scale
error; the model draws one per instance (default ±4 % spread).
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngStream
from repro.dut.base import PowerTrace
from repro.vendor.base import PolledSensor

#: NVML refresh interval observed on current drivers (~10 Hz).
NVML_UPDATE_PERIOD_S = 0.1
#: Window of the legacy averaged power field.
NVML_AVERAGE_WINDOW_S = 1.0


class NvmlDevice:
    """NVML handle for one (simulated) NVIDIA GPU's power trace."""

    def __init__(
        self,
        trace: PowerTrace,
        rng: RngStream | None = None,
        scale_error: float | None = None,
    ) -> None:
        rng = rng or RngStream(0, "nvml")
        if scale_error is None:
            scale_error = float(rng.normal(0.0, 0.04))
        self.scale_error = scale_error
        phase = float(rng.uniform(0.0, NVML_UPDATE_PERIOD_S))
        self.instantaneous = PolledSensor(
            trace,
            NVML_UPDATE_PERIOD_S,
            rng.child("inst"),
            scale_error=scale_error,
            jitter_watts=0.4,
            phase_s=phase,
        )
        self.average = PolledSensor(
            trace,
            NVML_UPDATE_PERIOD_S,
            rng.child("avg"),
            scale_error=scale_error,
            jitter_watts=0.1,
            window_s=NVML_AVERAGE_WINDOW_S,
            phase_s=phase,
        )

    def power_usage(self, times: np.ndarray, mode: str = "instantaneous") -> np.ndarray:
        """Polled power readings, W.  ``mode``: 'instantaneous' or 'average'."""
        if mode == "instantaneous":
            return self.instantaneous.read(times)
        if mode == "average":
            return self.average.read(times)
        raise ValueError(f"unknown NVML mode {mode!r}")

    def energy(
        self,
        start: float,
        stop: float,
        mode: str = "instantaneous",
        poll_rate_hz: float = 100.0,
    ) -> float:
        sensor = self.instantaneous if mode == "instantaneous" else self.average
        return sensor.energy(start, stop, poll_rate_hz)

    def total_energy_consumption_mj(self, times: np.ndarray) -> np.ndarray:
        """The ``nvmlDeviceGetTotalEnergyConsumption`` counter, millijoules.

        A cumulative counter integrated by the driver from its own ~10 Hz
        samples (so it inherits the scale error but not the host's polling
        granularity).  This is what Kernel Tuner's NVML observer reads.
        """
        times = np.asarray(times, dtype=float)
        sensor = self.instantaneous
        update_times = sensor._update_times
        update_values = sensor._update_values
        dts = np.diff(update_times, append=update_times[-1])
        cumulative = np.concatenate(([0.0], np.cumsum(update_values * dts)))
        idx = np.clip(
            np.searchsorted(update_times, times, side="right"), 0, len(cumulative) - 1
        )
        return (cumulative[idx] * 1e3).astype(np.int64)
