"""ROCm SMI and AMD SMI power-reading models.

The paper finds the W7700's built-in sensor closely matches PowerSensor3
in both time and amplitude, and that the older ROCm SMI interface and its
successor AMD SMI return *identical* data despite different programming
interfaces (Section V-A1).  Both classes therefore share one underlying
polled sensor with a fast (~1 ms) refresh and a small scale error.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import RngStream
from repro.dut.base import PowerTrace
from repro.vendor.base import PolledSensor

#: AMD's on-die telemetry refreshes around every millisecond.
AMD_UPDATE_PERIOD_S = 0.001


class _AmdTelemetry(PolledSensor):
    def __init__(self, trace: PowerTrace, rng: RngStream) -> None:
        super().__init__(
            trace,
            AMD_UPDATE_PERIOD_S,
            rng,
            scale_error=float(rng.normal(0.0, 0.01)),
            jitter_watts=0.3,
        )


class RocmSmiDevice:
    """The ROCm SMI interface over the shared telemetry."""

    def __init__(self, trace: PowerTrace, rng: RngStream | None = None) -> None:
        self._telemetry = _AmdTelemetry(trace, rng or RngStream(0, "rocm"))

    @property
    def telemetry(self) -> PolledSensor:
        return self._telemetry

    def average_socket_power(self, times: np.ndarray) -> np.ndarray:
        return self._telemetry.read(times)

    def energy(self, start: float, stop: float, poll_rate_hz: float = 1000.0) -> float:
        return self._telemetry.energy(start, stop, poll_rate_hz)


class AmdSmiDevice:
    """The newer AMD SMI interface: different API, identical data."""

    def __init__(self, rocm: RocmSmiDevice) -> None:
        self._telemetry = rocm.telemetry

    def socket_power_info(self, times: np.ndarray) -> dict[str, np.ndarray]:
        watts = self._telemetry.read(times)
        return {"current_socket_power": watts, "power_limit": np.full_like(watts, 150.0)}

    def energy(self, start: float, stop: float, poll_rate_hz: float = 1000.0) -> float:
        return self._telemetry.energy(start, stop, poll_rate_hz)
