"""Sample statistics used by the accuracy experiments.

The paper reports min / max / peak-to-peak / standard deviation of 128 k
sample windows (Table II, Fig. 4), before and after block averaging to a
lower effective sampling rate.  These helpers implement exactly those
reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one measurement window."""

    count: int
    mean: float
    minimum: float
    maximum: float
    std: float

    @property
    def peak_to_peak(self) -> float:
        return self.maximum - self.minimum

    def shifted(self, offset: float) -> "SampleSummary":
        """The same summary with ``offset`` subtracted from location stats."""
        return SampleSummary(
            count=self.count,
            mean=self.mean - offset,
            minimum=self.minimum - offset,
            maximum=self.maximum - offset,
            std=self.std,
        )


def summarize(samples: np.ndarray) -> SampleSummary:
    """Compute a :class:`SampleSummary` of a non-empty 1-D array."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("cannot summarize an empty sample window")
    return SampleSummary(
        count=int(samples.size),
        mean=float(samples.mean()),
        minimum=float(samples.min()),
        maximum=float(samples.max()),
        std=float(samples.std(ddof=0)),
    )


def block_average(samples: np.ndarray, block: int) -> np.ndarray:
    """Average consecutive blocks of ``block`` samples.

    A trailing partial block is dropped, mirroring how the paper reduces a
    20 kHz capture to lower effective rates.  ``block=1`` returns a view of
    the input.
    """
    samples = np.asarray(samples, dtype=float)
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    if block == 1:
        return samples
    n_blocks = samples.size // block
    if n_blocks == 0:
        raise ValueError(
            f"window of {samples.size} samples too short for block size {block}"
        )
    return samples[: n_blocks * block].reshape(n_blocks, block).mean(axis=1)


def downsample_rate(rate_hz: float, target_hz: float) -> int:
    """Block size that reduces ``rate_hz`` to approximately ``target_hz``."""
    if target_hz <= 0 or rate_hz <= 0:
        raise ValueError("rates must be positive")
    if target_hz > rate_hz:
        raise ValueError(f"target rate {target_hz} exceeds source rate {rate_hz}")
    return max(int(round(rate_hz / target_hz)), 1)


def rolling_mean(samples: np.ndarray, window: int) -> np.ndarray:
    """Centred-start rolling mean with a ramp-up for the first ``window`` points.

    Used by the vendor-API models that report windowed-average power.
    """
    samples = np.asarray(samples, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or samples.size == 0:
        return samples.copy()
    csum = np.concatenate(([0.0], np.cumsum(samples)))
    out = np.empty_like(samples)
    idx = np.arange(1, samples.size + 1)
    lo = np.maximum(idx - window, 0)
    out = (csum[idx] - csum[lo]) / (idx - lo)
    return out
