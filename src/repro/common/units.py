"""Unit helpers and physical constants used throughout the library.

The library keeps all internal quantities in SI base units (seconds, volts,
amperes, watts, joules, bytes).  These helpers exist to make call sites that
start from other units explicit and readable, e.g. ``microseconds(50)``
instead of a bare ``50e-6``.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: USB 1.1 full-speed line rate of the Black Pill module, bits per second.
USB_FULL_SPEED_BPS = 12_000_000

#: Default PowerSensor3 output sample rate after firmware averaging.
DEFAULT_SAMPLE_RATE_HZ = 20_000.0


def volts(value: float) -> float:
    """Identity helper marking a value as volts at the call site."""
    return float(value)


def amps(value: float) -> float:
    """Identity helper marking a value as amperes at the call site."""
    return float(value)


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3


def joules_from_watt_seconds(watts: float, seconds: float) -> float:
    """Energy of a constant power draw over a duration."""
    return float(watts) * float(seconds)


def mean_power(joules: float, seconds: float) -> float:
    """Average power of an energy quantity over a duration.

    Raises:
        ZeroDivisionError: if ``seconds`` is zero.
    """
    return float(joules) / float(seconds)


def mbit_per_s(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return float(value) * 1e6


def format_si(value: float, unit: str, precision: int = 3) -> str:
    """Format a value with an SI prefix, e.g. ``format_si(0.02, 'W')`` -> ``'20 mW'``.

    Chooses among the prefixes from pico to tera; values of exactly zero are
    rendered without a prefix.
    """
    prefixes = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ]
    if value == 0:
        return f"0 {unit}"
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.{precision}g} {prefix}{unit}"
    scale, prefix = prefixes[-1]
    return f"{value / scale:.{precision}g} {prefix}{unit}"
