"""Virtual time base shared by the simulated device and its host.

The real PowerSensor3 runs against wall-clock time; the simulation instead
owns a :class:`VirtualClock` that only advances when the firmware produces
samples.  Experiments can therefore simulate hours of measurement in
milliseconds of host CPU time, while timestamp arithmetic (device
microsecond counters, marker timing, energy integration) stays exact.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing simulated clock.

    Time is kept as a float in seconds plus a monotonically increasing
    integer tick count so that callers needing exact sample indices do not
    accumulate float rounding.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._start = float(start)
        self._ticks = 0
        self._tick_period = 0.0
        self._offset = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._start + self._offset + self._ticks * self._tick_period

    def configure_ticks(self, period: float) -> None:
        """Set the tick period (seconds) used by :meth:`tick`.

        Reconfiguring folds the accumulated tick time into a fixed offset so
        that ``now`` never jumps backwards.
        """
        if period < 0:
            raise ValueError(f"tick period must be >= 0, got {period}")
        self._offset += self._ticks * self._tick_period
        self._ticks = 0
        self._tick_period = float(period)

    def tick(self, count: int = 1) -> float:
        """Advance by ``count`` ticks and return the new time."""
        if count < 0:
            raise ValueError(f"cannot tick backwards (count={count})")
        self._ticks += count
        return self.now

    def advance(self, seconds: float) -> float:
        """Advance by an arbitrary duration in seconds and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance backwards ({seconds} s)")
        self._offset += float(seconds)
        return self.now

    def micros(self) -> int:
        """Simulated microsecond counter (as the STM32 firmware reports it)."""
        return int(round(self.now * 1e6))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.now:.9f})"
