"""Shared low-level utilities: units, clocks, RNG streams, noise, statistics.

Everything in this package is deliberately dependency-free (numpy only) so
that every other subpackage can build on it without import cycles.
"""

from repro.common.clock import VirtualClock
from repro.common.errors import (
    CalibrationError,
    DeviceError,
    ProtocolError,
    ReproError,
    ServerError,
    TransportError,
)
from repro.common.noise import OrnsteinUhlenbeckNoise, WhiteNoise
from repro.common.retry import DEFAULT_RECOVERY, RecoveryPolicy
from repro.common.rng import RngStream
from repro.common.stats import SampleSummary, block_average, summarize
from repro.common.units import (
    KIB,
    MIB,
    GIB,
    amps,
    joules_from_watt_seconds,
    mean_power,
    microseconds,
    milliseconds,
    volts,
)

__all__ = [
    "VirtualClock",
    "ReproError",
    "DeviceError",
    "ProtocolError",
    "TransportError",
    "CalibrationError",
    "ServerError",
    "RecoveryPolicy",
    "DEFAULT_RECOVERY",
    "OrnsteinUhlenbeckNoise",
    "WhiteNoise",
    "RngStream",
    "SampleSummary",
    "block_average",
    "summarize",
    "KIB",
    "MIB",
    "GIB",
    "amps",
    "volts",
    "microseconds",
    "milliseconds",
    "joules_from_watt_seconds",
    "mean_power",
]
