"""Deterministic, hierarchical random-number streams.

Every stochastic component of the simulation (each sensor's noise, each
DUT's workload variability, the SSD's garbage collector...) draws from its
own named :class:`RngStream`.  Streams are derived from a root seed plus a
string path, so adding a new noise source never perturbs the sequence seen
by existing ones — experiment outputs stay reproducible across refactors.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _derive_seed(root_seed: int, path: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{path}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A named random stream derived from a root seed.

    Thin wrapper over :class:`numpy.random.Generator` that adds hierarchical
    child-stream derivation.
    """

    def __init__(self, seed: int = 0, path: str = "root") -> None:
        self.seed = int(seed)
        self.path = path
        self._gen = np.random.default_rng(_derive_seed(self.seed, path))

    def child(self, name: str) -> "RngStream":
        """Derive an independent stream for a sub-component."""
        return RngStream(self.seed, f"{self.path}/{name}")

    @property
    def generator(self) -> np.random.Generator:
        return self._gen

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        return self._gen.normal(loc, scale, size)

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._gen.uniform(low, high, size)

    def integers(self, low: int, high: int | None = None, size=None):
        return self._gen.integers(low, high, size)

    def choice(self, values, size=None, p=None):
        return self._gen.choice(values, size=size, p=p)

    def exponential(self, scale: float = 1.0, size=None):
        return self._gen.exponential(scale, size)

    def shuffle(self, values) -> None:
        self._gen.shuffle(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStream(seed={self.seed}, path={self.path!r})"
