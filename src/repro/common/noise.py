"""Band-limited and white Gaussian noise sources.

The PowerSensor3 sensor front-ends are band-limited analog parts: the
MLX91221 Hall current sensor has a 300 kHz bandwidth and the ACPL-C87B
voltage sensor a 100 kHz bandwidth.  The firmware's ADC takes its six
averaged sub-samples only ~1 us apart, i.e. *within* the correlation time of
that noise, so the average reduces noise by less than sqrt(6).  Modelling
the noise as an Ornstein-Uhlenbeck (OU) process with the datasheet
bandwidth reproduces exactly this effect, which is what reconciles the
datasheet noise numbers with the measured Table II statistics in the paper.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.rng import RngStream


class WhiteNoise:
    """IID Gaussian noise with fixed standard deviation."""

    def __init__(self, sigma: float, rng: RngStream) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = float(sigma)
        self._rng = rng

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Noise values at the given sample times (times are ignored)."""
        times = np.asarray(times, dtype=float)
        if self.sigma == 0.0:
            return np.zeros_like(times)
        return self._rng.normal(0.0, self.sigma, size=times.shape)


class OrnsteinUhlenbeckNoise:
    """Stationary Gaussian noise with exponential autocorrelation.

    The process has standard deviation ``sigma`` and autocorrelation
    ``exp(-|dt| / tau)`` where ``tau = 1 / (2 * pi * bandwidth)``, matching
    a single-pole low-pass filtered white source of the given -3 dB
    bandwidth.

    The generator is *stateful*: successive calls to :meth:`sample` continue
    the process from the previous call's last value and time, so a stream
    can be produced chunk by chunk without breaking correlations.
    """

    def __init__(self, sigma: float, bandwidth_hz: float, rng: RngStream) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if bandwidth_hz <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth_hz}")
        self.sigma = float(sigma)
        self.bandwidth_hz = float(bandwidth_hz)
        self.tau = 1.0 / (2.0 * math.pi * self.bandwidth_hz)
        self._rng = rng
        self._last_time: float | None = None
        self._last_value = 0.0

    def reset(self) -> None:
        """Forget history; the next sample is drawn from the stationary law."""
        self._last_time = None
        self._last_value = 0.0

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Noise values at strictly non-decreasing sample times (seconds)."""
        times = np.asarray(times, dtype=float)
        if times.ndim != 1:
            raise ValueError("times must be a 1-D array")
        n = times.size
        if n == 0:
            return np.zeros(0)
        if self.sigma == 0.0:
            self._last_time = float(times[-1])
            self._last_value = 0.0
            return np.zeros(n)

        out = np.empty(n)
        prev_t = self._last_time
        prev_x = self._last_value

        # Decay factor between consecutive requested times.
        if prev_t is None:
            first_rho = 0.0  # draw from the stationary distribution
            prev_t = float(times[0])
        else:
            first_rho = math.exp(-max(times[0] - prev_t, 0.0) / self.tau)
        dts = np.diff(times)
        if np.any(dts < 0):
            raise ValueError("times must be non-decreasing")
        rhos = np.exp(-dts / self.tau)
        rhos = np.concatenate(([first_rho], rhos))
        innov_sigma = self.sigma * np.sqrt(np.maximum(1.0 - rhos**2, 0.0))
        innovations = self._rng.normal(0.0, 1.0, size=n) * innov_sigma

        # Sequential recurrence; chunk sizes here are modest (the vectorised
        # fast path in repro.core uses sample_fast below).
        x = prev_x
        for i in range(n):
            x = rhos[i] * x + innovations[i]
            out[i] = x

        self._last_time = float(times[-1])
        self._last_value = float(out[-1])
        return out

    def sample_uniform(self, start: float, dt: float, n: int) -> np.ndarray:
        """Vectorised sampling on a uniform grid ``start + i*dt``.

        Equivalent in distribution to :meth:`sample` on the same grid but
        O(n) with numpy scan-free vectorisation (log-space prefix trick is
        unnecessary: with constant rho the recurrence is an AR(1) filter,
        evaluated with a cumulative product formulation).
        """
        if n <= 0:
            return np.zeros(0)
        if self.sigma == 0.0:
            self._last_time = start + (n - 1) * dt
            self._last_value = 0.0
            return np.zeros(n)
        rho = math.exp(-dt / self.tau) if dt > 0 else 1.0
        if self._last_time is None:
            x0 = self._rng.normal(0.0, self.sigma)
            gap_rho = None
        else:
            gap = max(start - self._last_time, 0.0)
            gap_rho = math.exp(-gap / self.tau)
            x0 = gap_rho * self._last_value + self._rng.normal(
                0.0, self.sigma * math.sqrt(max(1.0 - gap_rho**2, 0.0))
            )
        innov_sigma = self.sigma * math.sqrt(max(1.0 - rho**2, 0.0))
        innovations = self._rng.normal(0.0, 1.0, size=n) * innov_sigma
        innovations[0] = 0.0
        out = _ar1_filter(rho, x0, innovations)
        self._last_time = start + (n - 1) * dt
        self._last_value = float(out[-1])
        return out


def _ar1_filter(rho: float, x0: float, innovations: np.ndarray) -> np.ndarray:
    """Evaluate x[i] = rho * x[i-1] + innovations[i], x[0] = x0, vectorised.

    The recurrence is a single-pole IIR filter, so ``scipy.signal.lfilter``
    evaluates it exactly in one C pass — no block-size/precision trade-off
    like the closed-form cumulative-sum formulation needs, and ~2 orders of
    magnitude faster than a Python loop for the short chunk sizes the
    firmware simulation uses.
    """
    from scipy.signal import lfilter

    n = innovations.size
    if n == 0:
        return np.empty(0)
    driven = np.array(innovations, dtype=float, copy=True)
    driven[0] = x0  # the first output is x0 exactly; innovations[0] is unused
    out = lfilter([1.0], [1.0, -rho], driven)
    return out
