"""Bounded retry-with-backoff policies shared across layers.

:class:`RecoveryPolicy` started life inside :mod:`repro.core.powersensor`
as the empty-read recovery knob; the server and transport layers reuse the
same shape for connection retries, so it lives here where neither has to
import ``core``.  The old location re-exports it for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounded retry-with-backoff for a failing operation.

    For stream reads: when a read that should have produced samples comes
    back empty (a stalled or lossy device), the caller re-reads up to
    ``max_retries`` times, widening the requested span by
    ``backoff_factor`` each attempt (capped at ``max_retry_seconds`` of
    stream time) before declaring the stream stalled.

    For connections: ``backoff_delays(initial)`` yields the sleep before
    each of the ``max_retries`` reattempts, growing by ``backoff_factor``
    and capped at ``max_retry_seconds``.
    """

    max_retries: int = 4
    backoff_factor: float = 2.0
    max_retry_seconds: float = 0.1

    def backoff_delays(self, initial: float) -> list[float]:
        """The capped geometric backoff schedule, one delay per retry."""
        delays = []
        delay = float(initial)
        for _ in range(self.max_retries):
            delays.append(min(delay, self.max_retry_seconds))
            delay *= self.backoff_factor
        return delays


#: Default policy: tolerate brief dropouts, fail within ~0.1 s of stream time.
DEFAULT_RECOVERY = RecoveryPolicy()
