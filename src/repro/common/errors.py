"""Exception hierarchy for the PowerSensor3 reproduction.

A single root (:class:`ReproError`) lets applications catch everything from
this library with one ``except`` clause, while the subclasses keep the
device / protocol / transport / calibration failure domains distinct.
"""


class ReproError(Exception):
    """Root of all exceptions raised by this library."""


class DeviceError(ReproError):
    """The simulated device refused an operation or is in a bad state."""


class ProtocolError(ReproError):
    """A byte stream could not be parsed as valid PowerSensor3 protocol."""


class TransportError(ReproError):
    """The virtual serial link failed (closed port, overflow, ...)."""


class CalibrationError(ReproError):
    """A calibration step failed or produced out-of-range corrections."""


class ConfigurationError(ReproError):
    """Invalid sensor/module/device configuration."""


class MeasurementError(ReproError):
    """A measurement could not be completed (no samples, bad interval...)."""


class ServerError(ReproError):
    """A psserve daemon or remote-client operation failed.

    Covers handshake rejections, unsupported operations on a shared
    device (e.g. writing configuration through a remote source), and a
    connection that could not be (re-)established within the retry
    budget.
    """


class StoreError(ReproError):
    """A telemetry-store file could not be read, written or trusted.

    Raised when a sealed segment or journal fails its integrity checks
    (bad magic, CRC mismatch, truncated footer, out-of-range offsets).
    The store itself never propagates this for damage it can contain —
    it quarantines the bad file and keeps serving the intact ones — so
    seeing it means a caller addressed a corrupt file directly.
    """


class StreamStalledError(MeasurementError):
    """The sample stream stopped producing data.

    Raised after the recovery policy exhausts its retries on empty reads,
    or by the realtime driver's watchdog when the pump thread makes no
    progress within its deadline.
    """
