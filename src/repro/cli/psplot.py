"""psplot: render a dump file — or a live capture — as an ASCII chart.

A convenience on top of continuous mode: visualise a 20 kHz capture in the
terminal, with markers annotated on the time axis.  (The real toolkit
leaves plotting to the user; this keeps the repository dependency-free.)

Without a dump file, psplot captures ``--seconds`` of stream from the
device the standard flags describe (``--modules``/``--dut``, ``--remote``,
``--faults``, repeatable ``--device`` specs) and plots that instead — one
chart per fleet device.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.cli.common import (
    add_device_arguments,
    build_setup,
    run_with_diagnostics,
    setup_fleet,
)
from repro.common.errors import ConfigurationError
from repro.core.dump import DumpReader
from repro.observability import MetricsRegistry, Tracer


def render_chart(
    times: np.ndarray,
    watts: np.ndarray,
    width: int = 72,
    height: int = 16,
    markers: list[tuple[float, str]] | None = None,
) -> str:
    """Render (times, watts) as an ASCII chart; returns the chart text."""
    if times.size < 2:
        return "(not enough samples to plot)"
    # Reduce to one column per character: mean, min, max per bucket.
    edges = np.linspace(times[0], times[-1], width + 1)
    idx = np.clip(np.searchsorted(edges, times, side="right") - 1, 0, width - 1)
    mean = np.zeros(width)
    lo = np.full(width, np.inf)
    hi = np.full(width, -np.inf)
    counts = np.bincount(idx, minlength=width).astype(float)
    sums = np.bincount(idx, weights=watts, minlength=width)
    occupied = counts > 0
    mean[occupied] = sums[occupied] / counts[occupied]
    np.minimum.at(lo, idx, watts)
    np.maximum.at(hi, idx, watts)
    mean[~occupied] = np.nan

    top = float(np.nanmax(hi[occupied])) if occupied.any() else 1.0
    bottom = float(np.nanmin(lo[occupied])) if occupied.any() else 0.0
    if top == bottom:
        top = bottom + 1.0
    span = top - bottom

    rows = []
    for row in range(height, 0, -1):
        level = bottom + span * (row - 0.5) / height
        cells = []
        for col in range(width):
            if not occupied[col]:
                cells.append(" ")
            elif lo[col] <= level <= hi[col]:
                near_mean = abs(mean[col] - level) <= span / height
                cells.append("#" if near_mean else "|")
            else:
                cells.append(" ")
        label = f"{level:8.1f} W |" if row in (1, height // 2, height) else " " * 10 + "|"
        rows.append(label + "".join(cells))

    axis = " " * 10 + "+" + "-" * width
    time_row = [" "] * width
    for t, char in markers or []:
        col = int((t - times[0]) / (times[-1] - times[0]) * (width - 1))
        if 0 <= col < width:
            time_row[col] = char
    footer = " " * 11 + "".join(time_row)
    span_label = (
        " " * 11 + f"{times[0]:.3f} s" + " " * max(width - 18, 1) + f"{times[-1]:.3f} s"
    )
    return "\n".join(rows + [axis, footer, span_label])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psplot",
        description="ASCII-plot a PowerSensor3 dump file or a live capture.",
    )
    parser.add_argument(
        "dump",
        nargs="?",
        default=None,
        help="dump file written by continuous mode, or a telemetry store "
        "(store://DIR or a store directory); omit to capture live",
    )
    add_device_arguments(parser)
    parser.add_argument("--width", type=int, default=72)
    parser.add_argument("--height", type=int, default=16)
    parser.add_argument(
        "--pair", type=int, default=-1, help="pair index to plot (-1 = total)"
    )
    parser.add_argument(
        "--seconds",
        type=float,
        default=1.0,
        help="live capture length in stream seconds (no dump file given)",
    )
    parser.add_argument(
        "--t0",
        type=float,
        default=None,
        metavar="SECONDS",
        help="window start for store / --history queries",
    )
    parser.add_argument(
        "--t1",
        type=float,
        default=None,
        metavar="SECONDS",
        help="window end for store / --history queries",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=4096,
        metavar="N",
        help="tiered point budget for store / --history queries",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="with --remote: plot the server's recorded history "
        "(needs psserve --record-store) instead of capturing live",
    )
    args = parser.parse_args(argv)
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    return run_with_diagnostics(
        "psplot",
        lambda: _plot(args, parser, registry, tracer),
        metrics_path=args.metrics,
        registry=registry,
        tracer=tracer,
    )


def _plot(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    registry: MetricsRegistry,
    tracer: Tracer,
) -> int:
    if args.dump is None:
        return _plot_live(args, registry, tracer)
    if args.dump.startswith("store://") or Path(args.dump).is_dir():
        return _plot_store(args, parser, registry, tracer)
    with tracer.span("read_dump"):
        data = DumpReader.read(args.dump)
    registry.gauge(
        "plot_samples", help="samples loaded from the dump file"
    ).set(data.times.size)
    if args.pair == -1:
        watts = data.total_power
        label = "total"
    else:
        if not 0 <= args.pair < data.volts.shape[1]:
            parser.error(f"pair {args.pair} not in the dump")
        watts = data.volts[:, args.pair] * data.amps[:, args.pair]
        label = data.pair_names[args.pair]
    print(
        f"{label}: {data.times.size} samples at {data.sample_rate_hz:.0f} Hz, "
        f"mean {watts.mean():.2f} W"
    )
    with tracer.span("render"):
        chart = render_chart(data.times, watts, args.width, args.height, data.markers)
    print(chart)
    return 0


def _plot_store(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    registry: MetricsRegistry,
    tracer: Tracer,
) -> int:
    """Plot a time-range query against a local telemetry store."""
    from repro.store import TelemetryStore

    path = args.dump
    if path.startswith("store://"):
        path = path[len("store://") :].split("?", 1)[0]
    with tracer.span("read_store"):
        with TelemetryStore(path, registry=registry, tracer=tracer) as store:
            result = store.query(args.t0, args.t1, max(args.max_points, 1))
    _plot_result(args, tracer, result, label=f"store {path}")
    return 0


def _plot_result(
    args: argparse.Namespace, tracer: Tracer, result, label: str
) -> None:
    """Plot one StoreQueryResult (local store query or remote --history)."""
    if args.pair == -1:
        watts = result.total_power()
    else:
        if not 0 <= 2 * args.pair + 1 < result.values.shape[1]:
            raise ConfigurationError(f"pair {args.pair} out of range")
        watts = result.values[:, 2 * args.pair] * result.values[:, 2 * args.pair + 1]
        label = f"{label} pair {args.pair}"
    tier = "" if result.factor <= 1 else f" (tier 1/{result.factor}, bucket means)"
    mean = float(watts.mean()) if len(result) else 0.0
    print(
        f"{label}: {len(result)} rows covering {result.n_source} samples"
        f"{tier}, mean {mean:.2f} W"
    )
    marker_times = [(float(t), "M") for t in result.times[result.markers]]
    with tracer.span("render"):
        chart = render_chart(
            result.times, watts, args.width, args.height, marker_times
        )
    print(chart)


def _plot_live(
    args: argparse.Namespace, registry: MetricsRegistry, tracer: Tracer
) -> int:
    """Capture --seconds of stream from the described device(s) and plot."""
    setup = build_setup(args, registry, tracer)
    try:
        fleet = setup_fleet(setup)
        if args.history:
            link = getattr(setup, "link", None)
            if link is None or not hasattr(link, "query_history"):
                raise ConfigurationError(
                    "--history queries a serving daemon's recorded store; "
                    "point psplot at one with --remote"
                )
            result = link.query_history(args.t0, args.t1, max(args.max_points, 1))
            _plot_result(args, tracer, result, label="history")
            return 0
        if fleet is not None:
            blocks = fleet.read_all(args.seconds)
            for name, block in blocks.items():
                _plot_block(args, tracer, block, label=name)
            return 0
        block = setup.ps.pump_seconds(args.seconds)
        _plot_block(args, tracer, block, label="live")
        return 0
    finally:
        setup.close()


def _plot_block(args: argparse.Namespace, tracer: Tracer, block, label: str) -> None:
    if args.pair == -1:
        watts = block.total_power()
    else:
        watts = block.pair_power(args.pair)
        label = f"{label} pair {args.pair}"
    mean = float(watts.mean()) if len(block) else 0.0
    print(f"{label}: {len(block)} samples, mean {mean:.2f} W")
    marker_times = [(float(t), "M") for t in block.times[block.markers]]
    with tracer.span("render"):
        chart = render_chart(
            block.times, watts, args.width, args.height, marker_times
        )
    print(chart)


if __name__ == "__main__":
    raise SystemExit(main())
