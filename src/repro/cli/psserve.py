"""psserve: serve one or more PowerSensor devices to many subscribers.

The daemon assembles the usual simulated bench (``--modules``, ``--dut``,
``--seed``, optional ``--faults`` on the device link) — or a whole fleet
of devices from repeated ``--device SPEC`` flags — then listens on a TCP
or Unix socket and fans each device's stream out to every connected
client (``psrun --remote``, ``psmonitor --remote``, the PMT remote
backend, or any :class:`~repro.server.RemoteSampleSource`; clients pick a
device by name in the subscription).  See ``docs/serving.md`` for the
wire protocol and backpressure policies.
"""

from __future__ import annotations

import argparse
import sys

from repro.cli.common import (
    add_device_arguments,
    build_setup,
    run_with_diagnostics,
    setup_fleet,
)
from repro.common.errors import ConfigurationError
from repro.observability import MetricsRegistry, Tracer
from repro.server.backpressure import POLICIES
from repro.server.daemon import DEFAULT_CHUNK, PowerSensorServer
from repro.server.threaded import ThreadedPowerSensorServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psserve",
        description="Serve a (simulated) PowerSensor3 stream to N subscribers.",
    )
    add_device_arguments(parser, remote=False)
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT|unix:PATH",
        default="127.0.0.1:9753",
        help="endpoint to serve on (TCP port 0 picks a free port)",
    )
    parser.add_argument(
        "--policy",
        choices=POLICIES,
        default="block",
        help="backpressure policy for slow subscribers",
    )
    parser.add_argument(
        "--buffer-frames",
        type=int,
        default=256,
        metavar="N",
        help="per-client send buffer depth, in frames",
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=DEFAULT_CHUNK,
        metavar="N",
        help="samples pumped (and framed) per fan-out iteration",
    )
    parser.add_argument(
        "--pump-batch",
        type=int,
        default=1,
        metavar="N",
        help="chunks of stream time read from the device per pump tick "
        "(one large read, re-framed chunk-sized; async engine only)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve this many simulated seconds, then send EOS and exit "
        "(default: serve until interrupted)",
    )
    parser.add_argument(
        "--wait-clients",
        type=int,
        default=0,
        metavar="N",
        help="hold the pump until N subscribers have started streaming",
    )
    parser.add_argument(
        "--max-clients",
        type=int,
        default=64,
        metavar="N",
        help="refuse subscribers beyond this many concurrent clients",
    )
    parser.add_argument(
        "--client-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="handshake timeout, and eviction timeout for a full "
        "block-policy buffer",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="wall-clock seconds per simulated second (1.0 = real time)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="pump as fast as possible instead of pacing to --time-scale",
    )
    parser.add_argument(
        "--engine",
        choices=("async", "threaded"),
        default="async",
        help="server core: the asyncio broadcast-ring event loop "
        "(default) or the legacy thread-per-client engine",
    )
    parser.add_argument(
        "--record-store",
        metavar="DIR",
        default=None,
        help="record every pumped sample into a telemetry store under "
        "DIR (one per-device subdirectory) and serve HISTORY queries "
        "from it (async engine only)",
    )
    parser.add_argument(
        "--store-roll",
        type=int,
        default=1_000_000,
        metavar="N",
        help="seal a store segment every N samples (with --record-store)",
    )
    args = parser.parse_args(argv)
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    return run_with_diagnostics(
        "psserve",
        lambda: _serve(args, registry, tracer),
        metrics_path=args.metrics,
        registry=registry,
        tracer=tracer,
    )


def _serve(args: argparse.Namespace, registry: MetricsRegistry, tracer: Tracer) -> int:
    if args.direct and not getattr(args, "devices", None):
        raise ConfigurationError(
            "psserve relays the device's wire bytes; it needs the "
            "byte-accurate protocol path (drop --direct)"
        )
    setup = build_setup(args, registry, tracer)
    try:
        fleet = setup_fleet(setup)
        source = fleet.sources() if fleet is not None else setup.source
        if args.engine == "threaded":
            if args.pump_batch != 1:
                raise ConfigurationError(
                    "--pump-batch needs the async engine (drop --engine threaded)"
                )
            if args.record_store is not None:
                raise ConfigurationError(
                    "--record-store needs the async engine (drop --engine threaded)"
                )
            server_cls = ThreadedPowerSensorServer
            extra = {}
        else:
            server_cls = PowerSensorServer
            extra = {"pump_batch": args.pump_batch}
            if args.record_store is not None:
                extra["record_store"] = args.record_store
                extra["store_roll"] = args.store_roll
        server = server_cls(
            source,
            args.listen,
            policy=args.policy,
            buffer_frames=args.buffer_frames,
            chunk=args.chunk,
            **extra,
            client_timeout=args.client_timeout,
            max_clients=args.max_clients,
            time_scale=0.0 if args.fast else args.time_scale,
            wait_clients=args.wait_clients,
            registry=registry,
            tracer=tracer,
        )
        with server:
            names = ", ".join(server.devices)
            print(
                f"psserve: serving {len(server.devices)} device(s) [{names}] "
                f"on {server.address}",
                file=sys.stderr,
                flush=True,
            )
            try:
                stats = server.serve(duration=args.duration)
            except KeyboardInterrupt:
                stats = server.finish(reason="interrupted")
        print(
            f"psserve: {stats['samples_produced']} samples to "
            f"{stats['clients_served']} client(s), "
            f"{stats['clients_evicted']} evicted ({stats['reason']})",
            file=sys.stderr,
        )
        if fleet is not None:
            for name, health in fleet.health().items():
                if health.degraded:
                    print(f"{name} stream health: {health.summary()}", file=sys.stderr)
        elif setup.ps.health.degraded:
            print(f"stream health: {setup.ps.health.summary()}", file=sys.stderr)
        return 0
    finally:
        setup.close()


if __name__ == "__main__":
    raise SystemExit(main())
