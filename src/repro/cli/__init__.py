"""Command-line tools mirroring the PowerSensor3 host executables.

* ``psconfig`` — read/write sensor configuration, run calibration, reboot.
* ``psinfo`` — show configuration and live readings.
* ``psrun`` — run a command and report its energy.
* ``pstest`` — power/energy at increasing intervals, sample captures.
* ``pscampaign`` — declarative, resumable experiment campaigns.
"""
