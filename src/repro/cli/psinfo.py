"""psinfo: show sensor configuration, latest measurements, total power.

Simulation analogue of the paper's ``psinfo`` executable (Section III-C).
"""

from __future__ import annotations

import argparse

from repro.cli.common import add_device_arguments, build_setup, run_with_diagnostics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psinfo", description="Show PowerSensor3 configuration and readings."
    )
    add_device_arguments(parser)
    args = parser.parse_args(argv)
    return run_with_diagnostics("psinfo", lambda: _show(args))


def _show(args: argparse.Namespace) -> int:
    setup = build_setup(args)
    try:
        return _report(setup)
    finally:
        setup.close()


def _report(setup) -> int:
    ps = setup.ps
    ps.pump_seconds(0.05)  # a short burst of fresh samples
    state = ps.read()

    print(f"device    : {ps.source.version}")
    print(f"sample rate: {ps.sample_rate:.0f} Hz")
    print()
    print(f"{'sensor':<8} {'name':<12} {'pair':<16} {'vref':>8} {'slope':>10} {'enabled':>8}")
    for i in range(8):
        cfg = ps.get_config(i)
        print(
            f"{i:<8} {cfg.name:<12} {cfg.pair_name:<16} "
            f"{cfg.vref:>8.4f} {cfg.slope:>10.5f} {str(cfg.enabled):>8}"
        )
    print()
    print(f"{'pair':<6} {'volts':>9} {'amps':>9} {'watts':>9}")
    for pair in range(4):
        if not (ps.get_config(2 * pair).enabled and ps.get_config(2 * pair + 1).enabled):
            continue
        print(
            f"{pair:<6} {state.voltage[pair]:>9.3f} "
            f"{state.current[pair]:>9.3f} {state.pair_power(pair):>9.3f}"
        )
    print(f"\ntotal power: {state.total_power:.3f} W")
    if ps.health.degraded:
        print(f"stream health: {ps.health.summary()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
