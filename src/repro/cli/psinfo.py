"""psinfo: show sensor configuration, latest measurements, total power.

Simulation analogue of the paper's ``psinfo`` executable (Section III-C).
"""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_device_arguments,
    build_setup,
    run_with_diagnostics,
    setup_fleet,
)
from repro.observability import MetricsRegistry, Tracer, summarize_registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psinfo", description="Show PowerSensor3 configuration and readings."
    )
    add_device_arguments(parser, metrics=False)
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        nargs="?",
        const="-",
        default=None,
        help="print a metrics summary after the report; with a PATH, also "
        "write the metrics file (.prom: Prometheus text, else JSON lines)",
    )
    args = parser.parse_args(argv)
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    metrics_path = args.metrics if args.metrics not in (None, "-") else None
    return run_with_diagnostics(
        "psinfo",
        lambda: _show(args, registry, tracer),
        metrics_path=metrics_path,
        registry=registry,
        tracer=tracer,
    )


def _show(args: argparse.Namespace, registry: MetricsRegistry, tracer: Tracer) -> int:
    setup = build_setup(args, registry, tracer)
    try:
        status = _report(setup)
        if args.metrics is not None:
            print()
            print(summarize_registry(registry))
        return status
    finally:
        setup.close()


def _report(setup) -> int:
    fleet = setup_fleet(setup)
    if fleet is not None:
        fleet.read_all(0.05)  # a short burst of fresh samples, every device
        states = fleet.read()
        for name, member in fleet.members.items():
            print(f"=== device {name} ===")
            _report_device(member.ps, states[name])
            print()
        print(f"fleet total power: {states.total_power:.3f} W across {len(fleet)} device(s)")
        return 0
    ps = setup.ps
    ps.pump_seconds(0.05)  # a short burst of fresh samples
    _report_device(ps, ps.read())
    return 0


def _report_device(ps, state) -> None:
    print(f"device    : {ps.source.version}")
    print(f"sample rate: {ps.sample_rate:.0f} Hz")
    print()
    print(f"{'sensor':<8} {'name':<12} {'pair':<16} {'vref':>8} {'slope':>10} {'enabled':>8}")
    for i in range(8):
        cfg = ps.get_config(i)
        print(
            f"{i:<8} {cfg.name:<12} {cfg.pair_name:<16} "
            f"{cfg.vref:>8.4f} {cfg.slope:>10.5f} {str(cfg.enabled):>8}"
        )
    print()
    print(f"{'pair':<6} {'volts':>9} {'amps':>9} {'watts':>9}")
    for pair in range(4):
        if not (ps.get_config(2 * pair).enabled and ps.get_config(2 * pair + 1).enabled):
            continue
        print(
            f"{pair:<6} {state.voltage[pair]:>9.3f} "
            f"{state.current[pair]:>9.3f} {state.pair_power(pair):>9.3f}"
        )
    print(f"\ntotal power: {state.total_power:.3f} W")
    if ps.health.degraded:
        print(f"stream health: {ps.health.summary()}")


if __name__ == "__main__":
    raise SystemExit(main())
