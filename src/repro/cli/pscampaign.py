"""pscampaign: plan, execute and report declarative experiment campaigns.

The scenario-engine front end over :mod:`repro.campaign`::

    pscampaign list                      # registered experiments + schemas
    pscampaign plan demo.ini --cells     # expand a plan, show the matrix
    pscampaign run demo.ini --out runs/  # execute every cell, resumably
    pscampaign resume demo.ini --out runs/   # finish only missing cells
    pscampaign report runs/              # merged metrics + ablation ranking

Exit statuses follow the other CLIs (:mod:`repro.cli.common`):
configuration problems — unknown experiments, malformed plans — map to
their documented codes, and a campaign that completed with failed cells
exits 1 (the failure is recorded per cell, never a traceback).
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign import registry
from repro.campaign.plan import CampaignPlan
from repro.campaign.report import scan_runs, write_report
from repro.campaign.runner import CampaignRunner
from repro.cli.common import run_with_diagnostics
from repro.observability import MetricsRegistry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pscampaign",
        description="Declarative, resumable experiment campaigns with "
        "ablation bookkeeping.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered experiments and their schemas")

    plan_parser = sub.add_parser("plan", help="expand a plan and show its cells")
    plan_parser.add_argument("plan", help="campaign plan file (INI)")
    plan_parser.add_argument(
        "--cells", action="store_true", help="list every cell with its run ID"
    )

    for name, help_text in (
        ("run", "execute a plan into an artifact directory"),
        ("resume", "re-run a plan, skipping completed cells"),
    ):
        run_parser = sub.add_parser(name, help=help_text)
        run_parser.add_argument("plan", help="campaign plan file (INI)")
        run_parser.add_argument(
            "--out", default="campaign_out", help="artifact directory"
        )
        if name == "run":
            run_parser.add_argument(
                "--resume",
                action="store_true",
                help="skip cells already completed in --out",
            )
        run_parser.add_argument(
            "--no-report",
            action="store_true",
            help="skip writing campaign_report.md after the run",
        )
        run_parser.add_argument(
            "--metrics",
            metavar="PATH",
            default=None,
            help="write the campaign-level metrics file on exit "
            "(.prom or JSON lines)",
        )

    report_parser = sub.add_parser(
        "report", help="render the report for an executed campaign directory"
    )
    report_parser.add_argument("out", help="campaign artifact directory")

    args = parser.parse_args(argv)
    registry_ = MetricsRegistry()
    return run_with_diagnostics(
        "pscampaign",
        lambda: _dispatch(args, registry_),
        metrics_path=getattr(args, "metrics", None),
        registry=registry_,
    )


def _dispatch(args: argparse.Namespace, metrics: MetricsRegistry) -> int:
    if args.command == "list":
        return _list()
    if args.command == "plan":
        return _plan(args)
    if args.command in ("run", "resume"):
        return _run(args, metrics)
    return _report(args)


def _list() -> int:
    for experiment in registry.experiments():
        flags = []
        if experiment.report_index is not None:
            flags.append("report")
        if experiment.series:
            flags.append("series")
        if experiment.accepts_registry:
            flags.append("metrics")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{experiment.name}: {experiment.section}{suffix}")
        if experiment.help:
            print(f"  {experiment.help}")
        for param in experiment.params:
            full = (
                f", full={param.value(True)!r}"
                if param.value(True) != param.default
                else ""
            )
            choices = f" one of {sorted(param.choices)}" if param.choices else ""
            print(
                f"  {param.name} ({param.kind}): "
                f"default={param.default!r}{full}{choices}"
            )
    return 0


def _plan(args: argparse.Namespace) -> int:
    plan = CampaignPlan.load(args.plan)
    unique = {cell.run_id for cell in plan.cells}
    print(
        f"campaign {plan.name!r}: scale={plan.scale} seed={plan.seed} — "
        f"{len(plan.cells)} cells ({len(unique)} unique), "
        f"{len(plan.ablations)} ablation group(s)"
    )
    groups: dict[str, int] = {}
    for cell in plan.cells:
        groups[cell.group] = groups.get(cell.group, 0) + 1
    for group, count in groups.items():
        print(f"  {group}: {count} cells")
    for ablation in plan.ablations:
        print(
            f"  ablation {ablation.name!r}: metric={ablation.metric!r} "
            f"goal={ablation.goal} knockouts={sorted(ablation.knockouts)}"
        )
    if args.cells:
        for cell in plan.cells:
            role = f" role={cell.role}" if cell.role else ""
            print(f"  {cell.run_id}  {cell.label}{role}")
    return 0


def _run(args: argparse.Namespace, metrics: MetricsRegistry) -> int:
    resume = args.command == "resume" or getattr(args, "resume", False)
    plan = CampaignPlan.load(args.plan)
    runner = CampaignRunner(
        plan, args.out, progress=lambda message: print(message, file=sys.stderr)
    )
    summary = runner.run(resume=resume)
    counts = summary.counts()
    for record in summary.records:
        metrics.counter("pscampaign_cells_total", status=record.status).inc()
    print(
        f"campaign {plan.name!r}: {counts['ok']} ok, {counts['failed']} failed, "
        f"{counts['skipped']} skipped -> {args.out}"
    )
    for record in summary.failed:
        print(
            f"  failed: {record.label} ({record.run_id}): "
            f"{record.error_type}: {record.error}"
        )
    if not args.no_report:
        report_path, metrics_path = write_report(args.out)
        print(f"report written to {report_path} (+ {metrics_path.name})")
    return 1 if summary.failed else 0


def _report(args: argparse.Namespace) -> int:
    records = scan_runs(args.out)
    report_path, metrics_path = write_report(args.out)
    failed = sum(1 for r in records.values() if r.status == "failed")
    print(
        f"report written to {report_path} (+ {metrics_path.name}): "
        f"{len(records)} completed runs, {failed} failed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
