"""psfio: run a declarative fio-style job file on the simulated SSD bench.

Simulation analogue of driving fio by hand for the paper's Section V-C
study: every job in the file executes against the FTL-backed drive while
the simulated PowerSensor3 measures the 3.3 V slot rail, and the report
carries bandwidth, latency percentiles, watts and joules-per-IO per job.

``--ftl all`` sweeps every registered mapping policy over the same job
list, which is the extended Fig. 12 energy-per-IO comparison in one
command::

    psfio jobs.fio --ftl all --out report.json
"""

from __future__ import annotations

import argparse
import json

from repro.cli.common import run_with_diagnostics
from repro.common.units import GIB
from repro.dut.ssd import SsdSpec
from repro.ftl import FTL_POLICIES
from repro.observability import MetricsRegistry
from repro.storage.jobfile import run_jobfile, write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psfio",
        description="Run an fio-style job file on the simulated, "
        "PowerSensor3-instrumented SSD.",
    )
    parser.add_argument("jobfile", help="fio-style INI job file")
    parser.add_argument(
        "--ftl",
        default="page",
        help="FTL policy, comma-separated list, or 'all' "
        f"(policies: {', '.join(sorted(FTL_POLICIES))})",
    )
    parser.add_argument(
        "--capacity-gib",
        type=float,
        default=2.0,
        help="logical drive capacity in GiB (default 2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--volts", type=float, default=3.3, help="measured rail voltage"
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a metrics file on exit (.prom or JSON lines)",
    )
    args = parser.parse_args(argv)
    registry = MetricsRegistry()
    return run_with_diagnostics(
        "psfio",
        lambda: _run(args, registry),
        metrics_path=args.metrics,
        registry=registry,
    )


def _run(args: argparse.Namespace, registry: MetricsRegistry) -> int:
    spec = SsdSpec(logical_bytes=int(args.capacity_gib * GIB))
    report = run_jobfile(
        args.jobfile,
        ftl=args.ftl,
        ssd_spec=spec,
        seed=args.seed,
        volts=args.volts,
        registry=registry,
    )
    for policy, outcomes in report["policies"].items():
        print(f"ftl={policy}")
        for outcome in outcomes:
            ss = outcome.get("steady_state") or {}
            note = ""
            if ss:
                state = "attained" if ss.get("attained") else "not attained"
                note = f"  ss={ss.get('criterion')} {state}"
                if ss.get("stopped_at_s") is not None:
                    note += f" @ {ss['stopped_at_s']:g}s"
            if outcome["runtime_s"] <= 0:
                print(f"  {outcome['name']}: precondition only")
                continue
            print(
                f"  {outcome['name']}: "
                f"bw={outcome['bandwidth_mean_bps'] / 1e6:.1f} MB/s "
                f"power={outcome['power_mean_w']:.2f} W "
                f"J/IO={outcome['joules_per_io']:.3e} "
                f"WA={outcome['write_amplification']:.2f}"
                f"{note}"
            )
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    else:
        print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
