"""psrun: run a command and report the energy consumed while it ran.

Simulation analogue of the paper's ``psrun`` (Section III-C): connects to
the device, runs the given executable, and reports total energy and mean
power over the execution.  The measured device is the *simulated* bench
(see ``--dut``), pumped in real time while the command runs.

``psrun`` propagates the wrapped command's exit code; measurement
failures degrade to a one-line diagnostic with a distinct exit status
(see ``repro.cli.common.EXIT_STATUSES``) instead of a traceback.
"""

from __future__ import annotations

import argparse
import subprocess
import sys

import contextlib

from repro.cli.common import (
    add_device_arguments,
    build_setup,
    run_with_diagnostics,
    setup_fleet,
)
from repro.core.realtime import RealtimeDriver
from repro.core.state import State, joules, seconds, watts
from repro.observability import MetricsRegistry, Tracer

#: Exit status when the wrapped command itself cannot be launched.
EXIT_COMMAND_NOT_RUN = 127


def format_measurement(before: State, after: State) -> str:
    """Render the interval measurement, tolerating a zero-length interval.

    A command can finish before a single new sample arrives; the interval
    is then empty (dt=0) and mean power is undefined, not an error.
    """
    duration = seconds(before, after)
    if duration <= 0:
        return "0.000 s, 0.000 J, n/a W"
    return (
        f"{duration:.3f} s, {joules(before, after):.3f} J, "
        f"{watts(before, after):.3f} W"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psrun",
        description="Run a command while measuring (simulated) power.",
    )
    add_device_arguments(parser)
    parser.add_argument(
        "--dump", metavar="FILE", help="also record all samples to a dump file"
    )
    parser.add_argument(
        "--record-store",
        metavar="DIR",
        help="also record all samples into a binary telemetry store at "
        "DIR (queryable, and replayable via store://DIR)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="simulated seconds per wall-clock second",
    )
    parser.add_argument("command", nargs=argparse.REMAINDER, help="command to run")
    args = parser.parse_args(argv)
    if not args.command:
        parser.error("no command given")
    command = args.command[1:] if args.command[0] == "--" else args.command
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    return run_with_diagnostics(
        "psrun",
        lambda: _measure(args, command, registry, tracer),
        metrics_path=args.metrics,
        registry=registry,
        tracer=tracer,
    )


def _measure(
    args: argparse.Namespace,
    command: list[str],
    registry: MetricsRegistry,
    tracer: Tracer,
) -> int:
    setup = build_setup(args, registry, tracer)
    try:
        fleet = setup_fleet(setup)
        if fleet is not None:
            return _measure_fleet(args, command, fleet, tracer)
        ps = setup.ps
        if args.dump:
            ps.dump(args.dump)
        if args.record_store:
            ps.record(args.record_store)
        with RealtimeDriver(ps, time_scale=args.time_scale) as driver:
            before = driver.read()
            try:
                with tracer.span("command"):
                    completed = subprocess.run(command)
            except OSError as error:
                print(f"psrun: cannot run {command[0]!r}: {error}", file=sys.stderr)
                return EXIT_COMMAND_NOT_RUN
            exit_code = completed.returncode
            after = driver.read()

        print(f"exit status: {exit_code}", file=sys.stderr)
        print(format_measurement(before, after))
        if ps.health.degraded:
            print(f"stream health: {ps.health.summary()}", file=sys.stderr)
        return exit_code
    finally:
        setup.close()


def _measure_fleet(
    args: argparse.Namespace, command: list[str], fleet, tracer: Tracer
) -> int:
    """Run the command while every fleet device pumps in real time."""
    if args.dump:
        # One dump file per device: "out.txt" -> "out.<device>.txt".
        from pathlib import Path

        base = Path(args.dump)
        for name, member in fleet.members.items():
            member.ps.dump(str(base.with_suffix(f".{name}{base.suffix}")))
    if args.record_store:
        # One store per device: "dir" -> "dir/<device>".
        from pathlib import Path

        for name, member in fleet.members.items():
            member.ps.record(str(Path(args.record_store) / name))
    drivers = {
        name: RealtimeDriver(member.ps, time_scale=args.time_scale)
        for name, member in fleet.members.items()
    }
    with contextlib.ExitStack() as stack:
        for driver in drivers.values():
            stack.enter_context(driver)
        before = {name: d.read() for name, d in drivers.items()}
        try:
            with tracer.span("command"):
                completed = subprocess.run(command)
        except OSError as error:
            print(f"psrun: cannot run {command[0]!r}: {error}", file=sys.stderr)
            return EXIT_COMMAND_NOT_RUN
        exit_code = completed.returncode
        after = {name: d.read() for name, d in drivers.items()}

    print(f"exit status: {exit_code}", file=sys.stderr)
    total_joules = 0.0
    for name in drivers:
        total_joules += joules(before[name], after[name])
        print(f"{name}: {format_measurement(before[name], after[name])}")
    print(f"fleet total: {total_joules:.3f} J across {len(drivers)} device(s)")
    for name, health in fleet.health().items():
        if health.degraded:
            print(f"{name} stream health: {health.summary()}", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
