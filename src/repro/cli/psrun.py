"""psrun: run a command and report the energy consumed while it ran.

Simulation analogue of the paper's ``psrun`` (Section III-C): connects to
the device, runs the given executable, and reports total energy and mean
power over the execution.  The measured device is the *simulated* bench
(see ``--dut``), pumped in real time while the command runs.
"""

from __future__ import annotations

import argparse
import subprocess
import sys

from repro.cli.common import add_device_arguments, build_setup
from repro.core.realtime import RealtimeDriver
from repro.core.state import joules, seconds, watts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psrun",
        description="Run a command while measuring (simulated) power.",
    )
    add_device_arguments(parser)
    parser.add_argument(
        "--dump", metavar="FILE", help="also record all samples to a dump file"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="simulated seconds per wall-clock second",
    )
    parser.add_argument("command", nargs=argparse.REMAINDER, help="command to run")
    args = parser.parse_args(argv)
    if not args.command:
        parser.error("no command given")
    command = args.command[1:] if args.command[0] == "--" else args.command

    setup = build_setup(args)
    ps = setup.ps
    if args.dump:
        ps.dump(args.dump)

    exit_code = 0
    with RealtimeDriver(ps, time_scale=args.time_scale) as driver:
        before = driver.read()
        completed = subprocess.run(command)
        exit_code = completed.returncode
        after = driver.read()

    duration = seconds(before, after)
    energy = joules(before, after)
    print(f"exit status: {exit_code}", file=sys.stderr)
    print(f"{duration:.3f} s, {energy:.3f} J, {watts(before, after):.3f} W")
    setup.close()
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
