"""pstest: measure and report power/energy at increasing intervals.

Simulation analogue of the paper's ``pstest``: the tool behind the
accuracy and stability measurements of Section IV.  It reports mean power
and energy over a geometric ladder of measurement intervals, and can
capture a fixed number of samples to a dump file (the paper's experiments
capture 128 k samples per point).
"""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_device_arguments,
    build_setup,
    run_with_diagnostics,
    setup_fleet,
)
from repro.common.stats import summarize
from repro.core.state import joules, seconds, watts
from repro.observability import MetricsRegistry, Tracer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pstest", description="PowerSensor3 self-test measurements."
    )
    add_device_arguments(parser)
    parser.add_argument(
        "--intervals",
        type=int,
        default=10,
        help="number of doubling intervals to report (starting at 1 ms)",
    )
    parser.add_argument(
        "--capture",
        type=int,
        metavar="N",
        help="capture N samples and report min/max/std of pair-0 power",
    )
    parser.add_argument("--dump", metavar="FILE", help="write samples to a dump file")
    args = parser.parse_args(argv)
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    return run_with_diagnostics(
        "pstest",
        lambda: _selftest(args, registry, tracer),
        metrics_path=args.metrics,
        registry=registry,
        tracer=tracer,
    )


def _selftest(
    args: argparse.Namespace, registry: MetricsRegistry, tracer: Tracer
) -> int:
    setup = build_setup(args, registry, tracer)
    try:
        fleet = setup_fleet(setup)
        if fleet is not None:
            return _selftest_fleet(args, fleet)
        ps = setup.ps
        if args.dump:
            ps.dump(args.dump)

        interval = 0.001
        print(f"{'interval':>12} {'energy':>12} {'power':>10}")
        for _ in range(args.intervals):
            before = ps.read()
            ps.pump_seconds(interval)
            after = ps.read()
            print(
                f"{seconds(before, after):>10.4f} s "
                f"{joules(before, after):>10.4f} J "
                f"{watts(before, after):>9.3f} W"
            )
            interval *= 2

        if args.capture:
            block = ps.pump(args.capture)
            power = block.pair_power(0)
            summary = summarize(power)
            print(
                f"\ncaptured {summary.count} samples: "
                f"mean={summary.mean:.4f} W min={summary.minimum:.4f} W "
                f"max={summary.maximum:.4f} W p-p={summary.peak_to_peak:.4f} W "
                f"std={summary.std:.4f} W"
            )
        return 0
    finally:
        setup.close()


def _selftest_fleet(args: argparse.Namespace, fleet) -> int:
    """The interval ladder with energy/power aggregated across the fleet."""
    interval = 0.001
    print(f"{'interval':>12} {'energy':>12} {'power':>10}")
    for _ in range(args.intervals):
        before = fleet.read()
        fleet.read_all(interval)
        after = fleet.read()
        energy = after.total_energy - before.total_energy
        print(
            f"{interval:>10.4f} s "
            f"{energy:>10.4f} J "
            f"{energy / interval:>9.3f} W"
        )
        interval *= 2

    if args.capture:
        fleet_block = fleet.read_all(args.capture / min(
            member.source.sample_rate for member in fleet
        ))
        for name, block in fleet_block.items():
            if not len(block):
                continue
            summary = summarize(block.pair_power(0))
            print(
                f"\n{name}: captured {summary.count} samples: "
                f"mean={summary.mean:.4f} W min={summary.minimum:.4f} W "
                f"max={summary.maximum:.4f} W p-p={summary.peak_to_peak:.4f} W "
                f"std={summary.std:.4f} W"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
