"""psmonitor: live power statistics from a running measurement.

Streams the bench in (simulated) real time and prints rolling per-second
statistics — mean/min/max/std per pair and total energy — using O(1)
memory (the 20 kHz stream is folded into streaming accumulators rather
than stored).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.streaming import StreamingPowerMonitor, StreamingStats
from repro.cli.common import (
    add_device_arguments,
    build_setup,
    run_with_diagnostics,
    setup_fleet,
)
from repro.core.health import StreamHealth
from repro.observability import MetricsRegistry, Tracer


def format_stats_line(health: StreamHealth, registry: MetricsRegistry) -> str:
    """The live stats line: stream health plus decode throughput.

    One fixed-format stderr line per reporting interval, e.g.::

        stats: samples=19999 dropped=0 retries=0 gaps=0 sps=3.1e+06
    """
    sps = registry.value("decode_samples_per_second", default=0.0)
    return (
        f"stats: samples={health.samples_decoded} "
        f"dropped={health.packets_dropped} "
        f"retries={health.retries} "
        f"gaps={health.gaps_bridged} "
        f"sps={sps:.2g}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psmonitor", description="Live PowerSensor3 statistics."
    )
    add_device_arguments(parser)
    parser.add_argument(
        "--duration", type=float, default=5.0, help="seconds to monitor"
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="reporting interval (s)"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="run at full simulation speed instead of wall-clock pacing",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0 or args.duration <= 0:
        parser.error("duration and interval must be positive")
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    return run_with_diagnostics(
        "psmonitor",
        lambda: _monitor(args, registry, tracer),
        metrics_path=args.metrics,
        registry=registry,
        tracer=tracer,
    )


def _monitor(
    args: argparse.Namespace, registry: MetricsRegistry, tracer: Tracer
) -> int:
    setup = build_setup(args, registry, tracer)
    try:
        fleet = setup_fleet(setup)
        if fleet is not None:
            return _monitor_fleet(args, fleet)
        monitor = StreamingPowerMonitor()
        print(
            f"{'t':>6} {'mean W':>9} {'min W':>9} {'max W':>9} {'std W':>8} {'energy J':>10}"
        )

        elapsed = 0.0
        while elapsed < args.duration:
            span = min(args.interval, args.duration - elapsed)
            window = StreamingStats()
            block = setup.ps.pump_seconds(span)
            monitor.update(block)
            if len(block):
                window.update(block.total_power())
                print(
                    f"{elapsed + span:5.1f}s {window.mean:9.3f} {window.minimum:9.3f} "
                    f"{window.maximum:9.3f} {window.std:8.3f} "
                    f"{monitor.energy_joules:10.3f}"
                )
            print(format_stats_line(setup.ps.health, registry), file=sys.stderr)
            elapsed += span
            if not args.fast:
                import time

                time.sleep(span)

        total = monitor.total
        print(
            f"\n{total.count} samples: mean {total.mean:.3f} W "
            f"(p-p {total.peak_to_peak:.3f} W, std {total.std:.3f} W), "
            f"total energy {monitor.energy_joules:.3f} J"
        )
        if setup.ps.health.degraded:
            print(f"stream health: {setup.ps.health.summary()}", file=sys.stderr)
        return 0
    finally:
        setup.close()


def _monitor_fleet(args: argparse.Namespace, fleet) -> int:
    """Per-interval rolling statistics aggregated across a device fleet."""
    monitors = {name: StreamingPowerMonitor() for name in fleet.names}
    print(f"{'t':>6} {'mean W':>9} {'energy J':>10}  per-device W")

    elapsed = 0.0
    while elapsed < args.duration:
        span = min(args.interval, args.duration - elapsed)
        fleet_block = fleet.read_all(span)
        per_device = []
        for name, block in fleet_block.items():
            monitors[name].update(block)
            if len(block):
                per_device.append(f"{name}={float(block.total_power().mean()):.3f}")
        energy = sum(m.energy_joules for m in monitors.values())
        print(
            f"{elapsed + span:5.1f}s {fleet_block.mean_power():9.3f} "
            f"{energy:10.3f}  {' '.join(per_device)}"
        )
        elapsed += span
        if not args.fast:
            import time

            time.sleep(span)

    for name, health in fleet.health().items():
        print(
            f"{name}: {monitors[name].total.count} samples, "
            f"mean {monitors[name].total.mean:.3f} W, "
            f"energy {monitors[name].energy_joules:.3f} J",
            file=sys.stderr,
        )
        if health.degraded:
            print(f"{name} stream health: {health.summary()}", file=sys.stderr)
    total_energy = sum(m.energy_joules for m in monitors.values())
    print(f"\nfleet energy: {total_energy:.3f} J across {len(fleet)} device(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
