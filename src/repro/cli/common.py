"""Shared CLI plumbing: build a bench (or a fleet of them) from flags.

The real tools take a serial device path; the simulated ones take a bench
description instead (``--modules``, ``--dut``) and assemble the same
objects the library API exposes.  Repeatable ``--device SPEC`` flags
describe devices by URI (``sim://…``, ``remote://…``, ``replay://…``)
and build a multi-device :class:`~repro.core.fleet.FleetSetup` instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.common.errors import (
    CalibrationError,
    ConfigurationError,
    DeviceError,
    MeasurementError,
    ProtocolError,
    ReproError,
    ServerError,
    StreamStalledError,
    TransportError,
)
from repro.core.setup import SimulatedSetup, parse_module_keys
from repro.dut.rails import DUT_SPEC_HELP, build_rail
from repro.observability import MetricsRegistry, Tracer, write_metrics
from repro.transport.faults import FAULT_SPEC_HELP

#: Distinct exit statuses per failure domain, above the range commands and
#: argparse use, so scripts can tell *what* degraded without parsing text.
#: Ordered most-specific first (``exit_status`` walks it with isinstance).
EXIT_STATUSES: list[tuple[type[ReproError], int]] = [
    (StreamStalledError, 69),
    (MeasurementError, 70),
    (TransportError, 71),
    (ProtocolError, 72),
    (DeviceError, 73),
    (ConfigurationError, 74),
    (CalibrationError, 75),
    (ServerError, 76),
]

#: Fallback for a bare :class:`ReproError`.
EXIT_REPRO_ERROR = 68


def exit_status(error: ReproError) -> int:
    """Map a library error to its documented CLI exit status."""
    for cls, code in EXIT_STATUSES:
        if isinstance(error, cls):
            return code
    return EXIT_REPRO_ERROR


def run_with_diagnostics(
    prog: str,
    body: Callable[[], int],
    *,
    metrics_path: str | None = None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> int:
    """Run a CLI body, degrading library errors to one-line diagnostics.

    Any :class:`ReproError` escaping ``body`` becomes a single stderr line
    and the matching nonzero exit status — never a traceback.

    When ``metrics_path`` and ``registry`` are given, a metrics file is
    written unconditionally on the way out — a degraded run (nonzero exit
    status) still leaves its counters behind for post-mortem analysis.
    """
    status = 0
    try:
        status = body()
        return status
    except ReproError as error:
        print(f"{prog}: {type(error).__name__}: {error}", file=sys.stderr)
        status = exit_status(error)
        return status
    finally:
        if metrics_path and registry is not None:
            try:
                write_metrics(
                    metrics_path,
                    registry,
                    tracer=tracer,
                    meta={"tool": prog, "exit_status": status},
                )
            except OSError as error:
                print(f"{prog}: cannot write metrics: {error}", file=sys.stderr)


def add_device_arguments(
    parser: argparse.ArgumentParser, metrics: bool = True, remote: bool = True
) -> None:
    parser.add_argument(
        "--device",
        metavar="SPEC",
        action="append",
        default=None,
        dest="devices",
        help="device URI spec: 'sim://MODULES?dut=…&seed=…', "
        "'remote://HOST:PORT?device=NAME', 'replay://DUMP?speed=…'; "
        "repeat for a multi-device fleet (name members with 'device=…'; "
        "overrides --modules/--dut/--remote)",
    )
    parser.add_argument(
        "--modules",
        default="pcie_slot_12v",
        help="comma-separated sensor module keys for slots 0..3 "
        "(use 'none' to leave a slot empty)",
    )
    parser.add_argument(
        "--dut",
        default="load:8.0@12.0",
        help=f"device under test on slot 0: {DUT_SPEC_HELP}",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--direct",
        action="store_true",
        help="use the vectorised sample path instead of the byte protocol",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=f"inject link faults ({FAULT_SPEC_HELP}); protocol path only",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for the fault generator (defaults to --seed)",
    )
    if remote:
        parser.add_argument(
            "--remote",
            metavar="HOST:PORT|unix:PATH",
            default=None,
            help="read the shared stream from a running psserve daemon "
            "instead of simulating a device locally (--modules/--dut/"
            "--seed then apply on the serving side; --faults injects on "
            "the client's receive path)",
        )
        parser.add_argument(
            "--remote-window",
            type=int,
            metavar="N",
            default=0,
            help="with --remote: subscribe to server-side averaged windows "
            "of N samples instead of the raw 20 kHz stream",
        )
    if metrics:
        parser.add_argument(
            "--metrics",
            metavar="PATH",
            default=None,
            help="write a metrics file on exit (.prom: Prometheus text, "
            "otherwise one JSON snapshot line is appended)",
        )


def build_setup(
    args: argparse.Namespace,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
):
    if getattr(args, "devices", None):
        from repro.core.fleet import FleetSetup

        return FleetSetup(args.devices, registry=registry, tracer=tracer)
    if getattr(args, "remote", None):
        from repro.server.client import RemoteSetup

        if args.direct:
            raise ConfigurationError(
                "--remote streams device bytes; it cannot combine with --direct"
            )
        window = getattr(args, "remote_window", 0) or 0
        return RemoteSetup(
            args.remote,
            mode="window" if window > 1 else "raw",
            window=max(window, 1),
            faults=getattr(args, "faults", None),
            fault_seed=getattr(args, "fault_seed", None) or 0,
            registry=registry,
            tracer=tracer,
        )
    setup = SimulatedSetup(
        parse_module_keys(args.modules),
        seed=args.seed,
        direct=args.direct,
        faults=getattr(args, "faults", None),
        fault_seed=getattr(args, "fault_seed", None),
        registry=registry,
        tracer=tracer,
    )
    rail = _build_rail(args.dut, args.seed)
    if rail is not None:
        for channel in setup.baseboard.populated_slots():
            setup.connect(channel.slot, rail)
            break
    return setup


def setup_fleet(setup):
    """The setup's :class:`~repro.core.fleet.Fleet`, or ``None``.

    CLI bodies use this to branch between the single-bench path and the
    fleet-aggregating path after :func:`build_setup`.
    """
    return getattr(setup, "fleet", None)


def _build_rail(dut: str, seed: int):
    """CLI shim over :func:`repro.dut.rails.build_rail` (argparse-style exit)."""
    try:
        return build_rail(dut, seed)
    except ConfigurationError as error:
        raise SystemExit(f"unknown --dut spec {dut!r}") from error
