"""Shared CLI plumbing: build a simulated bench from command-line flags.

The real tools take a serial device path; the simulated ones take a bench
description instead (``--modules``, ``--dut``) and assemble the same
objects the library API exposes.
"""

from __future__ import annotations

import argparse

from repro.core.setup import SimulatedSetup
from repro.dut.base import ConstantRail
from repro.dut.gpu import Gpu, KernelLaunch
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail


def add_device_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--modules",
        default="pcie_slot_12v",
        help="comma-separated sensor module keys for slots 0..3 "
        "(use 'none' to leave a slot empty)",
    )
    parser.add_argument(
        "--dut",
        default="load:8.0@12.0",
        help="device under test on slot 0: 'load:<amps>@<volts>', "
        "'gpu:<key>' (repeating synthetic workload), or 'none'",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--direct",
        action="store_true",
        help="use the vectorised sample path instead of the byte protocol",
    )


def build_setup(args: argparse.Namespace) -> SimulatedSetup:
    keys = [
        None if key.strip().lower() in ("none", "") else key.strip()
        for key in args.modules.split(",")
    ]
    setup = SimulatedSetup(keys, seed=args.seed, direct=args.direct)
    rail = _build_rail(args.dut, args.seed)
    if rail is not None:
        for channel in setup.baseboard.populated_slots():
            setup.connect(channel.slot, rail)
            break
    return setup


def _build_rail(dut: str, seed: int):
    dut = dut.strip().lower()
    if dut in ("none", ""):
        return None
    if dut.startswith("load:"):
        spec = dut.split(":", 1)[1]
        amps_text, _, volts_text = spec.partition("@")
        load = ElectronicLoad()
        load.set_current(float(amps_text))
        return LoadedSupplyRail(LabSupply(float(volts_text or 12.0)), load)
    if dut.startswith("gpu:"):
        key = dut.split(":", 1)[1] or "rtx4000ada"
        gpu = Gpu(key)
        # A repeating 2-second synthetic workload with 1 s of idle between.
        for k in range(20):
            gpu.launch(
                KernelLaunch(start=1.0 + 3.0 * k, duration=2.0, n_waves=8)
            )
        trace = gpu.render(t_end=62.0, dt=5e-4)
        return gpu.rails(trace)["ext_12v"]
    if dut.startswith("const:"):
        spec = dut.split(":", 1)[1]
        amps_text, _, volts_text = spec.partition("@")
        return ConstantRail(float(volts_text or 12.0), float(amps_text))
    raise SystemExit(f"unknown --dut spec {dut!r}")
