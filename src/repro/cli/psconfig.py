"""psconfig: read or write sensor configuration values.

Simulation analogue of the paper's ``psconfig`` executable: after
installing firmware, this tool writes the conversion values (and is the
front-end of the guided calibration procedure); it can also reboot the
device, optionally to DFU mode.
"""

from __future__ import annotations

import argparse

from repro.calibration.procedure import calibrate_all
from repro.cli.common import (
    add_device_arguments,
    build_setup,
    run_with_diagnostics,
    setup_fleet,
)
from repro.common.errors import ConfigurationError
from repro.firmware.commands import Command
from repro.observability import MetricsRegistry, Tracer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="psconfig", description="Configure a PowerSensor3 device."
    )
    add_device_arguments(parser)
    parser.add_argument("--sensor", type=int, help="sensor index (0..7) to modify")
    parser.add_argument("--name", help="set the sensor name")
    parser.add_argument("--pair-name", help="set the pair name")
    parser.add_argument("--vref", type=float, help="set the reference voltage")
    parser.add_argument("--slope", type=float, help="set sensitivity/gain")
    parser.add_argument(
        "--enable", choices=("on", "off"), help="enable or disable the sensor"
    )
    parser.add_argument(
        "--calibrate",
        action="store_true",
        help="run the guided one-time calibration on all populated slots",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=128 * 1024,
        help="samples to average per calibration point (paper: 128k)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="sweep each calibrated slot and check it against its error budget",
    )
    parser.add_argument("--reboot", action="store_true", help="reboot the device")
    parser.add_argument(
        "--dfu", action="store_true", help="reboot into DFU mode (firmware upload)"
    )
    args = parser.parse_args(argv)
    registry = MetricsRegistry()
    tracer = Tracer(registry)
    return run_with_diagnostics(
        "psconfig",
        lambda: _configure(args, registry, tracer),
        metrics_path=args.metrics,
        registry=registry,
        tracer=tracer,
    )


def _configure(
    args: argparse.Namespace, registry: MetricsRegistry, tracer: Tracer
) -> int:
    setup = build_setup(args, registry, tracer)
    try:
        fleet = setup_fleet(setup)
        if fleet is not None:
            return _apply_fleet(args, fleet)
        return _apply(args, setup)
    finally:
        setup.close()


def _apply_fleet(args: argparse.Namespace, fleet) -> int:
    """Read or write sensor configuration on every fleet device."""
    if args.calibrate or args.verify or args.reboot or args.dfu:
        raise ConfigurationError(
            "--calibrate/--verify/--reboot operate on one local bench; "
            "run psconfig against a single device instead of --device specs"
        )
    if args.sensor is None:
        raise ConfigurationError("--device needs --sensor to read or write")
    changes = _collect_changes(args)
    for name, member in fleet.members.items():
        if not changes:
            print(f"{name}: {member.ps.get_config(args.sensor)}")
        else:
            cfg = member.ps.set_config(args.sensor, **changes)
            print(f"{name}: sensor {args.sensor} updated: {cfg}")
    return 0


def _collect_changes(args: argparse.Namespace) -> dict:
    changes = {}
    if args.name is not None:
        changes["name"] = args.name
    if args.pair_name is not None:
        changes["pair_name"] = args.pair_name
    if args.vref is not None:
        changes["vref"] = args.vref
    if args.slope is not None:
        changes["slope"] = args.slope
    if args.enable is not None:
        changes["enabled"] = args.enable == "on"
    return changes


def _apply(args: argparse.Namespace, setup) -> int:
    ps = setup.ps

    if args.calibrate:
        print(f"calibrating with {args.samples} samples per point...")
        results = calibrate_all(setup.baseboard, setup.eeprom, n_samples=args.samples)
        for result in results:
            print(
                f"  slot {result.slot}: vref={result.vref_volts:.5f} V "
                f"(offset {result.offset_correction_volts * 1e3:+.2f} mV), "
                f"voltage gain={result.voltage_gain:.5f}"
            )
        ps.source.refresh_configs()

    if args.verify:
        from repro.calibration.verification import verify_all

        print("verifying calibration against the worst-case error budget...")
        for report in verify_all(setup.baseboard, setup.eeprom):
            verdict = "PASS" if report.passed else "FAIL"
            print(
                f"  slot {report.slot}: worst mean error "
                f"{report.worst_mean_error:.3f} W, worst sample error "
                f"{report.worst_sample_error:.3f} W "
                f"(budget ±{report.bound_watts:.2f} W) -> {verdict}"
            )

    if args.sensor is not None:
        changes = _collect_changes(args)
        if not changes:
            cfg = ps.get_config(args.sensor)
            print(cfg)
        else:
            cfg = ps.set_config(args.sensor, **changes)
            print(f"sensor {args.sensor} updated: {cfg}")

    if args.reboot or args.dfu:
        if setup.link is not None:
            command = Command.REBOOT_DFU if args.dfu else Command.REBOOT
            setup.link.write(command.value)
            mode = "DFU mode" if args.dfu else "normal mode"
            print(f"device rebooted to {mode}")
        else:
            print("direct-path bench has no device to reboot")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
