"""Columnar telemetry storage for sample streams (``docs/storage.md``).

The package splits along the write/read/feed axes:

* :mod:`repro.store.format` — the on-disk bytes: sealed memory-mapped
  segments (per-column arrays, seal-time downsampling tiers, CRC
  footer) and the CRC-chunked active journal.
* :mod:`repro.store.store` — :class:`TelemetryStore`: append/seal/roll,
  tier-aware ``query(t0, t1, max_points)``, retention and open-time
  crash recovery with quarantine.
* :mod:`repro.store.ingest` — dump import and SampleSource tailing.
* :mod:`repro.store.source` — the ``store://`` replay device
  (imported lazily by ``create_source``; importing it registers the
  scheme).
"""

from repro.store.format import DEFAULT_TIER_FACTORS, SealedSegment
from repro.store.ingest import import_dump, tail_source
from repro.store.store import StoreQueryResult, TelemetryStore

__all__ = [
    "DEFAULT_TIER_FACTORS",
    "SealedSegment",
    "StoreQueryResult",
    "TelemetryStore",
    "import_dump",
    "tail_source",
]
