"""On-disk formats of the columnar telemetry store.

Two file kinds live in a store directory (see ``docs/storage.md`` for
the byte-level diagrams):

* **Sealed segments** (``seg-NNNNNN.seg``) — immutable, memory-mapped
  query files.  After an 8-byte magic comes one contiguous little-endian
  ``f8`` array per column per tier (times, then each stored sensor
  column, then packed marker bits), a JSON *meta* block holding every
  array's byte offset plus the segment's time index (``t0``/``t1``),
  and a fixed footer: ``meta_len (u32) | crc32 (u32) | b"PSS1"``.  The
  footer CRC covers the meta block, so opening a segment is O(meta) no
  matter how many samples it holds; each tier's byte region carries its
  own CRC *in* the meta, verified the first time that tier is read —
  a query checksums exactly the bytes it serves, and corrupt data is
  detected before a single damaged row can escape.  Tier 1 is the raw
  samples; coarser tiers carry per-bucket min/mean/max envelopes (and
  bucket mean times / any-marker bits) computed once at seal time.

* **The active journal** (``seg-NNNNNN.jrnl``) — the append-only
  write-ahead file of the segment currently being filled.  A CRC'd JSON
  header (columns, device, rate) is followed by self-delimiting chunks,
  each ``n_rows (u32) | crc32 (u32) | payload``.  Recovery walks the
  chunks and keeps the longest valid prefix: a crash (or a fuzzer)
  truncating or flipping bits in the tail loses at most the damaged
  chunks, never the samples before them, and never yields corrupt rows.

Everything here is pure encode/decode; policy (rolling, retention,
quarantine) lives in :mod:`repro.store.store`.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.common.errors import StoreError
from repro.hardware.eeprom import SENSORS

FORMAT_VERSION = 2
SEGMENT_MAGIC = b"PSSTSEG1"
SEGMENT_TAIL = b"PSS1"
JOURNAL_MAGIC = b"PSSTJRN1"

#: Downsampling factors computed at seal time (tier 1, the raw samples,
#: is always present).  Two coarse tiers keep any zoom level within a
#: 64x read amplification of the ideal row count.
DEFAULT_TIER_FACTORS = (64, 4096)

_FOOTER = struct.Struct("<II")  # meta length, CRC-32 of the meta block
_JHEAD = struct.Struct("<II")  # header JSON length, CRC-32 of the header JSON
_JCHUNK = struct.Struct("<II")  # chunk row count, CRC-32 of the chunk payload
_F8 = np.dtype("<f8")


def _align(n: int) -> int:
    return (n + 7) & ~7


def _packed_len(rows: int) -> int:
    return (rows + 7) // 8


class _Layout:
    """Accumulates array blobs and records their 8-aligned offsets."""

    def __init__(self, base: int) -> None:
        self.parts: list[bytes] = []
        self.offset = base

    def put(self, data: bytes) -> int:
        at = self.offset
        self.parts.append(data)
        self.offset += len(data)
        pad = _align(self.offset) - self.offset
        if pad:
            self.parts.append(b"\x00" * pad)
            self.offset += pad
        return at


def compute_tier(
    times: np.ndarray, values: np.ndarray, markers: np.ndarray, factor: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Downsample raw rows into ``factor``-sized buckets.

    Returns ``(times, mins, means, maxs, markers)``: bucket mean times,
    per-column min/mean/max over each bucket (``values`` is ``(n,
    n_cols)``), and the bucket's any-marker flag.  The final bucket may
    be partial; its statistics cover only the rows it holds.
    """
    n = times.size
    edges = np.arange(0, n, factor, dtype=np.int64)
    counts = np.diff(np.append(edges, n)).astype(float)
    t_mean = np.add.reduceat(times, edges) / counts
    mins = np.minimum.reduceat(values, edges, axis=0)
    means = np.add.reduceat(values, edges, axis=0) / counts[:, None]
    maxs = np.maximum.reduceat(values, edges, axis=0)
    any_marker = np.maximum.reduceat(markers.astype(np.uint8), edges).astype(bool)
    return t_mean, mins, means, maxs, any_marker


def encode_segment(
    times: np.ndarray,
    values: np.ndarray,
    markers: np.ndarray,
    *,
    columns: list[int],
    enabled: np.ndarray,
    tier_factors: tuple[int, ...] = DEFAULT_TIER_FACTORS,
    sample_rate: float = 0.0,
    device: str | None = None,
    pair_names: list[str] | None = None,
) -> bytes:
    """Encode raw rows into one sealed segment file image.

    ``values`` is ``(n, len(columns))``: only the stored sensor columns,
    in ``columns`` order (the query layer reconstructs the full sensor
    width with zeros for the rest).
    """
    n = int(times.size)
    if n == 0:
        raise StoreError("cannot seal an empty segment")
    if values.shape != (n, len(columns)):
        raise StoreError(
            f"values shape {values.shape} does not match {n} rows x "
            f"{len(columns)} columns"
        )
    layout = _Layout(len(SEGMENT_MAGIC))
    tiers_meta: list[dict] = []

    def put_cols(matrix: np.ndarray) -> list[int]:
        return [
            layout.put(np.ascontiguousarray(matrix[:, j], dtype=_F8).tobytes())
            for j in range(matrix.shape[1])
        ]

    def seal_region(tier: dict, start: int, first_part: int) -> dict:
        # Each tier's contiguous byte region carries its own CRC so a
        # reader verifies only the tiers it actually serves from.
        tier["start"] = start
        tier["end"] = layout.offset
        tier["crc"] = zlib.crc32(b"".join(layout.parts[first_part:])) & 0xFFFFFFFF
        return tier

    start, first = layout.offset, len(layout.parts)
    tiers_meta.append(
        seal_region(
            {
                "factor": 1,
                "n": n,
                "times": layout.put(np.ascontiguousarray(times, dtype=_F8).tobytes()),
                "values": put_cols(values),
                "markers": layout.put(
                    np.packbits(np.asarray(markers, dtype=bool)).tobytes()
                ),
            },
            start,
            first,
        )
    )
    for factor in tier_factors:
        t_mean, mins, means, maxs, any_marker = compute_tier(
            times, values, markers, factor
        )
        start, first = layout.offset, len(layout.parts)
        tiers_meta.append(
            seal_region(
                {
                    "factor": int(factor),
                    "n": int(t_mean.size),
                    "times": layout.put(
                        np.ascontiguousarray(t_mean, dtype=_F8).tobytes()
                    ),
                    "min": put_cols(mins),
                    "mean": put_cols(means),
                    "max": put_cols(maxs),
                    "markers": layout.put(np.packbits(any_marker).tobytes()),
                },
                start,
                first,
            )
        )

    meta = {
        "version": FORMAT_VERSION,
        "n": n,
        "t0": float(times[0]),
        "t1": float(times[-1]),
        "sample_rate": float(sample_rate),
        "device": device,
        "pair_names": list(pair_names or []),
        "enabled": [bool(e) for e in np.asarray(enabled, dtype=bool)],
        "columns": [int(c) for c in columns],
        "tiers": tiers_meta,
    }
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    body = b"".join([SEGMENT_MAGIC, *layout.parts, meta_bytes])
    crc = zlib.crc32(meta_bytes + struct.pack("<I", len(meta_bytes))) & 0xFFFFFFFF
    return body + _FOOTER.pack(len(meta_bytes), crc) + SEGMENT_TAIL


class SealedSegment:
    """A memory-mapped sealed segment with lazily CRC-verified tiers.

    Opening validates the structure (magic, tail, footer, the meta CRC
    and every array offset) in O(meta); each tier's data region is
    verified against its own CRC the first time it is read, so a tiered
    query over a multi-hundred-megabyte segment touches — and checksums
    — only the bytes of the coarse tier it serves.  A read from a
    damaged region raises :class:`StoreError` before any row escapes.
    Column arrays are exposed as zero-copy views into the mapping;
    callers must copy any slice that outlives :meth:`close`.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            import mmap

            self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as error:  # zero-byte or unmappable file
            self._file.close()
            raise StoreError(f"segment {self.path} cannot be mapped: {error}") from error
        try:
            self.meta = self._validate()
        except StoreError:
            self.close()
            raise
        self.n = int(self.meta["n"])
        self.t0 = float(self.meta["t0"])
        self.t1 = float(self.meta["t1"])
        self.columns: list[int] = [int(c) for c in self.meta["columns"]]
        self.enabled = np.asarray(self.meta["enabled"], dtype=bool)
        self.sample_rate = float(self.meta.get("sample_rate", 0.0))
        self.device = self.meta.get("device")
        self.pair_names: list[str] = list(self.meta.get("pair_names", []))
        self._tiers = {int(t["factor"]): t for t in self.meta["tiers"]}
        self._verified: set[int] = set()

    def _validate(self) -> dict:
        mm = self._mm
        size = len(mm)
        floor = len(SEGMENT_MAGIC) + _FOOTER.size + len(SEGMENT_TAIL)
        if size < floor:
            raise StoreError(f"segment {self.path} is truncated ({size} bytes)")
        if mm[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
            raise StoreError(f"segment {self.path} has a bad magic")
        if mm[size - len(SEGMENT_TAIL) :] != SEGMENT_TAIL:
            raise StoreError(f"segment {self.path} has a bad tail magic")
        meta_len, crc = _FOOTER.unpack_from(mm, size - floor + len(SEGMENT_MAGIC))
        meta_start = size - floor + len(SEGMENT_MAGIC) - meta_len
        if meta_len <= 0 or meta_start < len(SEGMENT_MAGIC):
            raise StoreError(f"segment {self.path} has an implausible meta length")
        meta_bytes = bytes(mm[meta_start : meta_start + meta_len])
        covered = meta_bytes + struct.pack("<I", meta_len)
        if zlib.crc32(covered) & 0xFFFFFFFF != crc:
            raise StoreError(f"segment {self.path} failed its meta CRC check")
        try:
            meta = json.loads(meta_bytes)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise StoreError(f"segment {self.path} has unreadable meta: {error}") from error
        if meta.get("version") != FORMAT_VERSION:
            raise StoreError(
                f"segment {self.path} has format version {meta.get('version')!r}, "
                f"expected {FORMAT_VERSION}"
            )
        # The meta CRC proves the index is intact; the offset bounds
        # prove it was written for a file of this size, not grafted from
        # another.  Tier data is CRC-verified lazily, on first read.
        for tier in meta.get("tiers", []):
            rows = int(tier["n"])
            offsets = [tier["times"], tier["markers"]]
            for key in ("values", "min", "mean", "max"):
                offsets.extend(tier.get(key, []))
            for off in offsets:
                if not len(SEGMENT_MAGIC) <= int(off) <= meta_start:
                    raise StoreError(
                        f"segment {self.path} has an out-of-range array offset"
                    )
            if int(tier["times"]) + 8 * rows > meta_start:
                raise StoreError(f"segment {self.path} has an oversized tier")
            region_ok = (
                len(SEGMENT_MAGIC) <= int(tier.get("start", -1))
                and int(tier["start"]) <= int(tier.get("end", -1))
                and int(tier["end"]) <= meta_start
                and isinstance(tier.get("crc"), int)
            )
            if not region_ok:
                raise StoreError(f"segment {self.path} has a malformed tier region")
        return meta

    @property
    def nbytes(self) -> int:
        return len(self._mm)

    @property
    def tier_factors(self) -> list[int]:
        return sorted(self._tiers)

    def tier_rows(self, factor: int) -> int:
        return int(self._tiers[factor]["n"])

    def _f8(self, offset: int, count: int) -> np.ndarray:
        return np.frombuffer(self._mm, dtype=_F8, count=count, offset=int(offset))

    def _bits(self, offset: int, total: int, lo: int, hi: int) -> np.ndarray:
        if hi <= lo:
            return np.zeros(0, dtype=bool)
        b0, b1 = lo // 8, _packed_len(hi)
        raw = np.frombuffer(self._mm, dtype=np.uint8, count=b1 - b0, offset=int(offset) + b0)
        return np.unpackbits(raw)[lo - 8 * b0 : hi - 8 * b0].astype(bool)

    def times(self, factor: int = 1) -> np.ndarray:
        tier = self._tiers[factor]
        return self._f8(tier["times"], tier["n"])

    def search(self, t: float, side: str = "left", factor: int = 1) -> int:
        return int(np.searchsorted(self.times(factor), t, side=side))

    def tier_region(self, factor: int) -> tuple[int, int]:
        """The tier's contiguous byte range ``[start, end)`` in the file."""
        tier = self._tiers[factor]
        return int(tier["start"]), int(tier["end"])

    def verify_tier(self, factor: int) -> None:
        """Check a tier's region CRC (once; later calls are free).

        Raises :class:`StoreError` on a mismatch.  Reads call this
        before returning any data, so corruption in the mapped file is
        detected before a single damaged row escapes.
        """
        if factor in self._verified:
            return
        tier = self._tiers[factor]
        region = memoryview(self._mm)[int(tier["start"]) : int(tier["end"])]
        try:
            ok = zlib.crc32(region) & 0xFFFFFFFF == int(tier["crc"])
        finally:
            region.release()  # a live export would make mmap.close() raise
        if not ok:
            raise StoreError(
                f"segment {self.path} failed the tier {factor} data CRC check"
            )
        self._verified.add(factor)

    def read_raw(
        self, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rows ``[lo, hi)`` of tier 1: (times, values ``(k, n_cols)``, markers)."""
        self.verify_tier(1)
        tier = self._tiers[1]
        k = max(hi - lo, 0)
        values = np.empty((k, len(self.columns)))
        for j, off in enumerate(tier["values"]):
            values[:, j] = self._f8(off + 8 * lo, k)
        return (
            self._f8(tier["times"] + 8 * lo, k).copy(),
            values,
            self._bits(tier["markers"], tier["n"], lo, hi),
        )

    def read_tier(
        self, factor: int, lo: int = 0, hi: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Buckets ``[lo, hi)`` of a coarse tier: (times, min, mean, max, markers)."""
        self.verify_tier(factor)
        tier = self._tiers[factor]
        if hi is None:
            hi = int(tier["n"])
        k = max(hi - lo, 0)

        def cols(key: str) -> np.ndarray:
            out = np.empty((k, len(self.columns)))
            for j, off in enumerate(tier[key]):
                out[:, j] = self._f8(off + 8 * lo, k)
            return out

        return (
            self._f8(tier["times"] + 8 * lo, k).copy(),
            cols("min"),
            cols("mean"),
            cols("max"),
            self._bits(tier["markers"], tier["n"], lo, hi),
        )

    def close(self) -> None:
        if not self._mm.closed:
            self._mm.close()
        if not self._file.closed:
            self._file.close()


# --------------------------------------------------------------------- #
# The active journal                                                    #
# --------------------------------------------------------------------- #


def encode_journal_header(header: dict) -> bytes:
    """The journal preamble: magic, then a CRC'd JSON header."""
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return JOURNAL_MAGIC + _JHEAD.pack(len(payload), zlib.crc32(payload)) + payload


def encode_journal_chunk(
    times: np.ndarray, values: np.ndarray, markers: np.ndarray
) -> bytes:
    """One self-delimiting chunk: row count, payload CRC, then the rows.

    The payload is row-major (times, then the ``(n, n_cols)`` value
    matrix, then packed marker bits) — a write-ahead layout optimised
    for appending whole blocks, not for querying; seal time transposes
    into the columnar segment form.
    """
    n = int(times.size)
    payload = b"".join(
        (
            np.ascontiguousarray(times, dtype=_F8).tobytes(),
            np.ascontiguousarray(values, dtype=_F8).tobytes(),
            np.packbits(np.asarray(markers, dtype=bool)).tobytes(),
        )
    )
    return _JCHUNK.pack(n, zlib.crc32(payload)) + payload


def read_journal(
    path: str | Path,
) -> tuple[dict | None, np.ndarray, np.ndarray, np.ndarray, bool]:
    """Recover a journal: the longest valid prefix of its chunks.

    Returns ``(header, times, values, markers, damaged)``.  ``header``
    is ``None`` when the preamble itself is unreadable (nothing can be
    salvaged); ``damaged`` is True whenever any byte of the file had to
    be discarded — a truncated or bit-flipped tail, a trailing partial
    chunk, or garbage after the last valid chunk.
    """
    raw = Path(path).read_bytes()
    empty = (np.zeros(0), np.zeros((0, 0)), np.zeros(0, dtype=bool))
    base = len(JOURNAL_MAGIC) + _JHEAD.size
    if len(raw) < base or raw[: len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
        return (None, *empty, True)
    hlen, hcrc = _JHEAD.unpack_from(raw, len(JOURNAL_MAGIC))
    if hlen <= 0 or base + hlen > len(raw):
        return (None, *empty, True)
    hbytes = raw[base : base + hlen]
    if zlib.crc32(hbytes) != hcrc:
        return (None, *empty, True)
    try:
        header = json.loads(hbytes)
        columns = [int(c) for c in header["columns"]]
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError):
        return (None, *empty, True)

    n_cols = len(columns)
    times_parts: list[np.ndarray] = []
    value_parts: list[np.ndarray] = []
    marker_parts: list[np.ndarray] = []
    offset = base + hlen
    damaged = False
    while offset < len(raw):
        if offset + _JCHUNK.size > len(raw):
            damaged = True
            break
        rows, crc = _JCHUNK.unpack_from(raw, offset)
        payload_len = 8 * rows * (1 + n_cols) + _packed_len(rows)
        start = offset + _JCHUNK.size
        if rows == 0 or start + payload_len > len(raw):
            damaged = True
            break
        payload = raw[start : start + payload_len]
        if zlib.crc32(payload) != crc:
            damaged = True
            break
        times_parts.append(np.frombuffer(payload, dtype=_F8, count=rows))
        value_parts.append(
            np.frombuffer(payload, dtype=_F8, count=rows * n_cols, offset=8 * rows)
            .reshape(rows, n_cols)
            .copy()
        )
        marker_parts.append(
            np.unpackbits(
                np.frombuffer(payload, dtype=np.uint8, offset=8 * rows * (1 + n_cols)),
                count=rows,
            ).astype(bool)
        )
        offset = start + payload_len
    if not times_parts:
        return (header, np.zeros(0), np.zeros((0, n_cols)), empty[2], damaged)
    return (
        header,
        np.concatenate(times_parts),
        np.vstack(value_parts),
        np.concatenate(marker_parts),
        damaged,
    )
