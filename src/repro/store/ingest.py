"""Feeding a telemetry store: dump import and SampleSource tailing.

``import_dump`` upgrades a fixed-width text dump
(:class:`~repro.core.dump.DumpReader`) into a queryable store, mapping
the dump exactly the way ``replay://`` does — recorded pairs land on
sensors ``0..2n-1`` and markers on the sample at/after their timestamp —
so a dump streamed back through ``store://`` is bit-identical to the
same dump through ``replay://``.

``tail_source`` pulls any live :class:`~repro.core.sources.SampleSource`
into a store block-by-block (the pull-loop twin of the hooks inside
:meth:`~repro.core.powersensor.PowerSensor.record` and the psserve
pump).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.dump import DumpReader
from repro.core.replay import map_markers
from repro.core.sources import SampleBlock, SampleSource
from repro.hardware.eeprom import SENSORS
from repro.observability import MetricsRegistry, Tracer
from repro.store.store import TelemetryStore

#: Rows appended per block while importing (bounds peak journal-chunk size).
IMPORT_BLOCK = 65536


def import_dump(
    dump_path: str | Path,
    store_path: str | Path,
    *,
    roll_samples: int = 1_000_000,
    tier_factors: tuple[int, ...] | None = None,
    device: str | None = None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> TelemetryStore:
    """Import a text dump into a (possibly new) store; returns it open.

    The returned store is sealed (every imported row is in a sealed,
    tiered segment) but still open for queries or further appends; the
    caller owns closing it.
    """
    data = DumpReader.read(dump_path)
    n = data.times.size
    n_pairs = len(data.pair_names)
    enabled = np.zeros(SENSORS, dtype=bool)
    enabled[: 2 * n_pairs] = True
    values = np.zeros((n, SENSORS))
    values[:, 0 : 2 * n_pairs : 2] = data.amps
    values[:, 1 : 2 * n_pairs : 2] = data.volts
    markers = map_markers(data.times, data.markers) if n else np.zeros(0, dtype=bool)

    kwargs = {} if tier_factors is None else {"tier_factors": tier_factors}
    store = TelemetryStore(
        store_path,
        roll_samples=roll_samples,
        device=device,
        sample_rate=float(data.sample_rate_hz),
        pair_names=list(data.pair_names),
        registry=registry,
        tracer=tracer,
        **kwargs,
    )
    for start in range(0, n, IMPORT_BLOCK):
        stop = min(start + IMPORT_BLOCK, n)
        store.append(
            SampleBlock(
                times=data.times[start:stop],
                values=values[start:stop],
                markers=markers[start:stop],
                enabled=enabled,
            )
        )
    store.seal()
    return store


def tail_source(
    source: SampleSource,
    store: TelemetryStore,
    n_samples: int,
    block_size: int = 4096,
) -> int:
    """Pull ``n_samples`` from a source into the store; returns the count.

    Stops early if the source runs dry (a finite tape).  The source is
    started if it is not already streaming; the caller owns stopping it.
    """
    if not getattr(source, "streaming", False):
        source.start()
    taken = 0
    while taken < n_samples:
        block = source.read_block(min(block_size, n_samples - taken))
        if len(block) == 0:
            break
        store.append(block)
        taken += len(block)
    return taken
