"""The columnar telemetry store: append, seal, query, retain, recover.

:class:`TelemetryStore` owns a directory of sealed segments (see
:mod:`repro.store.format`) plus at most one active journal.  Samples
append to the journal (and to an in-memory mirror of it); once
``roll_samples`` rows accumulate the journal seals into an immutable
segment with its downsampling tiers and CRC footer.  Queries pick the
coarsest tier that still satisfies ``max_points`` — a zoomed-out view
over a hundred-million-sample store reads kilobytes, not gigabytes —
and exact (tier 1) queries reproduce the appended rows bit-for-bit.

Opening a store *is* crash recovery: sealed segments that fail their
CRC are quarantined (renamed ``*.quarantine``) rather than served or
deleted, and a leftover journal is salvaged chunk-by-chunk and sealed,
so a crashed writer loses at most the damaged tail of its last file.
Every recovery action increments ``store_segments_recovered_total`` —
the store never crashes on damage and never silently returns corrupt
rows.

Retention prunes whole sealed segments, oldest first, by age
(``retention_seconds`` behind the newest sample) or by byte budget
(``retention_bytes`` across sealed files).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common.errors import ConfigurationError, StoreError
from repro.core.sources import SampleBlock
from repro.hardware.eeprom import SENSORS
from repro.observability import MetricsRegistry, Tracer
from repro.store.format import (
    DEFAULT_TIER_FACTORS,
    SealedSegment,
    encode_journal_chunk,
    encode_journal_header,
    encode_segment,
    read_journal,
)

_SEGMENT_RE = re.compile(r"^seg-(\d{6})\.seg$")
_JOURNAL_RE = re.compile(r"^seg-(\d{6})\.jrnl$")


@dataclass
class StoreQueryResult:
    """One answered time-range query.

    ``values`` is the full ``(k, SENSORS)`` matrix (unstored columns are
    zero); at ``factor == 1`` the rows are exact samples and ``vmin is
    vmax is values``.  At coarser factors each row is a bucket of about
    ``factor`` raw samples: ``values`` carries bucket means, ``vmin`` /
    ``vmax`` the envelope, ``markers`` the bucket's any-marker flag and
    ``times`` the bucket mean time.  ``n_source`` counts the raw samples
    the result covers.
    """

    times: np.ndarray
    values: np.ndarray
    vmin: np.ndarray
    vmax: np.ndarray
    markers: np.ndarray
    enabled: np.ndarray
    factor: int
    n_source: int

    def __len__(self) -> int:
        return int(self.times.size)

    def total_power(self) -> np.ndarray:
        """Mean total power per row (exact at factor 1)."""
        return (self.values[:, 0::2] * self.values[:, 1::2]).sum(axis=1)


class TelemetryStore:
    """An append-only segment store for one device's sample stream."""

    def __init__(
        self,
        path: str | Path,
        *,
        roll_samples: int = 1_000_000,
        tier_factors: tuple[int, ...] = DEFAULT_TIER_FACTORS,
        retention_seconds: float | None = None,
        retention_bytes: int | None = None,
        device: str | None = None,
        sample_rate: float = 0.0,
        pair_names: list[str] | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if roll_samples < 1:
            raise ConfigurationError(f"roll_samples must be >= 1, got {roll_samples}")
        factors = tuple(int(f) for f in tier_factors)
        if any(f < 2 for f in factors) or list(factors) != sorted(set(factors)):
            raise ConfigurationError(
                f"tier factors must be distinct, ascending and >= 2, got {tier_factors}"
            )
        self.path = Path(path)
        self.roll_samples = int(roll_samples)
        self.tier_factors = factors
        self.retention_seconds = retention_seconds
        self.retention_bytes = retention_bytes
        self.device = device
        self.sample_rate = float(sample_rate)
        self.pair_names = list(pair_names or [])
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        labels = {"device": device} if device else {}
        self._appended_counter = self.registry.counter(
            "store_samples_appended_total",
            help="samples appended to the telemetry store",
            **labels,
        )
        self._sealed_counter = self.registry.counter(
            "store_segments_sealed_total",
            help="journals sealed into immutable segments",
            **labels,
        )
        self._recovered_counter = self.registry.counter(
            "store_segments_recovered_total",
            help="open-time recovery actions (quarantined segments, salvaged "
            "or quarantined journals)",
            **labels,
        )
        self._pruned_counter = self.registry.counter(
            "store_segments_pruned_total",
            help="sealed segments removed by retention",
            **labels,
        )
        self._queries_counter = self.registry.counter(
            "store_queries_total", help="time-range queries answered", **labels
        )
        self._bytes_gauge = self.registry.gauge(
            "store_bytes", help="bytes held in sealed segments", **labels
        )
        self._labels = labels

        self.segments: list[SealedSegment] = []
        self._closed = False
        self._jfile = None
        self._jpath: Path | None = None
        self._jrows = 0
        self._jenabled: np.ndarray | None = None
        self._jcolumns: list[int] = []
        self._jtimes: list[np.ndarray] = []
        self._jvalues: list[np.ndarray] = []
        self._jmarkers: list[np.ndarray] = []

        self.path.mkdir(parents=True, exist_ok=True)
        self._recover()
        if self.segments:
            # A reopened store adopts the identity it was recorded with.
            newest = self.segments[-1]
            if not self.sample_rate:
                self.sample_rate = float(newest.sample_rate)
            if not self.pair_names:
                self.pair_names = list(newest.pair_names)
            if self.device is None:
                self.device = newest.device
        self._update_bytes_gauge()

    # ------------------------------------------------------------------ #
    # Recovery                                                           #
    # ------------------------------------------------------------------ #

    def _recover(self) -> None:
        """Open every sealed segment; salvage and seal any leftover journal."""
        sealed: list[tuple[int, Path]] = []
        journals: list[tuple[int, Path]] = []
        for entry in sorted(self.path.iterdir()):
            if entry.name.endswith(".seg.tmp"):
                entry.unlink(missing_ok=True)  # a seal that never published
                continue
            match = _SEGMENT_RE.match(entry.name)
            if match:
                sealed.append((int(match.group(1)), entry))
                continue
            match = _JOURNAL_RE.match(entry.name)
            if match:
                journals.append((int(match.group(1)), entry))
        sealed_indices = set()
        for index, path in sealed:
            try:
                self.segments.append(SealedSegment(path))
                sealed_indices.add(index)
            except StoreError:
                self._quarantine(path)
        for index, path in journals:
            if index in sealed_indices:
                # The seal published but the crash beat the journal
                # unlink: the segment already holds these rows.
                path.unlink(missing_ok=True)
                continue
            header, times, values, markers, damaged = read_journal(path)
            if damaged:
                self._recovered_counter.inc()
            if header is None:
                self._quarantine(path, count=False)
                continue
            if times.size:
                columns = [int(c) for c in header.get("columns", [])]
                enabled = np.asarray(
                    header.get("enabled", [False] * SENSORS), dtype=bool
                )
                image = encode_segment(
                    times,
                    values,
                    markers,
                    columns=columns,
                    enabled=enabled,
                    tier_factors=self.tier_factors,
                    sample_rate=float(header.get("sample_rate", self.sample_rate)),
                    device=header.get("device", self.device),
                    pair_names=header.get("pair_names", self.pair_names),
                )
                self.segments.append(self._write_sealed(index, image))
            if damaged:
                self._quarantine(path, count=False)
            else:
                path.unlink(missing_ok=True)

    def _quarantine(self, path: Path, count: bool = True) -> None:
        """Set a damaged file aside (never delete: it may still be studied)."""
        target = path.with_name(path.name + ".quarantine")
        serial = 0
        while target.exists():
            serial += 1
            target = path.with_name(f"{path.name}.quarantine{serial}")
        path.rename(target)
        if count:
            self._recovered_counter.inc()

    def _quarantine_open(self, seg: SealedSegment) -> None:
        """Quarantine a segment whose data failed its read-time CRC."""
        seg.close()
        if seg in self.segments:
            self.segments.remove(seg)
        self._quarantine(seg.path)
        self._update_bytes_gauge()

    def _write_sealed(self, index: int, image: bytes) -> SealedSegment:
        """Atomically publish a segment image as ``seg-NNNNNN.seg``."""
        final = self.path / f"seg-{index:06d}.seg"
        tmp = final.with_suffix(".seg.tmp")
        with open(tmp, "wb") as f:
            f.write(image)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, final)
        return SealedSegment(final)

    def _next_index(self) -> int:
        used = [-1]
        for seg in self.segments:
            match = _SEGMENT_RE.match(seg.path.name)
            if match:
                used.append(int(match.group(1)))
        return max(used) + 1

    # ------------------------------------------------------------------ #
    # Appending and sealing                                              #
    # ------------------------------------------------------------------ #

    def append(self, block: SampleBlock) -> None:
        """Append one sample block; rolls the segment at ``roll_samples``."""
        if self._closed:
            raise StoreError(f"store {self.path} is closed")
        n = len(block)
        if n == 0:
            return
        enabled = np.asarray(block.enabled, dtype=bool)
        if self._jenabled is not None and not np.array_equal(enabled, self._jenabled):
            self.seal()  # the column set changed: segments are homogeneous
        if self._jfile is None:
            self._open_journal(enabled)
        values = np.ascontiguousarray(block.values[:, self._jcolumns])
        assert self._jfile is not None
        self._jfile.write(encode_journal_chunk(block.times, values, block.markers))
        self._jfile.flush()
        self._jtimes.append(np.asarray(block.times, dtype=float).copy())
        self._jvalues.append(values)
        self._jmarkers.append(np.asarray(block.markers, dtype=bool).copy())
        self._jrows += n
        self._appended_counter.inc(n)
        if self._jrows >= self.roll_samples:
            self.seal()

    def _open_journal(self, enabled: np.ndarray) -> None:
        index = self._next_index()
        self._jpath = self.path / f"seg-{index:06d}.jrnl"
        self._jenabled = enabled.copy()
        self._jcolumns = [int(c) for c in np.flatnonzero(enabled)]
        header = {
            "version": 1,
            "columns": self._jcolumns,
            "enabled": [bool(e) for e in enabled],
            "sample_rate": self.sample_rate,
            "device": self.device,
            "pair_names": self.pair_names,
        }
        self._jfile = open(self._jpath, "wb")
        self._jfile.write(encode_journal_header(header))
        self._jfile.flush()

    def seal(self) -> SealedSegment | None:
        """Seal the active journal into an immutable segment (if non-empty)."""
        if self._jfile is None:
            return None
        self._jfile.close()
        jpath, rows = self._jpath, self._jrows
        times = np.concatenate(self._jtimes) if self._jtimes else np.zeros(0)
        values = (
            np.vstack(self._jvalues)
            if self._jvalues
            else np.zeros((0, len(self._jcolumns)))
        )
        markers = (
            np.concatenate(self._jmarkers) if self._jmarkers else np.zeros(0, dtype=bool)
        )
        columns, enabled = self._jcolumns, self._jenabled
        self._reset_journal()
        if rows == 0:
            if jpath is not None:
                jpath.unlink(missing_ok=True)
            return None
        with self.tracer.span("store_seal", **self._labels):
            image = encode_segment(
                times,
                values,
                markers,
                columns=columns,
                enabled=enabled if enabled is not None else np.zeros(SENSORS, bool),
                tier_factors=self.tier_factors,
                sample_rate=self.sample_rate,
                device=self.device,
                pair_names=self.pair_names,
            )
            match = _JOURNAL_RE.match(jpath.name) if jpath is not None else None
            index = int(match.group(1)) if match else self._next_index()
            segment = self._write_sealed(index, image)
        if jpath is not None:
            jpath.unlink(missing_ok=True)
        self.segments.append(segment)
        self._sealed_counter.inc()
        self._apply_retention()
        self._update_bytes_gauge()
        return segment

    def abandon(self) -> None:
        """Drop in-memory state without sealing, as a crashed writer would.

        The active journal file stays on disk exactly as written — the
        crash-recovery tests reopen (and damage) it from here.
        """
        if self._jfile is not None and not self._jfile.closed:
            self._jfile.close()
        self._reset_journal()
        self._close_segments()
        self._closed = True

    def _reset_journal(self) -> None:
        self._jfile = None
        self._jpath = None
        self._jrows = 0
        self._jenabled = None
        self._jcolumns = []
        self._jtimes = []
        self._jvalues = []
        self._jmarkers = []

    # ------------------------------------------------------------------ #
    # Retention                                                          #
    # ------------------------------------------------------------------ #

    def _latest_time(self) -> float | None:
        latest = None
        if self._jtimes:
            latest = float(self._jtimes[-1][-1])
        elif self.segments:
            latest = max(seg.t1 for seg in self.segments)
        return latest

    def _apply_retention(self) -> None:
        if self.retention_seconds is not None and self.segments:
            latest = self._latest_time()
            if latest is not None:
                cutoff = latest - float(self.retention_seconds)
                while self.segments and self.segments[0].t1 < cutoff:
                    self._prune(self.segments.pop(0))
        if self.retention_bytes is not None:
            while (
                len(self.segments) > 1
                and sum(seg.nbytes for seg in self.segments) > self.retention_bytes
            ):
                self._prune(self.segments.pop(0))

    def _prune(self, segment: SealedSegment) -> None:
        segment.close()
        segment.path.unlink(missing_ok=True)
        self._pruned_counter.inc()

    def _update_bytes_gauge(self) -> None:
        self._bytes_gauge.set(sum(seg.nbytes for seg in self.segments))

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    @property
    def sample_count(self) -> int:
        """Raw samples currently held (sealed segments + active journal)."""
        return sum(seg.n for seg in self.segments) + self._jrows

    @property
    def nbytes(self) -> int:
        """Bytes held in sealed segments."""
        return sum(seg.nbytes for seg in self.segments)

    def time_range(self) -> tuple[float, float] | None:
        """The ``(t0, t1)`` span currently held, or None when empty."""
        t0s = [seg.t0 for seg in self.segments]
        t1s = [seg.t1 for seg in self.segments]
        if self._jtimes:
            t0s.append(float(self._jtimes[0][0]))
            t1s.append(float(self._jtimes[-1][-1]))
        if not t0s:
            return None
        return min(t0s), max(t1s)

    def query(
        self,
        t0: float | None = None,
        t1: float | None = None,
        max_points: int | None = None,
    ) -> StoreQueryResult:
        """Rows (or bucket envelopes) covering ``[t0, t1]``.

        ``max_points=None`` returns every raw sample in range, exactly
        as appended.  Otherwise the coarsest pre-computed tier that
        still resolves the range into at most ``max_points`` rows is
        read (raw if the range is small enough), with a final bucketing
        pass guaranteeing the bound.  Tier selection is approximate at
        bucket granularity: a coarse bucket straddling ``t0``/``t1`` is
        included when its mean time falls inside the range.
        """
        if max_points is not None and max_points < 1:
            raise ConfigurationError(f"max_points must be >= 1, got {max_points}")
        lo_t = float("-inf") if t0 is None else float(t0)
        hi_t = float("inf") if t1 is None else float(t1)
        self._queries_counter.inc()

        journal = self._journal_arrays()
        spans: list[tuple[SealedSegment, int, int]] = []
        n_source = 0
        for seg in self.segments:
            if seg.t1 < lo_t or seg.t0 > hi_t:
                continue
            lo = seg.search(lo_t, "left")
            hi = seg.search(hi_t, "right")
            if hi > lo:
                spans.append((seg, lo, hi))
                n_source += hi - lo
        j_span = (0, 0)
        if journal is not None:
            j_lo = int(np.searchsorted(journal[0], lo_t, side="left"))
            j_hi = int(np.searchsorted(journal[0], hi_t, side="right"))
            if j_hi > j_lo:
                j_span = (j_lo, j_hi)
                n_source += j_hi - j_lo

        factor = 1
        if max_points is not None and n_source > max_points:
            for candidate in self.tier_factors:
                factor = candidate
                if -(-n_source // candidate) <= max_points:
                    break

        with self.tracer.span("store_query", factor=str(factor), **self._labels):
            result, dropped = self._gather(spans, journal, j_span, lo_t, hi_t, factor)
        if max_points is not None and len(result) > max_points:
            result = _coarsen(result, -(-len(result) // max_points))
        result.n_source = n_source - dropped
        return result

    def _journal_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int], np.ndarray] | None:
        if not self._jtimes:
            return None
        return (
            np.concatenate(self._jtimes),
            np.vstack(self._jvalues),
            np.concatenate(self._jmarkers),
            self._jcolumns,
            self._jenabled
            if self._jenabled is not None
            else np.zeros(SENSORS, dtype=bool),
        )

    def _gather(
        self,
        spans: list[tuple[SealedSegment, int, int]],
        journal,
        j_span: tuple[int, int],
        lo_t: float,
        hi_t: float,
        factor: int,
    ) -> tuple[StoreQueryResult, int]:
        """Read the planned spans; returns (result, rows dropped to damage).

        Tier data is CRC-verified on first read: a segment whose mapped
        bytes fail the check contributes nothing, is quarantined on the
        spot, and its rows are subtracted from the caller's ``n_source``
        — damage costs the damaged segment, never a corrupt row.
        """
        times_parts: list[np.ndarray] = []
        mean_parts: list[np.ndarray] = []
        min_parts: list[np.ndarray] = []
        max_parts: list[np.ndarray] = []
        marker_parts: list[np.ndarray] = []
        enabled = np.zeros(SENSORS, dtype=bool)
        used_tier = False  # a raw-only gather reports factor 1 honestly
        damaged: list[SealedSegment] = []
        dropped = 0

        def dense(cols: list[int], matrix: np.ndarray) -> np.ndarray:
            out = np.zeros((matrix.shape[0], SENSORS))
            if cols:
                out[:, cols] = matrix
            return out

        for seg, raw_lo, raw_hi in spans:
            try:
                if factor == 1 or factor not in seg.tier_factors:
                    t, v, m = seg.read_raw(raw_lo, raw_hi)
                    d = dense(seg.columns, v)
                    vmin_d = vmean_d = vmax_d = d
                else:
                    lo = seg.search(lo_t, "left", factor)
                    hi = seg.search(hi_t, "right", factor)
                    t, vmin, vmean, vmax, m = seg.read_tier(factor, lo, hi)
                    vmin_d = dense(seg.columns, vmin)
                    vmean_d = dense(seg.columns, vmean)
                    vmax_d = dense(seg.columns, vmax)
            except StoreError:
                damaged.append(seg)
                dropped += raw_hi - raw_lo
                continue
            used_tier = used_tier or vmin_d is not vmean_d
            enabled |= seg.enabled
            times_parts.append(t)
            mean_parts.append(vmean_d)
            min_parts.append(vmin_d)
            max_parts.append(vmax_d)
            marker_parts.append(m)
        for seg in damaged:
            self._quarantine_open(seg)
        if journal is not None and j_span[1] > j_span[0]:
            j_times, j_values, j_markers, j_cols, j_enabled = journal
            enabled |= j_enabled
            lo, hi = j_span
            d = dense(j_cols, j_values[lo:hi])
            times_parts.append(j_times[lo:hi].copy())
            mean_parts.append(d)
            min_parts.append(d)
            max_parts.append(d)
            marker_parts.append(j_markers[lo:hi].copy())

        if not times_parts:
            empty = np.zeros((0, SENSORS))
            return (
                StoreQueryResult(
                    times=np.zeros(0),
                    values=empty,
                    vmin=empty,
                    vmax=empty,
                    markers=np.zeros(0, dtype=bool),
                    enabled=enabled,
                    factor=1,
                    n_source=0,
                ),
                dropped,
            )
        concat = np.concatenate
        values = concat(mean_parts) if len(mean_parts) > 1 else mean_parts[0]
        if not used_tier:
            factor = 1  # everything came back as raw rows
        if factor == 1:
            vmin = vmax = values
        else:
            vmin = concat(min_parts) if len(min_parts) > 1 else min_parts[0]
            vmax = concat(max_parts) if len(max_parts) > 1 else max_parts[0]
        return (
            StoreQueryResult(
                times=concat(times_parts) if len(times_parts) > 1 else times_parts[0],
                values=values,
                vmin=vmin,
                vmax=vmax,
                markers=(
                    concat(marker_parts) if len(marker_parts) > 1 else marker_parts[0]
                ),
                enabled=enabled,
                factor=factor,
                n_source=0,
            ),
            dropped,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Seal any active journal and release every mapping."""
        if self._closed:
            return
        self.seal()
        self._close_segments()
        self._closed = True

    def _close_segments(self) -> None:
        for seg in self.segments:
            seg.close()
        self.segments = []

    def __enter__(self) -> "TelemetryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _coarsen(result: StoreQueryResult, group: int) -> StoreQueryResult:
    """Re-bucket a gathered result by ``group`` rows to enforce max_points.

    Envelope containment is preserved exactly (min of mins, max of
    maxs); the re-bucketed mean is the equal-weight mean of the source
    rows' means, which is exact at factor 1 and approximate (partial
    final buckets weigh the same as full ones) on already-coarse rows.
    """
    n = len(result)
    edges = np.arange(0, n, group, dtype=np.int64)
    counts = np.diff(np.append(edges, n)).astype(float)
    return StoreQueryResult(
        times=np.add.reduceat(result.times, edges) / counts,
        values=np.add.reduceat(result.values, edges, axis=0) / counts[:, None],
        vmin=np.minimum.reduceat(result.vmin, edges, axis=0),
        vmax=np.maximum.reduceat(result.vmax, edges, axis=0),
        markers=np.maximum.reduceat(
            result.markers.astype(np.uint8), edges
        ).astype(bool),
        enabled=result.enabled,
        factor=result.factor * group,
        n_source=result.n_source,
    )
