"""``store://PATH?device=...`` — re-stream a telemetry store as a device.

:class:`StoreSampleSource` is the store-backed twin of
:class:`~repro.core.replay.ReplaySampleSource`: it loads the exact
(tier-1) rows of a :class:`~repro.store.store.TelemetryStore` and
re-streams them through the shared
:class:`~repro.core.replay.TapeSampleSource` machinery, so a recorded
capture plays back identically whether it travelled through a text dump
or the binary store — psplot, the fleet layer, psserve and PMT all work
unchanged.  ``t0``/``t1`` restrict playback to a time window of the
recording; ``speed`` and ``loop`` behave exactly as in ``replay://``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import MeasurementError
from repro.core.replay import TapeSampleSource
from repro.core.sources import register_source
from repro.hardware.eeprom import SENSORS, SensorConfig
from repro.observability import MetricsRegistry, Tracer
from repro.store.store import TelemetryStore


def _configs_from_store(
    enabled: np.ndarray, pair_names: list[str]
) -> list[SensorConfig]:
    """Synthesize identity-conversion configs for the stored sensors.

    Mirrors the dump-replay synthesis: fully-enabled pairs take the
    recorded pair names in order; the store keeps physical units, so
    conversion values are identity.
    """
    configs = [SensorConfig() for _ in range(SENSORS)]
    names = iter(pair_names)
    for pair in range(SENSORS // 2):
        if enabled[2 * pair] and enabled[2 * pair + 1]:
            name = next(names, f"pair{pair}")
            configs[2 * pair] = SensorConfig(
                name=f"{name}.I", pair_name=name, vref=0.0, slope=1.0, enabled=True
            )
            configs[2 * pair + 1] = SensorConfig(
                name=f"{name}.V", pair_name=name, vref=0.0, slope=1.0, enabled=True
            )
        else:
            configs[2 * pair] = SensorConfig(enabled=bool(enabled[2 * pair]))
            configs[2 * pair + 1] = SensorConfig(enabled=bool(enabled[2 * pair + 1]))
    return configs


class StoreSampleSource(TapeSampleSource):
    """Re-stream a telemetry store through the SampleSource contract."""

    def __init__(
        self,
        path: str | Path,
        speed: float = 1.0,
        loop: bool = False,
        device: str | None = None,
        t0: float | None = None,
        t1: float | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.path = str(path)
        registry = registry if registry is not None else MetricsRegistry()
        # Opening runs crash recovery; keep the handle only long enough
        # to extract the exact rows (the tape is then in memory, like a
        # replayed dump, and the mappings can be released).
        store = TelemetryStore(
            path, device=device, registry=registry, tracer=tracer
        )
        try:
            result = store.query(t0, t1, None)
            sample_rate = store.sample_rate
            pair_names = list(store.pair_names)
            for seg in store.segments:
                if seg.sample_rate > 0:
                    sample_rate = seg.sample_rate
                if seg.pair_names:
                    pair_names = list(seg.pair_names)
        finally:
            store.close()
        n = result.times.size
        window = "" if t0 is None and t1 is None else f" in [{t0}, {t1}]"
        if n == 0:
            raise MeasurementError(f"store {self.path!r} holds no samples{window}")
        if sample_rate > 0:
            native_rate = float(sample_rate)
        elif n >= 2:
            native_rate = 1.0 / float(np.median(np.diff(result.times)))
        else:
            raise MeasurementError(
                f"store {self.path!r} records no sample rate and holds too few "
                "samples to infer one"
            )
        super().__init__(
            times=result.times,
            values=result.values,
            markers=result.markers,
            configs=_configs_from_store(result.enabled, pair_names),
            native_rate=native_rate,
            speed=speed,
            loop=loop,
            device=device,
            registry=registry,
            tracer=tracer,
            label=f"{self.path!r}",
            kind="store",
        )


class StoreSetup:
    """A store-replay bench with the attribute surface the CLI tools use.

    Like :class:`~repro.core.replay.ReplaySetup`, retry recovery is
    disabled: a finite tape running dry is the normal end of the run.
    """

    def __init__(
        self,
        path: str | Path,
        speed: float = 1.0,
        loop: bool = False,
        device: str | None = None,
        t0: float | None = None,
        t1: float | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        from repro.core.powersensor import PowerSensor

        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.device = device
        self.source = StoreSampleSource(
            path,
            speed=speed,
            loop=loop,
            device=device,
            t0=t0,
            t1=t1,
            registry=self.registry,
            tracer=self.tracer,
        )
        self.ps = PowerSensor(self.source, recovery=None)

    @property
    def sample_rate(self) -> float:
        return self.source.sample_rate

    def close(self) -> None:
        self.ps.close()

    def __enter__(self) -> "StoreSetup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


register_source("store", StoreSampleSource)
