"""Exporters: JSON-lines snapshots and Prometheus text format.

Two serialisations of a :class:`~repro.observability.registry.MetricsRegistry`:

* **JSON lines** — one complete snapshot per line, appended, so a
  long-running tool leaves a time series of snapshots behind.  Each
  line is the registry snapshot plus optional recent trace spans.
* **Prometheus text format** — the ``# HELP`` / ``# TYPE`` exposition
  format, renderable from any snapshot and re-parseable
  (:func:`parse_prometheus`), which the property tests use to prove the
  rendering lossless.

:func:`write_metrics` is the CLI entry point: a ``.prom`` suffix
selects Prometheus text (overwritten in place, as a scrape target
would be), anything else appends JSON lines.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO

from repro.observability.registry import (
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    _label_key,
)
from repro.observability.spans import Tracer

# --------------------------------------------------------------------- #
# JSON lines                                                            #
# --------------------------------------------------------------------- #


def write_jsonl_snapshot(
    target: str | Path | IO[str],
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    meta: dict | None = None,
) -> None:
    """Append one snapshot line to ``target`` (path or text stream)."""
    record = dict(registry.snapshot())
    record["unix_time"] = time.time()
    if meta:
        record["meta"] = dict(meta)
    if tracer is not None and tracer.records():
        record["spans"] = [r.to_dict() for r in tracer.records()]
    line = json.dumps(record, sort_keys=True) + "\n"
    if hasattr(target, "write"):
        target.write(line)
    else:
        with open(target, "a", encoding="ascii") as stream:
            stream.write(line)


def read_jsonl_snapshots(path: str | Path) -> list[dict]:
    """All snapshot records in a JSON-lines metrics file, oldest first."""
    records = []
    with open(path, "r", encoding="ascii") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# --------------------------------------------------------------------- #
# Prometheus text format                                                #
# --------------------------------------------------------------------- #


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):  # guard: bools are ints in Python
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(source: MetricsRegistry | dict) -> str:
    """Render a registry (or snapshot) in Prometheus text format."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: list[str] = []
    announced: set[str] = set()
    for entry in snapshot.get("metrics", []):
        name = entry["name"]
        labels = entry.get("labels", {})
        if name not in announced:
            announced.add(name)
            if entry.get("help"):
                lines.append(f"# HELP {name} {_escape(entry['help'])}")
            lines.append(f"# TYPE {name} {entry['type']}")
        if entry["type"] in ("counter", "gauge"):
            lines.append(
                f"{name}{_format_labels(labels)} {_format_value(entry['value'])}"
            )
        else:  # histogram
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                bucket_labels = {**labels, "le": _format_value(float(bound))}
                lines.append(
                    f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                )
            cumulative += entry["counts"][len(entry["buckets"])]
            lines.append(
                f"{name}_bucket{_format_labels({**labels, 'le': '+Inf'})} "
                f"{cumulative}"
            )
            lines.append(
                f"{name}_sum{_format_labels(labels)} {_format_value(entry['sum'])}"
            )
            lines.append(
                f"{name}_count{_format_labels(labels)} {entry['count']}"
            )
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label in {text!r}"
        j = eq + 2
        raw = []
        while text[j] != '"':
            if text[j] == "\\":
                raw.append(text[j : j + 2])
                j += 2
            else:
                raw.append(text[j])
                j += 1
        labels[key] = _unescape("".join(raw))
        i = j + 1
    return labels


def _parse_number(token: str):
    try:
        return int(token)
    except ValueError:
        return float(token)


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text (as rendered above) back into a snapshot.

    The inverse of :func:`render_prometheus` for output it produced —
    the property tests round-trip through it.  Histogram series
    (``_bucket``/``_sum``/``_count``) are folded back into one entry.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    metrics: dict[tuple, dict] = {}

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = _unescape(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue

        if "{" in line:
            series = line[: line.index("{")]
            rest = line[line.index("{") + 1 :]
            label_text, _, value_text = rest.rpartition("} ")
            labels = _parse_labels(label_text)
        else:
            series, _, value_text = line.partition(" ")
            labels = {}
        value = _parse_number(value_text.strip())

        # Resolve the base metric this series belongs to.
        base, field = series, "value"
        for suffix in ("_bucket", "_sum", "_count"):
            candidate = series[: -len(suffix)] if series.endswith(suffix) else None
            if candidate and types.get(candidate) == "histogram":
                base, field = candidate, suffix[1:]
                break
        kind = types.get(base, "gauge")
        le = labels.pop("le", None)
        key = (base, _label_key(labels))
        entry = metrics.get(key)
        if entry is None:
            entry = {"name": base, "type": kind}
            if helps.get(base):
                entry["help"] = helps[base]
            if labels:
                entry["labels"] = dict(sorted(labels.items()))
            if kind == "histogram":
                entry.update({"buckets": [], "counts": [], "sum": 0.0, "count": 0})
                entry["_cumulative"] = []
            metrics[key] = entry

        if kind != "histogram":
            entry["value"] = value
        elif field == "bucket":
            if le == "+Inf":
                entry["_inf"] = value
            else:
                entry["buckets"].append(float(le))
                entry["_cumulative"].append(value)
        elif field == "sum":
            entry["sum"] = value if isinstance(value, float) else float(value)
        elif field == "count":
            entry["count"] = value

    # De-cumulate histogram buckets.
    for entry in metrics.values():
        if entry["type"] != "histogram":
            continue
        cumulative = entry.pop("_cumulative")
        counts, previous = [], 0
        for c in cumulative:
            counts.append(c - previous)
            previous = c
        counts.append(entry.pop("_inf", entry["count"]) - previous)
        entry["counts"] = counts

    return {
        "schema": SNAPSHOT_SCHEMA,
        "metrics": [metrics[k] for k in sorted(metrics)],
    }


# --------------------------------------------------------------------- #
# Human-readable summary + CLI entry point                              #
# --------------------------------------------------------------------- #


def summarize_registry(registry: MetricsRegistry, indent: str = "  ") -> str:
    """A compact human-readable rendering for ``psinfo --metrics``."""
    lines = ["metrics summary:"]
    for metric in registry.metrics():
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(metric.labels.items())
        )
        name = f"{metric.name}{{{labels}}}" if labels else metric.name
        if metric.kind == "histogram":
            lines.append(
                f"{indent}{name} count={metric.count} mean={metric.mean:.3g} "
                f"p50={metric.quantile(0.5):.3g} p99={metric.quantile(0.99):.3g}"
            )
        else:
            value = metric.value
            shown = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"{indent}{name} {shown}")
    if len(lines) == 1:
        lines.append(f"{indent}(no metrics recorded)")
    return "\n".join(lines)


def write_metrics(
    path: str | Path,
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
    meta: dict | None = None,
) -> None:
    """Write a metrics file: ``.prom`` => Prometheus text, else JSON lines."""
    path = Path(path)
    if path.suffix == ".prom":
        path.write_text(render_prometheus(registry), encoding="ascii")
    else:
        write_jsonl_snapshot(path, registry, tracer=tracer, meta=meta)
