"""A lightweight, zero-dependency metrics registry.

The streaming stack measures power; this module makes the stack
*measurable about itself*.  Three metric kinds cover everything the
receive path needs to report:

* :class:`Counter` — a monotonically non-decreasing count (bytes read,
  packets dropped, faults injected).  Decrementing is an error: a
  counter that can go down is a gauge wearing the wrong name.
* :class:`Gauge` — a point-in-time value that moves freely (last block
  size, decode throughput).
* :class:`Histogram` — fixed-bucket distribution of observations
  (decode latency, retry spans).  Buckets are cumulative-friendly upper
  bounds in the Prometheus ``le`` convention, plus an implicit ``+Inf``
  overflow bucket, so quantiles can be estimated without retaining
  samples.

:class:`MetricsRegistry` owns the metrics: get-or-create by
``(name, labels)``, snapshot to a pure-JSON dict, and merge snapshots
from independent registries (counters and histograms add; gauges are
right-biased).  Everything is plain Python on the GIL — increments are
a handful of attribute operations, cheap enough for the hot path.

A registry constructed with ``enabled=False`` keeps its counters live
(they carry :class:`~repro.core.health.StreamHealth` semantics the
library depends on) but turns gauges, histogram observations and trace
spans into no-ops; ``benchmarks/streaming_report.py`` uses this to
measure the instrumentation overhead.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left

SNAPSHOT_SCHEMA = "repro.observability/v1"

#: Default histogram buckets: latencies from 1 µs to 10 s (seconds).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common surface of every metric: identity, help text, snapshotting."""

    kind = "metric"

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})

    @property
    def key(self) -> tuple:
        return (self.name, _label_key(self.labels))

    def to_dict(self) -> dict:
        raise NotImplementedError

    def _identity(self) -> dict:
        out: dict = {"name": self.name, "type": self.kind}
        if self.help:
            out["help"] = self.help
        if self.labels:
            out["labels"] = {k: str(v) for k, v in sorted(self.labels.items())}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"<{self.kind} {self.name}{{{labels}}}>"


class Counter(Metric):
    """A monotonically non-decreasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        super().__init__(name, help, labels)
        self._value = 0

    @property
    def value(self) -> int | float:
        return self._value

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self._value += amount

    def to_dict(self) -> dict:
        return {**self._identity(), "value": self._value}


class Gauge(Metric):
    """A point-in-time value that can move in either direction."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: dict | None = None,
                 enabled: bool = True):
        super().__init__(name, help, labels)
        self._value = 0.0
        self._enabled = enabled

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        if self._enabled:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._enabled:
            self._value += amount

    def to_dict(self) -> dict:
        return {**self._identity(), "value": self._value}


class Histogram(Metric):
    """Fixed-bucket histogram with quantile estimates.

    ``bounds`` are strictly increasing finite upper bounds; an implicit
    ``+Inf`` bucket catches the overflow.  An observation ``v`` lands in
    the first bucket whose bound satisfies ``v <= bound`` (Prometheus
    ``le`` semantics).  The invariants the property tests pin:
    ``sum(bucket_counts) == count`` and every quantile estimate lies
    within the bounds of the bucket holding that rank.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS, help: str = "",
                 labels: dict | None = None, enabled: bool = True):
        super().__init__(name, help, labels)
        bounds = [float(b) for b in buckets]
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name!r} buckets must be finite")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} buckets must strictly increase")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0
        self._enabled = enabled

    def observe(self, value: float) -> None:
        if not self._enabled:
            return
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile from the bucket counts.

        Linear interpolation inside the bucket that holds the target
        rank; observations past the last finite bound clamp to it (the
        histogram retains no maxima).  Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                upper = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                if i >= len(self.bounds):
                    return upper  # overflow bucket: clamp to the last bound
                lower = self.bounds[i - 1] if i > 0 else 0.0
                lower = min(lower, upper)
                fraction = (rank - cumulative) / n
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            cumulative += n
        return self.bounds[-1]

    def to_dict(self) -> dict:
        return {
            **self._identity(),
            "buckets": list(self.bounds),
            "counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create metric store with snapshot and merge.

    One registry spans one bench: the setup, link, sources, PowerSensor
    and realtime driver all write into the same instance, so a single
    snapshot describes the whole measurement.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._metrics: dict[tuple, Metric] = {}

    # -- get-or-create -------------------------------------------------- #

    def _get(self, cls, name: str, help: str, labels: dict, **kwargs) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels, enabled=self.enabled)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, help: str = "",
                  **labels) -> Histogram:
        return self._get(
            Histogram, name, help, labels, buckets=buckets, enabled=self.enabled
        )

    # -- introspection -------------------------------------------------- #

    def metrics(self) -> list[Metric]:
        """All metrics, deterministically ordered by (name, labels)."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def find(self, name: str, **labels) -> Metric | None:
        """The metric registered under exactly (name, labels), if any."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0, **labels) -> int | float:
        """Convenience: a counter/gauge value, or ``default`` if absent."""
        metric = self.find(name, **labels)
        return default if metric is None else metric.value

    # -- snapshot / merge ----------------------------------------------- #

    def snapshot(self) -> dict:
        """A pure-JSON description of every metric (sorted, reproducible)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": [m.to_dict() for m in self.metrics()],
        }

    @staticmethod
    def merge_snapshots(first: dict, second: dict) -> dict:
        """Merge two snapshots as if one registry had seen both workloads.

        Counters and histograms add (histograms must share bucket
        bounds); gauges are right-biased (``second`` wins where both
        report).  Metrics present on one side only pass through.
        """
        def key(entry: dict) -> tuple:
            return (entry["name"], _label_key(entry.get("labels", {})))

        merged: dict[tuple, dict] = {key(e): json.loads(json.dumps(e))
                                     for e in first.get("metrics", [])}
        for entry in second.get("metrics", []):
            k = key(entry)
            entry = json.loads(json.dumps(entry))  # deep copy, keep it JSON
            base = merged.get(k)
            if base is None:
                merged[k] = entry
                continue
            if base["type"] != entry["type"]:
                raise ValueError(
                    f"cannot merge {entry['name']!r}: "
                    f"{base['type']} vs {entry['type']}"
                )
            if entry["type"] == "counter":
                base["value"] += entry["value"]
            elif entry["type"] == "gauge":
                base["value"] = entry["value"]
            else:  # histogram
                if base["buckets"] != entry["buckets"]:
                    raise ValueError(
                        f"cannot merge histogram {entry['name']!r}: "
                        f"bucket bounds differ"
                    )
                base["counts"] = [a + b for a, b in
                                  zip(base["counts"], entry["counts"])]
                base["sum"] += entry["sum"]
                base["count"] += entry["count"]
        return {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": [merged[k] for k in sorted(merged)],
        }
