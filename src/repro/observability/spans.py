"""Zero-dependency trace spans over the monotonic clock.

A span is a timed region of the pipeline — one decode call, one pump
iteration, one PMT read.  :class:`Tracer` hands out context-manager
spans, keeps a per-thread stack so nested spans know their parent, and
folds every completed span into the shared
:class:`~repro.observability.registry.MetricsRegistry`:

* ``span_seconds{span=<name>, ...labels}`` — duration histogram,
* ``spans_total{span=<name>}`` — completion counter.

The most recent completions are retained as :class:`SpanRecord` rows
(bounded deque) for exporters and diagnostics.  Timing uses
``time.perf_counter`` — monotonic, immune to wall-clock steps.

When the registry is disabled the tracer returns one shared no-op span:
entering and leaving it costs two method calls and no clock reads,
which is what keeps instrumented hot paths within their overhead
budget.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.observability.registry import MetricsRegistry

#: Span-duration buckets: 100 ns to 10 s.
SPAN_BUCKETS = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


@dataclass
class SpanRecord:
    """One completed span, as retained for export."""

    name: str
    parent: str | None
    start: float  # perf_counter seconds (monotonic, arbitrary epoch)
    duration: float
    labels: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "parent": self.parent,
            "start": self.start,
            "duration": self.duration,
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Span:
    """A live timed region; use as a context manager."""

    __slots__ = ("name", "labels", "start", "duration", "parent", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, labels: dict[str, str]):
        self._tracer = tracer
        self.name = name
        self.labels = labels
        self.start = 0.0
        self.duration: float | None = None
        self.parent: str | None = None

    def relabel(self, **labels) -> None:
        """Adjust labels before the span closes (e.g. the decode tier
        is only known after the template attempt)."""
        self.labels.update({k: str(v) for k, v in labels.items()})

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.duration = time.perf_counter() - self.start
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(self)


class _NullSpan:
    """Shared no-op span handed out when observability is disabled."""

    __slots__ = ()
    name = ""
    parent = None
    start = 0.0
    duration = None
    labels: dict[str, str] = {}

    def relabel(self, **labels) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Factory for spans bound to one metrics registry."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_records: int = 256,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._records: deque[SpanRecord] = deque(maxlen=max_records)
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **labels):
        """Open a span; ``with tracer.span("decode", tier="template"): ...``."""
        if not self.registry.enabled:
            return NULL_SPAN
        return Span(self, name, {k: str(v) for k, v in labels.items()})

    def _record(self, span: Span) -> None:
        self.registry.histogram(
            "span_seconds",
            buckets=SPAN_BUCKETS,
            help="duration of traced pipeline regions",
            span=span.name,
            **span.labels,
        ).observe(span.duration)
        self.registry.counter(
            "spans_total", help="completed trace spans", span=span.name
        ).inc()
        self._records.append(
            SpanRecord(
                name=span.name,
                parent=span.parent,
                start=span.start,
                duration=span.duration,
                labels=dict(span.labels),
            )
        )

    def records(self) -> list[SpanRecord]:
        """The most recent completed spans, oldest first."""
        return list(self._records)
