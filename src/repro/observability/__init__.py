"""Observability for the streaming stack: metrics, spans, exporters.

The paper's evaluation is credible because the instrument reports on
itself — sampling rate, losses, latency.  This package gives the host
stack the same property: a lightweight :class:`MetricsRegistry`
(counters, gauges, fixed-bucket histograms), monotonic-clock trace
spans with parent/child nesting (:class:`Tracer`), and exporters
(JSON-lines snapshots, Prometheus text format).

Every layer of the receive path writes into one registry per bench:
:class:`~repro.core.health.StreamHealth` is a view over registry
counters, the sample sources time their decode tiers, the realtime
driver times its pump loop, the recovery policy histograms its
retries, and the fault injector mirrors its corruption counts — so a
test can assert *injected equals observed*.  See
``docs/observability.md``.
"""

from repro.observability.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
)
from repro.observability.spans import (
    NULL_SPAN,
    SPAN_BUCKETS,
    Span,
    SpanRecord,
    Tracer,
)
from repro.observability.export import (
    parse_prometheus,
    read_jsonl_snapshots,
    render_prometheus,
    summarize_registry,
    write_jsonl_snapshot,
    write_metrics,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NULL_SPAN",
    "SNAPSHOT_SCHEMA",
    "SPAN_BUCKETS",
    "Span",
    "SpanRecord",
    "Tracer",
    "parse_prometheus",
    "read_jsonl_snapshots",
    "render_prometheus",
    "summarize_registry",
    "write_jsonl_snapshot",
    "write_metrics",
]
