"""The psserve wire protocol: length-prefixed frames over a byte stream.

The device's own 2-byte packet protocol (:mod:`repro.firmware.protocol`)
is self-synchronising but has no payload integrity — fine on a dedicated
USB link, not on a shared socket where one corrupted length field could
desynchronise every subsequent frame.  The serving layer therefore wraps
everything in CRC-protected frames:

``magic(2) type(1) seq(4) length(4) hcrc(2) | payload | pcrc(4)``

* ``magic`` is ``b"PS"`` — the resynchronisation anchor.
* ``hcrc`` (CRC-32 of the first 11 header bytes, truncated to 16 bits)
  proves the *length* field before it is trusted, so a flipped bit cannot
  make the decoder wait on a 4 GiB phantom payload.
* ``pcrc`` (CRC-32 of the payload) rejects corrupted frames wholesale;
  the stream resynchronises on the next magic.

``DATA`` payloads are the device's raw wire bytes, relayed verbatim —
the server never re-encodes samples, so a remote client decodes with the
same vectorised machinery (and byte-for-byte the same results) as a local
one.  Control payloads are JSON; ``WINDOW`` payloads are the packed
averaged blocks of :func:`pack_window`.
"""

from __future__ import annotations

import enum
import json
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError, ProtocolError

MAGIC = b"PS"
_HEAD_BODY = struct.Struct(">2sBII")  # magic, type, seq, payload length
_HCRC = struct.Struct(">H")
_PCRC = struct.Struct(">I")
HEADER_SIZE = _HEAD_BODY.size + _HCRC.size  # 13
#: Upper bound on a frame payload; anything larger is a corrupted length.
MAX_PAYLOAD = 1 << 22


class FrameType(enum.IntEnum):
    """Frame type tags (the ``type`` header byte)."""

    HELLO = 1  # server -> client: version, sample rate, policy
    SUBSCRIBE = 2  # client -> server: mode (raw | window), window size
    SUBACK = 3  # server -> client: accepted, client id
    DATA = 4  # server -> client: raw device wire bytes
    WINDOW = 5  # server -> client: packed averaged sample windows
    MARK = 6  # client -> server: inject a marker into the shared stream
    START = 7  # client -> server: begin delivering samples
    STOP = 8  # client -> server: pause delivery
    CONFIG_REQ = 9  # client -> server: request the EEPROM image
    CONFIG = 10  # server -> client: the EEPROM image bytes
    EOS = 11  # server -> client: end of stream + per-client stats
    ERROR = 12  # server -> client: fatal error message
    BYE = 13  # client -> server: clean disconnect
    HISTORY = 14  # client -> server: query recorded samples {t0, t1, max_points}
    HISTORY_DATA = 15  # server -> client: packed historical rows (pack_history)


@dataclass(frozen=True)
class Frame:
    """One decoded frame."""

    type: int
    seq: int
    payload: bytes

    def json(self) -> dict:
        """Decode the payload as a JSON object (control frames)."""
        try:
            return json.loads(self.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"bad control payload: {error}") from error


def encode_frame(ftype: int, seq: int, payload: bytes = b"") -> bytes:
    """Encode one frame; ``payload`` may be empty."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    body = _HEAD_BODY.pack(MAGIC, int(ftype), seq & 0xFFFFFFFF, len(payload))
    hcrc = zlib.crc32(body) & 0xFFFF
    return b"".join(
        (body, _HCRC.pack(hcrc), payload, _PCRC.pack(zlib.crc32(payload) & 0xFFFFFFFF))
    )


def encode_control(ftype: int, seq: int, obj: dict) -> bytes:
    """Encode a JSON control frame."""
    return encode_frame(ftype, seq, json.dumps(obj, separators=(",", ":")).encode())


@dataclass
class FrameDecoder:
    """Stateful, resynchronising frame parser.

    Feed arbitrary chunks; get back every complete valid frame.  A
    corrupted frame (bad header CRC, implausible length, bad payload CRC)
    is discarded wholesale and the parser scans forward to the next
    ``b"PS"`` magic — the same recover-on-anchor strategy the sample-level
    :class:`~repro.firmware.protocol.StreamDecoder` uses, one layer up.
    """

    resync_count: int = 0  # times the parser had to skip garbage
    bytes_discarded: int = 0  # bytes skipped while resynchronising
    frames_corrupt: int = 0  # frames rejected by a CRC check
    frames_decoded: int = 0
    _buf: bytearray = field(default_factory=bytearray, repr=False)

    def feed(self, data: bytes) -> list[Frame]:
        self._buf += data
        frames: list[Frame] = []
        buf = self._buf
        while True:
            idx = buf.find(MAGIC)
            if idx < 0:
                # Nothing that could start a frame; keep the final byte in
                # case it is the first half of a split magic.
                drop = max(len(buf) - 1, 0)
                if drop:
                    self.bytes_discarded += drop
                    self.resync_count += 1
                    del buf[:drop]
                break
            if idx > 0:
                self.bytes_discarded += idx
                self.resync_count += 1
                del buf[:idx]
            if len(buf) < HEADER_SIZE:
                break
            magic, ftype, seq, length = _HEAD_BODY.unpack_from(buf)
            (hcrc,) = _HCRC.unpack_from(buf, _HEAD_BODY.size)
            if zlib.crc32(buf[: _HEAD_BODY.size]) & 0xFFFF != hcrc or length > MAX_PAYLOAD:
                # Corrupt header: the length cannot be trusted.  Skip one
                # byte past this magic and rescan.
                self.frames_corrupt += 1
                self.bytes_discarded += 1
                self.resync_count += 1
                del buf[:1]
                continue
            total = HEADER_SIZE + length + _PCRC.size
            if len(buf) < total:
                break
            payload = bytes(buf[HEADER_SIZE : HEADER_SIZE + length])
            (pcrc,) = _PCRC.unpack_from(buf, total - _PCRC.size)
            if zlib.crc32(payload) & 0xFFFFFFFF != pcrc:
                # Header was intact, so the length is trustworthy: drop
                # the corrupted frame wholesale.
                self.frames_corrupt += 1
                self.bytes_discarded += total
                self.resync_count += 1
                del buf[:total]
                continue
            frames.append(Frame(int(ftype), int(seq), payload))
            self.frames_decoded += 1
            del buf[:total]
        return frames


# --------------------------------------------------------------------- #
# WINDOW payloads                                                       #
# --------------------------------------------------------------------- #

_WINDOW_HEAD = struct.Struct(">IB")  # row count, enabled-sensor bitmask


def pack_window(
    times: np.ndarray, values: np.ndarray, markers: np.ndarray, enabled: np.ndarray
) -> bytes:
    """Pack averaged sample rows (server-side windowing) for the wire."""
    n = int(times.size)
    mask = 0
    for i in np.flatnonzero(np.asarray(enabled)):
        mask |= 1 << int(i)
    return b"".join(
        (
            _WINDOW_HEAD.pack(n, mask),
            np.ascontiguousarray(times, dtype=">f8").tobytes(),
            np.ascontiguousarray(values, dtype=">f8").tobytes(),
            np.packbits(np.asarray(markers, dtype=bool)).tobytes(),
        )
    )


def unpack_window(
    payload: bytes,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_window`; returns (times, values, markers, enabled)."""
    from repro.hardware.eeprom import SENSORS

    if len(payload) < _WINDOW_HEAD.size:
        raise ProtocolError("WINDOW payload too short")
    n, mask = _WINDOW_HEAD.unpack_from(payload)
    offset = _WINDOW_HEAD.size
    t_bytes, v_bytes = 8 * n, 8 * n * SENSORS
    m_bytes = (n + 7) // 8
    if len(payload) != offset + t_bytes + v_bytes + m_bytes:
        raise ProtocolError("WINDOW payload length mismatch")
    times = np.frombuffer(payload, dtype=">f8", count=n, offset=offset).astype(float)
    offset += t_bytes
    values = (
        np.frombuffer(payload, dtype=">f8", count=n * SENSORS, offset=offset)
        .astype(float)
        .reshape(n, SENSORS)
    )
    offset += v_bytes
    markers = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8, offset=offset), count=n
    ).astype(bool)
    enabled = np.array([(mask >> i) & 1 == 1 for i in range(SENSORS)])
    return times, values, markers, enabled


# --------------------------------------------------------------------- #
# HISTORY payloads                                                      #
# --------------------------------------------------------------------- #

#: HISTORY_DATA status codes.
HISTORY_OK = 0
HISTORY_NO_STORE = 1
HISTORY_FAILED = 2

_HISTORY_HEAD = struct.Struct(">BIQI")  # status, factor, n_source, window length


def pack_history(
    status: int,
    factor: int = 1,
    n_source: int = 0,
    window: bytes = b"",
    vmin: np.ndarray | None = None,
    vmax: np.ndarray | None = None,
) -> bytes:
    """Pack a HISTORY_DATA payload.

    ``window`` is a :func:`pack_window` payload carrying the (possibly
    tier-reduced) rows; when ``factor > 1`` the per-bucket min/max
    envelopes follow as two ``>f8`` row-major arrays of the window's
    value shape.  Error replies (``status != HISTORY_OK``) carry the
    message as the window bytes (UTF-8).
    """
    parts = [_HISTORY_HEAD.pack(status, factor, n_source, len(window)), window]
    if vmin is not None and vmax is not None:
        parts.append(np.ascontiguousarray(vmin, dtype=">f8").tobytes())
        parts.append(np.ascontiguousarray(vmax, dtype=">f8").tobytes())
    return b"".join(parts)


def unpack_history(
    payload: bytes,
) -> tuple[int, int, int, bytes, np.ndarray | None, np.ndarray | None]:
    """Inverse of :func:`pack_history`.

    Returns ``(status, factor, n_source, window, vmin, vmax)`` where the
    envelopes are ``None`` unless the reply carries them (flat arrays;
    the caller reshapes against the unpacked window).
    """
    if len(payload) < _HISTORY_HEAD.size:
        raise ProtocolError("HISTORY_DATA payload too short")
    status, factor, n_source, wlen = _HISTORY_HEAD.unpack_from(payload)
    offset = _HISTORY_HEAD.size
    if len(payload) < offset + wlen:
        raise ProtocolError("HISTORY_DATA window length mismatch")
    window = payload[offset : offset + wlen]
    offset += wlen
    rest = len(payload) - offset
    if rest == 0:
        return int(status), int(factor), int(n_source), window, None, None
    if rest % 16:
        raise ProtocolError("HISTORY_DATA envelope length mismatch")
    half = rest // 2
    vmin = np.frombuffer(payload, dtype=">f8", count=half // 8, offset=offset)
    vmax = np.frombuffer(payload, dtype=">f8", count=half // 8, offset=offset + half)
    return (
        int(status),
        int(factor),
        int(n_source),
        window,
        vmin.astype(float),
        vmax.astype(float),
    )


# --------------------------------------------------------------------- #
# Endpoints                                                             #
# --------------------------------------------------------------------- #


def parse_endpoint(spec: str) -> tuple[str, object]:
    """Parse a listen/connect spec into ``("unix", path)`` or ``("tcp", (host, port))``.

    Accepted forms: ``unix:/path/to.sock``, ``host:port``, ``:port``
    (localhost), ``port``.
    """
    spec = spec.strip()
    if not spec:
        raise ConfigurationError("empty endpoint spec")
    if spec.startswith("unix:"):
        path = spec[len("unix:") :]
        if not path:
            raise ConfigurationError("unix endpoint needs a socket path")
        return ("unix", path)
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "", spec
    try:
        port_num = int(port)
    except ValueError:
        raise ConfigurationError(
            f"bad endpoint {spec!r}: expected unix:PATH or HOST:PORT"
        ) from None
    if not 0 <= port_num <= 65535:
        raise ConfigurationError(f"port {port_num} out of range")
    return ("tcp", (host or "127.0.0.1", port_num))
