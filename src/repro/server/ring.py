"""The shared broadcast ring: encode each frame once, fan out by cursor.

The thread-per-client daemon gave every subscriber its own
:class:`~repro.server.backpressure.SendBuffer` holding a *copy* of each
encoded frame reference and paid one ``put()`` (lock, policy check,
notify) per client per frame.  At a thousand subscribers that is a
thousand lock round-trips per pump tick before a single byte reaches a
socket.

The asyncio core inverts the ownership: each device stream owns one
append-only :class:`BroadcastRing` of encoded frames, and every
subscriber holds a :class:`RingCursor` — an integer position into that
ring.  Fan-out cost per tick is one encode plus N integer compares; the
frame bytes are shared (``bytes`` is immutable) all the way into each
socket write.

Backpressure policies become cursor policies:

* ``block`` — the ring never evicts a frame an unconsumed block cursor
  still needs; the *pump* flow-controls (waits, bounded by the client
  timeout) until the slowest cursor advances, then evicts the laggard.
  The ring itself stays policy-agnostic: the daemon enforces this by
  checking :meth:`RingCursor.overrun` before appending.
* ``drop-oldest`` — the ring evicts past capacity; a cursor that falls
  behind ``tail`` jumps forward and accounts the hole in
  :attr:`~RingCursor.lost_frames` / :attr:`~RingCursor.lost_samples`
  (gap accounting — the client sees the matching sequence-number gap).
* ``downsample`` — under pressure (lag beyond half the ring) the cursor
  consumes every second frame, halving the delivered rate until it
  catches up; skipped frames are counted separately from evicted ones.

Everything here is plain single-threaded bookkeeping: the daemon's event
loop is the only writer and the only reader, so there are no locks.
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ConfigurationError

#: Cursor policies (mirrors ``backpressure.POLICIES`` for the ring world).
CURSOR_POLICIES = ("block", "drop-oldest", "downsample")


class BroadcastRing:
    """Append-only bounded ring of encoded frames with absolute indices.

    Positions are absolute monotonically increasing frame indices:
    ``tail`` is the oldest retained frame, ``head`` the index the *next*
    append will get.  ``encodes`` counts every append — it is the
    "each frame encoded exactly once" witness the benchmarks assert on.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: deque[tuple[bytes, int]] = deque()
        self.head = 0  # absolute index of the next append
        self.tail = 0  # absolute index of the oldest retained frame
        self.seq = 0  # wire sequence counter for this stream
        self.encodes = 0  # frames ever appended (== encode count)
        self.samples_appended = 0  # cumulative samples over all appends
        self.samples_evicted = 0  # cumulative samples in evicted frames

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Frames currently retained (``head - tail``)."""
        return self.head - self.tail

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def append(self, frame: bytes, samples: int) -> int:
        """Append one encoded frame covering ``samples`` samples.

        Returns the frame's absolute index.  Evicts from the tail past
        ``capacity`` — under the ``block`` policy the caller must have
        flow-controlled first so no live cursor still needs the tail.
        """
        index = self.head
        self._entries.append((frame, int(samples)))
        self.head += 1
        self.encodes += 1
        self.samples_appended += int(samples)
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popleft()
            self.tail += 1
            self.samples_evicted += evicted
        return index

    def entry(self, index: int) -> tuple[bytes, int]:
        """The ``(frame, samples)`` entry at absolute ``index``."""
        if not self.tail <= index < self.head:
            raise IndexError(
                f"frame {index} not retained (tail={self.tail}, head={self.head})"
            )
        return self._entries[index - self.tail]


class RingCursor:
    """One subscriber's position into a :class:`BroadcastRing`.

    The cursor carries the policy-specific loss accounting:
    ``lost_frames``/``lost_samples`` are frames the ring evicted before
    this cursor consumed them (``drop-oldest`` pressure — the "evicted"
    kind), ``skipped_frames``/``skipped_samples`` are frames the
    ``downsample`` policy deliberately thinned.  ``dropped`` is their
    sum: exactly one increment per frame this subscriber lost, mirroring
    the :class:`~repro.server.backpressure.SendBuffer` contract.
    """

    def __init__(self, ring: BroadcastRing, policy: str = "block") -> None:
        if policy not in CURSOR_POLICIES:
            raise ConfigurationError(
                f"unknown cursor policy {policy!r} (choose from {CURSOR_POLICIES})"
            )
        self.ring = ring
        self.policy = policy
        self.pos = ring.head
        # Cumulative samples in frames with index < pos (consumed or lost);
        # referenced against ring.samples_evicted when the cursor is lapped
        # so gap accounting stays exact without retaining evicted entries.
        self._cum = ring.samples_appended
        self.taken_frames = 0
        self.taken_samples = 0
        self.lost_frames = 0
        self.lost_samples = 0
        self.skipped_frames = 0
        self.skipped_samples = 0
        self._skip_phase = False

    @property
    def lag(self) -> int:
        """Frames appended but not yet consumed (or lost) by this cursor."""
        return self.ring.head - self.pos

    @property
    def dropped(self) -> int:
        """Frames this subscriber lost — one increment per lost frame."""
        return self.lost_frames + self.skipped_frames

    def overrun(self) -> bool:
        """True when the next append would evict a frame this cursor needs."""
        return self.lag >= self.ring.capacity

    def rebase(self) -> None:
        """Jump to the live edge without loss accounting (START/restart)."""
        self.pos = self.ring.head
        self._cum = self.ring.samples_appended

    def _catch_up(self) -> None:
        """Account any frames the ring evicted past this cursor."""
        ring = self.ring
        if self.pos < ring.tail:
            self.lost_frames += ring.tail - self.pos
            self.lost_samples += ring.samples_evicted - self._cum
            self._cum = ring.samples_evicted
            self.pos = ring.tail

    def pending_samples(self) -> int:
        """Samples in retained frames this cursor has yet to consume."""
        self._catch_up()
        return sum(
            self.ring.entry(i)[1] for i in range(self.pos, self.ring.head)
        )

    def take(self, limit: int | None = None) -> list[tuple[bytes, int]]:
        """Consume up to ``limit`` ready frames, applying the policy.

        Returns ``(frame, samples)`` pairs in stream order.  Never
        blocks: an empty list means the cursor is at the live edge.
        """
        self._catch_up()
        ring = self.ring
        out: list[tuple[bytes, int]] = []
        while self.pos < ring.head and (limit is None or len(out) < limit):
            frame, samples = ring.entry(self.pos)
            pressured = self.lag > ring.capacity // 2
            self.pos += 1
            self._cum += samples
            if self.policy == "downsample" and pressured:
                self._skip_phase = not self._skip_phase
                if self._skip_phase:
                    self.skipped_frames += 1
                    self.skipped_samples += samples
                    continue
            out.append((frame, samples))
            self.taken_frames += 1
            self.taken_samples += samples
        return out
