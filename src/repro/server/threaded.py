"""The original thread-per-client psserve core, kept as a reference.

:class:`ThreadedPowerSensorServer` is the pre-asyncio daemon: one accept
thread, a reader and a sender thread per subscriber, and a bounded
per-client :class:`~repro.server.backpressure.SendBuffer` between the
pump and each sender.  The asyncio broadcast-ring core in
:mod:`repro.server.daemon` replaced it as the default (``psserve
--engine threaded`` still selects this one), but it stays in the tree
for two reasons: it is the equivalence baseline the async server is
pinned byte-for-byte against, and it is the simplest complete statement
of the serving contract.

Scaling ceiling: every frame costs one ``SendBuffer.put`` (lock +
policy + notify) per subscriber and every subscriber costs two OS
threads, which tops out around the 64 clients recorded in
``BENCH_streaming.json`` — the motivation for the ring rewrite.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np

from repro.common.errors import ConfigurationError, ServerError, TransportError
from repro.core.sources import SampleBlock, SampleSource
from repro.observability import MetricsRegistry, Tracer
from repro.server.backpressure import POLICIES, BufferTimeout, SendBuffer
from repro.server.daemon import DEFAULT_CHUNK, _bind_listener, _Device, _unlink_unix
from repro.server.wire import (
    Frame,
    FrameDecoder,
    FrameType,
    encode_control,
    encode_frame,
    pack_window,
    parse_endpoint,
)
from repro.transport.bytestream import ByteStream, SocketByteStream


class _Client:
    """Server-side state for one subscriber."""

    def __init__(self, cid: int, stream: ByteStream, buffer: SendBuffer) -> None:
        self.id = cid
        self.stream = stream
        self.buffer = buffer
        self.decoder = FrameDecoder()
        self.mode = "raw"
        self.window = 1
        self.device: _Device | None = None
        self.started = threading.Event()
        self.ever_started = False
        self.samples_sent = 0
        self.frames_sent = 0
        self.seq = 0  # per-client sequence for WINDOW/control frames
        self.evicted = False
        self.released = False
        self.sender: threading.Thread | None = None
        self.drop_counters: dict[str, object] = {}
        # Window-mode accumulator (touched only by the pump thread).
        self.acc: list[SampleBlock] = []
        self.acc_count = 0

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class ThreadedPowerSensorServer:
    """Serve one or more PowerSensor streams to N subscribers (threads).

    ``source`` is a single :class:`~repro.core.sources.SampleSource` or a
    ``{name: source}`` dict for a multi-device endpoint; the first entry
    is the default device for subscribers that don't name one.
    """

    def __init__(
        self,
        source: SampleSource | dict[str, SampleSource],
        listen: str,
        *,
        policy: str = "block",
        buffer_frames: int = 256,
        chunk: int = DEFAULT_CHUNK,
        client_timeout: float = 5.0,
        max_clients: int = 64,
        time_scale: float = 0.0,
        wait_clients: int = 0,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {policy!r} (choose from {POLICIES})"
            )
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
        self.endpoint = parse_endpoint(listen)
        self.policy = policy
        self.buffer_frames = int(buffer_frames)
        self.chunk = int(chunk)
        self.client_timeout = float(client_timeout)
        self.max_clients = int(max_clients)
        self.time_scale = float(time_scale)
        self.wait_clients = int(wait_clients)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)

        if not isinstance(source, dict):
            source = {getattr(source, "device", None) or "device0": source}
        if not source:
            raise ConfigurationError("a server needs at least one device")
        self.devices: dict[str, _Device] = {
            name: _Device(name, src, self.registry) for name, src in source.items()
        }
        self.default_device = next(iter(self.devices.values()))
        self.source = self.default_device.source  # single-device back-compat

        self._clients: dict[int, _Client] = {}
        self._clients_lock = threading.Lock()
        self._started_cond = threading.Condition(self._clients_lock)
        self._next_cid = 0
        self._starts_seen = 0  # distinct subscribers that ever sent START
        self._stop = threading.Event()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None

        self._connected_gauge = self.registry.gauge(
            "server_clients_connected", help="subscribers currently connected"
        )
        self._clients_counter = self.registry.counter(
            "server_clients_total", help="subscribers accepted since start"
        )
        self._evicted_counter = self.registry.counter(
            "server_clients_evicted_total",
            help="subscribers force-disconnected (backpressure or send failure)",
        )
        self._samples_counter = self.registry.counter(
            "server_samples_produced_total", help="samples pumped from the device"
        )
        self._frames_counter = self.registry.counter(
            "server_frames_sent_total", help="frames enqueued to subscribers"
        )
        self._bytes_counter = self.registry.counter(
            "server_bytes_sent_total", help="frame bytes written to sockets"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    @property
    def samples_produced(self) -> int:
        """Samples pumped across every device since start."""
        return sum(d.samples_produced for d in self.devices.values())

    @property
    def address(self) -> str:
        """The bound address, as a connect spec (useful with port 0)."""
        kind, target = self.endpoint
        if kind == "unix":
            return f"unix:{target}"
        host, port = target
        if self._listener is not None:
            host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def start(self) -> None:
        """Bind the listener and start accepting subscribers."""
        # Headroom beyond max_clients: see PowerSensorServer.start().
        self._listener = _bind_listener(self.endpoint, max(self.max_clients, 512))
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="psserve-accept", daemon=True
        )
        self._accept_thread.start()

    def close(self) -> None:
        """Stop accepting, end the stream, disconnect everyone."""
        self._stop.set()
        with self._started_cond:
            self._started_cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        with self._clients_lock:
            clients = list(self._clients.values())
        for client in clients:
            self._finish_client(client, reason="server closed")
        _unlink_unix(self.endpoint)

    def __enter__(self) -> "ThreadedPowerSensorServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Accepting and per-client threads                                   #
    # ------------------------------------------------------------------ #

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            threading.Thread(
                target=self._client_main,
                args=(conn,),
                name="psserve-client",
                daemon=True,
            ).start()

    def _client_main(self, conn: socket.socket) -> None:
        conn.settimeout(self.client_timeout)
        stream = SocketByteStream(conn)
        client: _Client | None = None
        try:
            try:
                with self.tracer.span("server_accept"):
                    client = self._handshake(stream)
            except (TransportError, ServerError, ConfigurationError):
                return
            if client is None:
                return
            conn.settimeout(None)
            client.sender = threading.Thread(
                target=self._sender_loop,
                args=(client,),
                name="psserve-send",
                daemon=True,
            )
            client.sender.start()
            self._reader_loop(client)
        finally:
            # Every exit path — clean BYE, EOF, reader crash, sender
            # crash mid-handshake — releases the registration, the
            # buffer, and the socket exactly once.  Before this guard a
            # sender death (e.g. BufferTimeout under the block policy)
            # could leave the client registered with an open socket and
            # a live peer thread.
            if client is None:
                stream.close()
            else:
                self._release_client(client)

    def _handshake(self, stream: ByteStream) -> _Client | None:
        """HELLO -> SUBSCRIBE -> SUBACK; returns the registered client."""
        hello = {
            "server": "psserve",
            # Legacy top-level fields describe the default device so old
            # single-device clients keep working unmodified.
            "version": self.default_device.source.version,
            "sample_rate": self.default_device.source.sample_rate,
            "policy": self.policy,
            "buffer_frames": self.buffer_frames,
            "devices": {name: dev.info() for name, dev in self.devices.items()},
        }
        stream.write(encode_control(FrameType.HELLO, 0, hello))
        sub = self._read_control(stream, FrameType.SUBSCRIBE)
        if sub is None:
            return None
        request = sub.json()
        mode = request.get("mode", "raw")
        window = int(request.get("window", 1) or 1)
        if mode not in ("raw", "window") or window < 1:
            stream.write(
                encode_control(
                    FrameType.ERROR, 0, {"message": f"bad subscription {request!r}"}
                )
            )
            return None
        device_name = request.get("device") or self.default_device.name
        device = self.devices.get(device_name)
        if device is None:
            stream.write(
                encode_control(
                    FrameType.ERROR,
                    0,
                    {
                        "message": f"unknown device {device_name!r}",
                        "devices": list(self.devices),
                    },
                )
            )
            return None
        # A raw subscription needs the device's wire byte stream; fall
        # back to sample-exact single-sample windows when it has none.
        if mode == "raw" and not device.raw_capable:
            mode = "window"
        with self._clients_lock:
            if len(self._clients) >= self.max_clients:
                stream.write(
                    encode_control(FrameType.ERROR, 0, {"message": "server full"})
                )
                return None
            cid = self._next_cid
            self._next_cid += 1
            client = _Client(
                cid,
                stream,
                SendBuffer(
                    policy=self.policy,
                    max_frames=self.buffer_frames,
                    block_timeout=self.client_timeout,
                ),
            )
            client.mode = mode
            client.window = window
            client.device = device
            self._clients[cid] = client
            self._connected_gauge.set(len(self._clients))
        self._clients_counter.inc()
        # Per-client drop counters, mirrored from the buffer on removal;
        # ``kind`` distinguishes evicted queue heads from refused newcomers.
        client.drop_counters = {
            kind: self.registry.counter(
                "server_frames_dropped_total",
                help="frames discarded by backpressure, per client",
                client=str(cid),
                policy=self.policy,
                device=device.name,
                kind=kind,
            )
            for kind in ("evicted", "newcomer")
        }
        stream.write(
            encode_control(
                FrameType.SUBACK,
                0,
                {
                    "client": cid,
                    "mode": mode,
                    "window": window,
                    "device": device.name,
                    "version": device.source.version,
                    "sample_rate": device.source.sample_rate,
                },
            )
        )
        return client

    def _read_control(self, stream: ByteStream, expected: int) -> Frame | None:
        """Read frames until one of ``expected`` type arrives (or EOF)."""
        decoder = FrameDecoder()
        while True:
            data = stream.read(65536)
            if not data:
                return None
            for frame in decoder.feed(data):
                if frame.type == expected:
                    return frame
                if frame.type == FrameType.BYE:
                    return None

    def _reader_loop(self, client: _Client) -> None:
        """Handle control frames from one subscriber until it goes away."""
        while not self._stop.is_set():
            try:
                data = client.stream.read(65536)
            except TransportError:
                return
            if not data:
                return
            for frame in client.decoder.feed(data):
                if frame.type == FrameType.START:
                    client.started.set()
                    with self._started_cond:
                        if not client.ever_started:
                            client.ever_started = True
                            self._starts_seen += 1
                        self._started_cond.notify_all()
                elif frame.type == FrameType.STOP:
                    client.started.clear()
                elif frame.type == FrameType.MARK:
                    # The marker lands in the device's shared stream.
                    client.device.source.mark()
                elif frame.type == FrameType.CONFIG_REQ:
                    client.buffer.put(
                        encode_frame(
                            FrameType.CONFIG,
                            client.next_seq(),
                            client.device.config_image(),
                        ),
                        droppable=False,
                    )
                elif frame.type == FrameType.BYE:
                    return

    def _sender_loop(self, client: _Client) -> None:
        """Drain one subscriber's send buffer onto its socket."""
        while True:
            frame = client.buffer.get(timeout=0.25)
            if frame is None:
                if client.buffer.closed:
                    return
                continue
            try:
                with self.tracer.span("server_send"):
                    client.stream.write(frame)
                self._bytes_counter.inc(len(frame))
            except TransportError:
                self._evict(client, reason="send failed")
                return

    # ------------------------------------------------------------------ #
    # The pump                                                           #
    # ------------------------------------------------------------------ #

    def serve(self, duration: float | None = None) -> dict:
        """Pump every device and fan out until ``duration`` simulated seconds.

        Each pump round advances every device by the same simulated time
        (per-device chunk sizes scale with sample rate), so a fleet's
        clocks stay aligned.  ``duration=None`` pumps until
        :meth:`close` (or Ctrl-C in the CLI).  With ``time_scale > 0``
        the pump paces itself against the wall clock (1.0 = real time);
        0 pumps as fast as possible.  Returns a stats dict (also the
        shape of the EOS payload).
        """
        if self.wait_clients:
            self._await_clients(self.wait_clients)
        devices = list(self.devices.values())
        ref_rate = max(d.source.sample_rate for d in devices)
        chunks = {
            d.name: max(int(round(self.chunk * d.source.sample_rate / ref_rate)), 1)
            for d in devices
        }
        totals = (
            None
            if duration is None
            else {
                d.name: max(int(round(duration * d.source.sample_rate)), 0)
                for d in devices
            }
        )
        dry: set[str] = set()  # finite replay tapes that ran out

        def is_live(d: _Device) -> bool:
            return d.name not in dry and (
                totals is None or d.samples_produced < totals[d.name]
            )

        t0 = time.monotonic()
        while not self._stop.is_set():
            live = [d for d in devices if is_live(d)]
            if not live:
                break
            with self._clients_lock:
                clients = list(self._clients.values())
            for device in live:
                n = chunks[device.name]
                if totals is not None:
                    n = min(n, totals[device.name] - device.samples_produced)
                if self._pump_device(device, n, clients) == 0:
                    dry.add(device.name)
            if self.time_scale > 0:
                # Pace from the furthest-ahead device still producing: a
                # fixed reference would freeze the clock once that device
                # is a finite replay tape that ran dry, and the loop
                # would pump the remaining live devices unpaced at 100%
                # CPU for the rest of the serve.
                pacers = [d for d in devices if is_live(d)] or devices
                sim_elapsed = max(
                    d.samples_produced / d.source.sample_rate for d in pacers
                )
                target = t0 + sim_elapsed * self.time_scale
                delay = target - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
        return self.finish(reason="duration" if duration is not None else "stopped")

    def _pump_device(self, device: _Device, n: int, clients: list[_Client]) -> int:
        """Pump ``n`` samples from one device and fan them out.

        Returns the number of samples actually produced (a finite replay
        tape may run dry and return 0).
        """
        source = device.source
        if not source.streaming:
            source.start()
        if device.raw_capable:
            with self.tracer.span("server_pump", device=device.name):
                block, raw = source.read_block_raw(n)
            produced = n
            data_frame = encode_frame(FrameType.DATA, device.next_seq(), raw)
        else:
            with self.tracer.span("server_pump", device=device.name):
                block = source.read_block(n)
            produced = len(block)
            if produced == 0:
                return 0
            data_frame = None
        device.samples_produced += produced
        device.samples_counter.inc(produced)
        self._samples_counter.inc(produced)
        for client in clients:
            if client.device is device:
                self._deliver(client, data_frame, block, produced)
        return produced

    def _await_clients(self, n: int) -> None:
        """Block until ``n`` distinct subscribers have sent START.

        Cumulative, like the async engine: a subscriber that started and
        then went away still counts, so a client crashing mid-rendezvous
        cannot deadlock the pump.
        """
        with self._started_cond:
            self._started_cond.wait_for(
                lambda: self._stop.is_set() or self._starts_seen >= n
            )

    def _deliver(
        self, client: _Client, data_frame: bytes | None, block: SampleBlock, n: int
    ) -> None:
        if not client.started.is_set():
            return
        try:
            if client.mode == "raw":
                assert data_frame is not None  # raw mode implies a raw device
                if client.buffer.put(data_frame):
                    client.frames_sent += 1
                    client.samples_sent += n
                    self._frames_counter.inc()
            else:
                frame = self._window_frame(client, block)
                if frame is not None and client.buffer.put(frame):
                    client.frames_sent += 1
                    self._frames_counter.inc()
        except BufferTimeout:
            self._evict(client, reason="backpressure timeout")

    def _window_frame(self, client: _Client, block: SampleBlock) -> bytes | None:
        """Fold a block into the client's window accumulator; emit full windows."""
        if len(block):
            client.acc.append(block)
            client.acc_count += len(block)
        w = client.window
        if client.acc_count < w:
            return None
        times = np.concatenate([b.times for b in client.acc])
        values = np.concatenate([b.values for b in client.acc])
        markers = np.concatenate([b.markers for b in client.acc])
        k = client.acc_count // w
        used = k * w
        avg_times = times[:used].reshape(k, w).mean(axis=1)
        avg_values = values[:used].reshape(k, w, values.shape[1]).mean(axis=1)
        any_markers = markers[:used].reshape(k, w).any(axis=1)
        leftover = SampleBlock(
            times=times[used:],
            values=values[used:],
            markers=markers[used:],
            enabled=block.enabled,
        )
        client.acc = [leftover] if len(leftover) else []
        client.acc_count -= used
        client.samples_sent += used
        return encode_frame(
            FrameType.WINDOW,
            client.next_seq(),
            pack_window(avg_times, avg_values, any_markers, block.enabled),
        )

    # ------------------------------------------------------------------ #
    # Teardown                                                           #
    # ------------------------------------------------------------------ #

    def _client_stats(self, client: _Client) -> dict:
        return {
            "client": client.id,
            "device": client.device.name if client.device is not None else None,
            "samples_sent": client.samples_sent,
            "frames_sent": client.frames_sent,
            "frames_dropped": client.buffer.dropped,
        }

    def finish(self, reason: str = "end of stream") -> dict:
        """Send EOS (with per-client stats) to everyone and disconnect them."""
        with self._clients_lock:
            clients = list(self._clients.values())
        for client in clients:
            self._finish_client(client, reason=reason)
        return {
            "reason": reason,
            "samples_produced": self.samples_produced,
            "devices": {
                name: dev.samples_produced for name, dev in self.devices.items()
            },
            "clients_served": int(self._clients_counter.value),
            "clients_evicted": int(self._evicted_counter.value),
        }

    def _finish_client(self, client: _Client, reason: str) -> None:
        stats = self._client_stats(client)
        stats["reason"] = reason
        client.buffer.put(
            encode_control(FrameType.EOS, client.next_seq(), stats), droppable=False
        )
        client.buffer.close()
        if client.sender is not None:
            client.sender.join(timeout=2.0)
        self._release_client(client)

    def _evict(self, client: _Client, reason: str) -> None:
        if client.evicted:
            return
        client.evicted = True
        # Only count an eviction if the client was still registered — a
        # send failing after a clean BYE is a disconnect, not an eviction.
        if self._remove_client(client):
            self._evicted_counter.inc()
        client.buffer.close()
        client.stream.close()  # unblocks the reader thread too

    def _release_client(self, client: _Client) -> None:
        """Idempotent full teardown: registry entry, buffer, socket, sender."""
        client.released = True
        self._remove_client(client)
        client.buffer.close()
        client.stream.close()
        sender = client.sender
        if sender is not None and sender is not threading.current_thread():
            sender.join(timeout=2.0)

    def _remove_client(self, client: _Client) -> bool:
        with self._clients_lock:
            present = self._clients.pop(client.id, None)
            self._connected_gauge.set(len(self._clients))
        if present is not None:
            for kind, attr in (
                ("evicted", "dropped_oldest"),
                ("newcomer", "dropped_newest"),
            ):
                drops = getattr(client.buffer, attr)
                counted = getattr(client, f"_drops_counted_{kind}", 0)
                if drops > counted and kind in client.drop_counters:
                    client.drop_counters[kind].inc(drops - counted)
                    setattr(client, f"_drops_counted_{kind}", drops)
            client.buffer.close()
        return present is not None
