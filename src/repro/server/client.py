"""The remote client: read a psserve stream through the normal host API.

:class:`RemoteLink` speaks the frame protocol to a daemon and presents
the subset of the :class:`~repro.transport.link.VirtualSerialLink`
surface the host library's control plane uses — ``write`` of a device
command is translated to the matching frame (START/STOP/MARK/
CONFIG_REQ), and the version/config *responses* are served back through
``read`` exactly as a local link would, so
:class:`~repro.core.sources.ProtocolSampleSource` connects to it
unmodified.

:class:`RemoteSampleSource` builds on that: ``DATA`` frames carry the
device's raw wire bytes relayed verbatim, and the source decodes them
with the inherited vectorised machinery — a remote consumer produces
byte-for-byte the same samples and health counters as a local one on the
same stream.  A dropped connection is re-established with the bounded
backoff of :class:`~repro.common.retry.RecoveryPolicy`; sequence-number
gaps (frames dropped by backpressure upstream, or corrupted in transit)
are counted in ``client_frames_missed_total``.  A dropped frame loses
its samples outright — and because the device's wrapping 10-bit
timestamp counter cannot span a multi-millisecond hole, the
reconstructed timeline contracts by the missing span instead of showing
a gap.  Consumers that need every sample should subscribe to a server
running the (default, lossless) ``block`` policy.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from typing import Callable

import numpy as np

from repro.common.errors import ProtocolError, ServerError, TransportError
from repro.common.retry import DEFAULT_RECOVERY, RecoveryPolicy
from repro.core.powersensor import PowerSensor
from repro.core.sources import ProtocolSampleSource, SampleBlock, register_source
from repro.firmware.commands import Command
from repro.observability import MetricsRegistry, Tracer
from repro.server.wire import (
    HISTORY_OK,
    Frame,
    FrameDecoder,
    FrameType,
    encode_control,
    encode_frame,
    parse_endpoint,
    unpack_history,
    unpack_window,
)
from repro.transport.bytestream import ByteStream, SocketByteStream

#: First backoff delay when (re)connecting, seconds (wall clock).
CONNECT_BACKOFF = 0.05
#: Socket read chunk for the frame pump.
READ_CHUNK = 65536


def connect_stream(spec: str, timeout: float = 5.0) -> SocketByteStream:
    """Open a :class:`SocketByteStream` to a psserve endpoint spec."""
    kind, target = parse_endpoint(spec)
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(target)
        except OSError as error:
            sock.close()
            raise TransportError(f"cannot connect to {spec}: {error}") from error
    else:
        try:
            sock = socket.create_connection(target, timeout=timeout)
        except OSError as error:
            raise TransportError(f"cannot connect to {spec}: {error}") from error
    sock.settimeout(None)
    return SocketByteStream(sock)


class RemoteLink:
    """A psserve connection presenting the serial-link control surface.

    ``stream_factory`` (spec -> :class:`ByteStream`) lets callers wrap
    the socket — e.g. in a
    :class:`~repro.transport.bytestream.FaultyByteStream` — and is reused
    on every reconnect.
    """

    def __init__(
        self,
        spec: str,
        mode: str = "raw",
        window: int = 1,
        device: str | None = None,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
        registry: MetricsRegistry | None = None,
        connect_timeout: float = 5.0,
        handshake_timeout: float | None = None,
        stream_factory: Callable[[str], ByteStream] | None = None,
    ) -> None:
        if mode not in ("raw", "window"):
            raise ServerError(f"unknown subscription mode {mode!r}")
        if window < 1:
            raise ServerError(f"window must be >= 1, got {window}")
        self.spec = spec
        self.mode = mode
        self.window = int(window)
        self.device = device
        self.recovery = recovery
        self.registry = registry if registry is not None else MetricsRegistry()
        self.connect_timeout = float(connect_timeout)
        if handshake_timeout is None:
            # Derive the handshake budget from the configured recovery
            # policy: one connect's worth of patience plus the policy's
            # whole backoff schedule — instead of a hardcoded constant
            # that ignored how patient the caller asked the link to be.
            handshake_timeout = self.connect_timeout
            if recovery is not None:
                handshake_timeout += sum(recovery.backoff_delays(CONNECT_BACKOFF))
        self.handshake_timeout = float(handshake_timeout)
        self._factory = stream_factory or (
            lambda s: connect_stream(s, timeout=self.connect_timeout)
        )
        self.hello: dict = {}
        self.suback: dict = {}
        self.client_id: int | None = None
        self.eos: dict | None = None
        self.reconnects = 0
        self.frames_missed = 0
        self._started = False
        self._closed = False
        self._last_seq: int | None = None
        self._response = bytearray()
        self._frames: deque[Frame] = deque()
        self._history: deque[bytes] = deque()
        self._stream: ByteStream | None = None
        self._decoder = FrameDecoder()
        self._mirrored = (0, 0, 0)
        self._reconnect_counter = self.registry.counter(
            "client_reconnects_total", help="times the remote link reconnected"
        )
        self._missed_counter = self.registry.counter(
            "client_frames_missed_total",
            help="DATA frames lost upstream (sequence gaps)",
        )
        self._resync_counter = self.registry.counter(
            "client_frame_resyncs_total", help="frame-level resynchronisations"
        )
        self._discarded_counter = self.registry.counter(
            "client_frame_bytes_discarded_total",
            help="bytes skipped while resynchronising frames",
        )
        self._corrupt_counter = self.registry.counter(
            "client_frames_corrupt_total", help="frames rejected by a CRC check"
        )
        self._connect_with_retry(initial=True)

    # ------------------------------------------------------------------ #
    # Connection management                                              #
    # ------------------------------------------------------------------ #

    def _connect(self) -> None:
        stream = self._factory(self.spec)
        decoder = FrameDecoder()
        try:
            hello = self._expect(stream, decoder, FrameType.HELLO)
            self.hello = hello.json()
            request = {"mode": self.mode, "window": self.window}
            if self.device is not None:
                request["device"] = self.device
            stream.write(encode_control(FrameType.SUBSCRIBE, 0, request))
            suback = self._expect(stream, decoder, FrameType.SUBACK)
            self.suback = suback.json()
            self.client_id = self.suback.get("client")
            # The server may downgrade a raw subscription (a device with
            # no wire byte stream goes out as WINDOW frames instead).
            self.mode = self.suback.get("mode", self.mode)
            self.window = int(self.suback.get("window", self.window))
        except Exception:
            stream.close()
            raise
        self._stream = stream
        self._decoder = decoder
        self._last_seq = None  # sequence re-baselines on a new connection
        if self._started:
            stream.write(encode_frame(FrameType.START, 0))

    def _expect(self, stream: ByteStream, decoder: FrameDecoder, ftype: int) -> Frame:
        deadline = time.monotonic() + self.handshake_timeout
        pending: deque[Frame] = deque()
        while time.monotonic() < deadline:
            while pending:
                frame = pending.popleft()
                if frame.type == ftype:
                    return frame
                if frame.type == FrameType.ERROR:
                    raise ServerError(frame.json().get("message", "server error"))
            data = stream.read(READ_CHUNK)
            if not data:
                raise TransportError("connection closed during handshake")
            pending.extend(decoder.feed(data))
        raise TransportError("handshake timed out")

    def _connect_with_retry(self, initial: bool = False) -> None:
        delays = [0.0]
        if self.recovery is not None:
            delays += self.recovery.backoff_delays(CONNECT_BACKOFF)
        last_error: Exception | None = None
        for delay in delays:
            if delay:
                time.sleep(delay)
            try:
                self._connect()
                return
            except (TransportError, ProtocolError, OSError) as error:
                last_error = error
        verb = "connect to" if initial else "reconnect to"
        detail = str(last_error)
        # connect_stream already names the endpoint; don't say it twice.
        detail = detail.removeprefix(f"cannot connect to {self.spec}: ")
        raise ServerError(f"cannot {verb} {self.spec}: {detail}") from last_error

    def _reconnect(self) -> None:
        if self.recovery is None or self._closed:
            raise ServerError(f"lost connection to {self.spec}")
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        self.reconnects += 1
        self._reconnect_counter.inc()
        self._connect_with_retry()

    @property
    def at_eos(self) -> bool:
        return self.eos is not None

    def device_info(self) -> dict:
        """Version/sample_rate of the subscribed device.

        Resolution order: the SUBACK (authoritative for this
        subscription), the HELLO's per-device map, then the legacy
        top-level HELLO fields of a single-device server.
        """
        info: dict = {}
        name = self.suback.get("device") or self.device
        devices = self.hello.get("devices") or {}
        if name and name in devices:
            info.update(devices[name])
        for key in ("version", "sample_rate"):
            if key in self.suback:
                info[key] = self.suback[key]
            elif key not in info and key in self.hello:
                info[key] = self.hello[key]
        return info

    # ------------------------------------------------------------------ #
    # The serial-link control surface                                    #
    # ------------------------------------------------------------------ #

    def write(self, data: bytes) -> None:
        """Dispatch a device command to the matching wire frame."""
        command = data[:1]
        if command == Command.VERSION.value:
            # The version travelled in the handshake; answer locally in
            # the same NUL-terminated shape the firmware uses.
            version = str(self.device_info().get("version", ""))
            self._response += version.encode("ascii") + b"\x00"
        elif command == Command.READ_CONFIG.value:
            self._send(encode_frame(FrameType.CONFIG_REQ, 0))
            self._await_response_growth()
        elif command == Command.START_STREAMING.value:
            self._started = True
            self._send(encode_frame(FrameType.START, 0))
        elif command == Command.STOP_STREAMING.value:
            self._started = False
            self._send(encode_frame(FrameType.STOP, 0))
        elif command == Command.MARKER.value:
            self._send(encode_frame(FrameType.MARK, 0))
        else:
            raise ServerError(
                f"operation {command!r} is not supported over a remote link "
                "(the device is shared; configure it on the server)"
            )

    def read(self, n: int | None = None) -> bytes:
        """Serve buffered command responses (version, config image)."""
        if n is None:
            n = len(self._response)
        out = bytes(self._response[:n])
        del self._response[:n]
        return out

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._stream is not None:
            try:
                self._stream.write(encode_frame(FrameType.BYE, 0))
            except TransportError:
                pass
            self._stream.close()
            self._stream = None

    # ------------------------------------------------------------------ #
    # The frame pump                                                     #
    # ------------------------------------------------------------------ #

    def _send(self, frame: bytes) -> None:
        if self._closed:
            raise ServerError("remote link is closed")
        if self._stream is None:
            self._reconnect()
        try:
            self._stream.write(frame)
        except TransportError:
            self._reconnect()
            self._stream.write(frame)

    def _await_response_growth(self) -> None:
        """Pump frames until the response buffer grows (CONFIG arrived)."""
        have = len(self._response)
        while len(self._response) == have:
            if not self._pump_once():
                raise ServerError("connection closed while awaiting a response")

    def query_history(
        self,
        t0: float | None = None,
        t1: float | None = None,
        max_points: int | None = None,
    ):
        """Query the server's recorded history for the subscribed device.

        Returns a :class:`~repro.store.store.StoreQueryResult` (possibly
        tier-reduced to at most the server's point cap); raises
        :class:`ServerError` if the server records no history or the
        query fails.  Requires a server started with ``--record-store``.
        """
        from repro.store.store import StoreQueryResult

        req: dict = {}
        if t0 is not None:
            req["t0"] = float(t0)
        if t1 is not None:
            req["t1"] = float(t1)
        if max_points is not None:
            req["max_points"] = int(max_points)
        self._send(encode_control(FrameType.HISTORY, 0, req))
        while not self._history:
            if not self._pump_once():
                raise ServerError("connection closed while awaiting history")
        status, factor, n_source, window, vmin, vmax = unpack_history(
            self._history.popleft()
        )
        if status != HISTORY_OK:
            message = window.decode("utf-8", "replace") or "history query failed"
            raise ServerError(message)
        times, values, markers, enabled = unpack_window(window)
        if vmin is None or vmax is None:
            vmin = vmax = values
        else:
            vmin = vmin.reshape(values.shape)
            vmax = vmax.reshape(values.shape)
        return StoreQueryResult(
            times=times,
            values=values,
            vmin=vmin,
            vmax=vmax,
            markers=markers,
            enabled=enabled,
            factor=int(factor),
            n_source=int(n_source),
        )

    def next_data(self) -> Frame | None:
        """Block for the next DATA/WINDOW frame; ``None`` at end of stream."""
        while True:
            if self._frames:
                return self._frames.popleft()
            if self.at_eos:
                return None
            if not self._pump_once():
                if self.at_eos:
                    return None
                self._reconnect()

    def _pump_once(self) -> bool:
        """One blocking socket read; False on EOF/error (without EOS)."""
        if self._stream is None:
            return False
        try:
            data = self._stream.read(READ_CHUNK)
        except TransportError:
            return False
        if not data:
            return False
        frames = self._decoder.feed(data)
        self._mirror_decoder()
        for frame in frames:
            self._route(frame)
        return True

    def _mirror_decoder(self) -> None:
        resyncs, discarded, corrupt = self._mirrored
        d = self._decoder
        if d.resync_count > resyncs:
            self._resync_counter.inc(d.resync_count - resyncs)
        if d.bytes_discarded > discarded:
            self._discarded_counter.inc(d.bytes_discarded - discarded)
        if d.frames_corrupt > corrupt:
            self._corrupt_counter.inc(d.frames_corrupt - corrupt)
        self._mirrored = (d.resync_count, d.bytes_discarded, d.frames_corrupt)

    def _route(self, frame: Frame) -> None:
        if frame.type == FrameType.DATA:
            if self._last_seq is not None and frame.seq > self._last_seq + 1:
                missed = frame.seq - self._last_seq - 1
                self.frames_missed += missed
                self._missed_counter.inc(missed)
            self._last_seq = frame.seq
            self._frames.append(frame)
        elif frame.type == FrameType.WINDOW:
            self._frames.append(frame)
        elif frame.type == FrameType.CONFIG:
            self._response += frame.payload
        elif frame.type == FrameType.HISTORY_DATA:
            self._history.append(frame.payload)
        elif frame.type == FrameType.EOS:
            self.eos = frame.json()
        elif frame.type == FrameType.ERROR:
            raise ServerError(frame.json().get("message", "server error"))
        # HELLO/SUBACK after the handshake (or unknown types) are ignored.


class RemoteSampleSource(ProtocolSampleSource):
    """A :class:`ProtocolSampleSource` fed by a psserve daemon.

    ``mode="window"`` subscribes to server-side averaged windows of
    ``window`` samples each; the source then presents one sample per
    window at ``sample_rate / window``.
    """

    def __init__(
        self,
        remote: str | RemoteLink,
        mode: str = "raw",
        window: int = 1,
        device: str | None = None,
        vectorized: bool = True,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        connect_timeout: float = 5.0,
        handshake_timeout: float | None = None,
        stream_factory: Callable[[str], ByteStream] | None = None,
    ) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        if isinstance(remote, RemoteLink):
            link = remote
        else:
            link = RemoteLink(
                remote,
                mode=mode,
                window=window,
                device=device,
                recovery=recovery,
                registry=registry,
                connect_timeout=connect_timeout,
                handshake_timeout=handshake_timeout,
                stream_factory=stream_factory,
            )
        self._backlog: list[SampleBlock] = []
        self._backlog_count = 0
        super().__init__(
            link,
            vectorized=vectorized,
            registry=registry,
            tracer=tracer,
            device=link.device,
        )

    # The serial-link property chain ends at the daemon, not a local
    # firmware object: rate and stats come from the handshake.
    @property
    def sample_rate(self) -> float:
        rate = float(self.link.device_info()["sample_rate"])
        if self.link.mode == "window" and self.link.window > 1:
            return rate / self.link.window
        return rate

    @property
    def reconnects(self) -> int:
        return self.link.reconnects

    @property
    def frames_missed(self) -> int:
        return self.link.frames_missed

    @property
    def eos_stats(self) -> dict | None:
        return self.link.eos

    def write_configs(self, configs) -> None:
        raise ServerError(
            "remote sample sources are read-only: the device is shared; "
            "write configuration on the serving host"
        )

    def query_history(
        self,
        t0: float | None = None,
        t1: float | None = None,
        max_points: int | None = None,
    ):
        """Query the server's recorded history (see :meth:`RemoteLink.query_history`)."""
        return self.link.query_history(t0, t1, max_points)

    def read_block(self, n_samples: int) -> SampleBlock:
        """Return exactly ``n_samples`` samples (less only at end of stream)."""
        # Keep pulling even once EOS is flagged: frames decoded in the
        # same socket read as the EOS frame are still queued in the link.
        while self._backlog_count < n_samples:
            frame = self.link.next_data()
            if frame is None:
                break
            if frame.type == FrameType.DATA:
                block = self._decode(frame.payload, 0)
            else:
                block = self._window_block(frame.payload)
            if len(block):
                self._backlog.append(block)
                self._backlog_count += len(block)
        return self._take(min(n_samples, self._backlog_count))

    def read_block_raw(self, n_samples: int):
        raise ServerError("a remote source cannot relay raw bytes (no local device)")

    def _window_block(self, payload: bytes) -> SampleBlock:
        times, values, markers, enabled = unpack_window(payload)
        self.health.samples_decoded += times.size
        return SampleBlock(times=times, values=values, markers=markers, enabled=enabled)

    def _take(self, n: int) -> SampleBlock:
        if n <= 0:
            return self._empty_block()
        if len(self._backlog) == 1 and len(self._backlog[0]) == n:
            block = self._backlog.pop()
            self._backlog_count = 0
            return block
        times = np.concatenate([b.times for b in self._backlog])
        values = np.concatenate([b.values for b in self._backlog])
        markers = np.concatenate([b.markers for b in self._backlog])
        enabled = self._backlog[0].enabled
        taken = SampleBlock(
            times=times[:n], values=values[:n], markers=markers[:n], enabled=enabled
        )
        rest_n = times.size - n
        if rest_n:
            self._backlog = [
                SampleBlock(
                    times=times[n:],
                    values=values[n:],
                    markers=markers[n:],
                    enabled=enabled,
                )
            ]
        else:
            self._backlog = []
        self._backlog_count = rest_n
        return taken

    def close(self) -> None:
        self.link.close()


class RemoteSetup:
    """A connected remote bench: the ``--remote`` analogue of SimulatedSetup.

    Wraps a :class:`RemoteSampleSource` and its :class:`PowerSensor` with
    the attribute surface the CLI tools use (``ps``, ``source``, ``link``,
    ``registry``, ``tracer``, ``sample_rate``, ``close``).  The physical
    bench (baseboard, EEPROM, calibration) lives on the serving host;
    touching it here raises :class:`ServerError`.

    ``faults`` injects the usual fault models on the *client's* receive
    path — the framing layer, not the device stream — for exercising the
    wire protocol's resynchronisation.
    """

    def __init__(
        self,
        remote: str,
        mode: str = "raw",
        window: int = 1,
        device: str | None = None,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
        faults: str | list | None = None,
        fault_seed: int = 0,
        connect_timeout: float = 5.0,
        handshake_timeout: float | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.device = device
        stream_factory = None
        if faults:
            from repro.transport.bytestream import FaultyByteStream
            from repro.transport.faults import parse_fault_spec

            models = parse_fault_spec(faults) if isinstance(faults, str) else faults

            def stream_factory(spec: str, _models=models) -> ByteStream:
                return FaultyByteStream(
                    connect_stream(spec, timeout=connect_timeout),
                    _models,
                    seed=fault_seed,
                    registry=self.registry,
                )

        self.source = RemoteSampleSource(
            remote,
            mode=mode,
            window=window,
            device=device,
            recovery=recovery,
            registry=self.registry,
            tracer=self.tracer,
            connect_timeout=connect_timeout,
            handshake_timeout=handshake_timeout,
            stream_factory=stream_factory,
        )
        self.link = self.source.link
        self.ps = PowerSensor(self.source, recovery=recovery)

    @property
    def sample_rate(self) -> float:
        return self.source.sample_rate

    def _remote_only(self, what: str):
        raise ServerError(
            f"{what} is not available over --remote: the physical bench "
            "lives on the serving host"
        )

    @property
    def baseboard(self):
        self._remote_only("the baseboard")

    @property
    def eeprom(self):
        self._remote_only("the EEPROM")

    @property
    def firmware(self):
        self._remote_only("the firmware")

    def connect(self, slot: int, rail) -> None:
        self._remote_only("connecting a DUT rail")

    def close(self) -> None:
        try:
            self.ps.close()
        finally:
            self.source.close()

    def __enter__(self) -> "RemoteSetup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


register_source("remote", RemoteSampleSource)
