"""Per-client send buffers with selectable backpressure policy.

A slow subscriber must not stall the shared 20 kHz pump, so every client
gets a bounded frame queue between the pump and its sender thread.  What
happens when the queue fills is the policy:

* ``block`` — the pump waits (bounded by a timeout) for the sender to
  drain; a client that stays full past the timeout is evicted.  Lossless
  while connected; the right choice for recording consumers.
* ``drop-oldest`` — the oldest droppable frame is discarded to make
  room.  The client keeps up with *now* at the cost of history; the right
  choice for live dashboards.
* ``downsample`` — under pressure, every second incoming droppable frame
  is discarded, halving the data rate until the queue drains.  Graceful
  degradation for consumers that prefer uniform thinning over a gap.

Control frames (``EOS``, ``CONFIG``, ...) are enqueued as non-droppable:
they may overfill the queue momentarily but are never discarded, so a
client always learns *why* its stream ended.

Drop accounting is exact: each lost frame is counted **exactly once**,
either in :attr:`SendBuffer.dropped_oldest` (a queued frame evicted to
make room) or in :attr:`SendBuffer.dropped_newest` (an arriving frame
refused outright — a downsample skip, or a queue full of non-droppable
frames).  :attr:`SendBuffer.dropped` is their sum; the daemon mirrors
both kinds into
``server_frames_dropped_total{client=,policy=,device=,kind=}``.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.common.errors import ConfigurationError

POLICIES = ("block", "drop-oldest", "downsample")


class BufferTimeout(Exception):
    """A ``block``-policy put timed out; the caller should evict the client."""


class SendBuffer:
    """Bounded, thread-safe frame queue between the pump and one sender."""

    def __init__(
        self,
        policy: str = "block",
        max_frames: int = 256,
        block_timeout: float = 5.0,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {policy!r} (choose from {POLICIES})"
            )
        if max_frames < 1:
            raise ConfigurationError(f"max_frames must be >= 1, got {max_frames}")
        self.policy = policy
        self.max_frames = int(max_frames)
        self.block_timeout = float(block_timeout)
        self.dropped_oldest = 0  # queued frames evicted to make room
        self.dropped_newest = 0  # arriving frames refused outright
        self._queue: deque[tuple[bytes, bool]] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._downsample_skip = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def dropped(self) -> int:
        """Frames lost by the policy — exactly one count per lost frame."""
        return self.dropped_oldest + self.dropped_newest

    def put(self, frame: bytes, droppable: bool = True) -> bool:
        """Enqueue one encoded frame; returns False if the policy dropped it.

        Non-droppable frames always enter the queue (briefly exceeding
        ``max_frames`` if needed).  Raises :class:`BufferTimeout` when the
        ``block`` policy cannot make room within ``block_timeout``.
        """
        with self._lock:
            if self._closed:
                return False
            if not droppable or len(self._queue) < self.max_frames:
                self._append(frame, droppable)
                return True
            if self.policy == "block":
                deadline_ok = self._not_full.wait_for(
                    lambda: self._closed or len(self._queue) < self.max_frames,
                    timeout=self.block_timeout,
                )
                if self._closed:
                    return False
                if not deadline_ok:
                    raise BufferTimeout(
                        f"send buffer full for {self.block_timeout:.1f}s"
                    )
                self._append(frame, droppable)
                return True
            if self.policy == "drop-oldest":
                if self._drop_oldest():
                    self._append(frame, droppable)
                    return True
                # Queue full of non-droppable frames: drop the newcomer.
                self.dropped_newest += 1
                return False
            # downsample: under pressure, discard every second arrival.
            self._downsample_skip = not self._downsample_skip
            if self._downsample_skip:
                self.dropped_newest += 1
                return False
            if not self._drop_oldest():
                self.dropped_newest += 1
                return False
            self._append(frame, droppable)
            return True

    def _append(self, frame: bytes, droppable: bool) -> None:
        self._queue.append((frame, droppable))
        self._not_empty.notify()

    def _drop_oldest(self) -> bool:
        """Discard the oldest droppable frame; False if none exists."""
        for i, (_, droppable) in enumerate(self._queue):
            if droppable:
                del self._queue[i]
                self.dropped_oldest += 1
                return True
        return False

    def get(self, timeout: float | None = None) -> bytes | None:
        """Dequeue one frame; ``None`` on timeout or when closed and empty."""
        with self._lock:
            ok = self._not_empty.wait_for(
                lambda: self._queue or self._closed, timeout=timeout
            )
            if not ok or not self._queue:
                return None
            frame, _ = self._queue.popleft()
            self._not_full.notify()
            return frame

    def close(self) -> None:
        """Unblock all waiters; subsequent puts are no-ops."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
