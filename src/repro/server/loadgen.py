"""A subscriber swarm for exercising psserve fan-out at scale.

``psrun --remote`` clients are full :class:`RemoteSampleSource` stacks —
one OS thread plus a decoder each, which is exactly the cost model the
async server exists to escape.  Measuring a 1024-subscriber fan-out with
1024 client *threads* would bench the load generator, not the server, on
a 1-CPU box.

:func:`run_swarm` instead drives N minimal asyncio subscribers on one
event loop (callable from a plain thread): each one performs the
HELLO → SUBSCRIBE → SUBACK → START handshake, then counts DATA/WINDOW
frames, bytes and sequence gaps until EOS.  ``read_delay`` throttles a
subscriber's reads and ``stall`` pauses it once right after START — the
deterministic way to force backpressure, since a stalled subscriber's
backlog outgrows the kernel-socket + transport write slack no matter how
fast the server pumps.  ``slow_fraction`` applies both knobs to only the
first ``slow_fraction * n_clients`` subscribers so one test can watch
fast and slow cursors side by side.

The per-client :class:`ClientResult` carries everything the scaling
tests assert on: frames seen, sequence-gap losses (the client-side view
of ``drop-oldest`` gap accounting) and the server's EOS stats payload.
"""

from __future__ import annotations

import asyncio
import errno
from dataclasses import dataclass, field

from repro.server.wire import (
    FrameDecoder,
    FrameType,
    encode_control,
    encode_frame,
    parse_endpoint,
)

#: Socket read size for swarm subscribers.
READ_CHUNK = 65536


@dataclass
class ClientResult:
    """What one swarm subscriber observed."""

    index: int
    client_id: int | None = None
    device: str | None = None
    mode: str | None = None
    frames: int = 0
    bytes: int = 0
    first_seq: int | None = None
    last_seq: int | None = None
    seq_gaps: int = 0  # frames lost upstream, by sequence accounting
    eos: dict | None = None
    error: str | None = None
    markers: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None and self.eos is not None


@dataclass
class SwarmResult:
    """All subscriber results plus swarm-level accounting."""

    clients: list[ClientResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def completed(self) -> list[ClientResult]:
        return [c for c in self.clients if c.ok]

    @property
    def total_frames(self) -> int:
        return sum(c.frames for c in self.clients)

    @property
    def total_gaps(self) -> int:
        return sum(c.seq_gaps for c in self.clients)

    def eos_total(self, key: str) -> int:
        return sum(int((c.eos or {}).get(key, 0)) for c in self.clients)


#: Connect retry budget.  A swarm's connect storm can transiently
#: overflow the server's listen backlog, which on unix sockets does not
#: queue the connect the way TCP does — see :func:`_open`.
CONNECT_RETRIES = 20
CONNECT_BACKOFF = 0.05
_RETRYABLE_CONNECT_ERRNOS = frozenset(
    {errno.ECONNREFUSED, errno.ECONNRESET, errno.EAGAIN, errno.EINVAL, errno.ENOTCONN}
)


async def _open(endpoint) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Connect to the server, retrying storm-induced failures.

    An AF_UNIX ``connect()`` against a full listen backlog fails with
    EAGAIN, which the event loop misreads as an in-progress AF_INET
    connect: it waits for writability, sees ``SO_ERROR == 0`` and hands
    back a stream whose socket never connected (reads then die with
    EINVAL).  ``getpeername()`` unmasks that phantom as ENOTCONN right
    away so the swarm can back off and retry instead of wedging a
    rendezvous on a subscriber that was never there.
    """
    kind, target = endpoint
    for attempt in range(CONNECT_RETRIES):
        writer = None
        try:
            if kind == "unix":
                reader, writer = await asyncio.open_unix_connection(target)
                writer.get_extra_info("socket").getpeername()
            else:
                host, port = target
                reader, writer = await asyncio.open_connection(host, port)
            return reader, writer
        except OSError as error:
            if writer is not None:
                writer.close()
            retryable = error.errno in _RETRYABLE_CONNECT_ERRNOS
            if not retryable or attempt == CONNECT_RETRIES - 1:
                raise
            await asyncio.sleep(CONNECT_BACKOFF * (attempt + 1))
    raise AssertionError("unreachable")


async def _subscribe(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    decoder: FrameDecoder,
    request: dict,
) -> tuple[dict, list]:
    """HELLO -> SUBSCRIBE -> SUBACK; returns (suback, undelivered frames)."""
    pending: list = []
    while True:
        data = await reader.read(READ_CHUNK)
        if not data:
            raise ConnectionError("closed before HELLO")
        frames = decoder.feed(data)
        if any(f.type == FrameType.HELLO for f in frames):
            pending = [f for f in frames if f.type != FrameType.HELLO]
            break
    writer.write(encode_control(FrameType.SUBSCRIBE, 0, request))
    await writer.drain()
    while True:
        for i, frame in enumerate(pending):
            if frame.type == FrameType.SUBACK:
                return frame.json(), pending[i + 1 :]
            if frame.type == FrameType.ERROR:
                raise ConnectionError(frame.json().get("message", "server error"))
        data = await reader.read(READ_CHUNK)
        if not data:
            raise ConnectionError("closed during handshake")
        pending = decoder.feed(data)


async def _run_client(
    index: int,
    endpoint,
    request: dict,
    connect_gate: asyncio.Semaphore,
    read_delay: float,
    stall: float,
    max_frames: int | None,
) -> ClientResult:
    result = ClientResult(index=index)
    writer: asyncio.StreamWriter | None = None
    try:
        async with connect_gate:
            reader, writer = await _open(endpoint)
            decoder = FrameDecoder()
            suback, pending = await _subscribe(reader, writer, decoder, request)
        result.client_id = suback.get("client")
        result.device = suback.get("device")
        result.mode = suback.get("mode")
        writer.write(encode_frame(FrameType.START, 0))
        await writer.drain()
        if stall:
            await asyncio.sleep(stall)
        done = False
        while not done:
            for frame in pending:
                if frame.type in (FrameType.DATA, FrameType.WINDOW):
                    result.frames += 1
                    result.bytes += len(frame.payload)
                    if result.first_seq is None:
                        result.first_seq = frame.seq
                    elif result.last_seq is not None and frame.seq > result.last_seq + 1:
                        result.seq_gaps += frame.seq - result.last_seq - 1
                    result.last_seq = frame.seq
                    if max_frames is not None and result.frames >= max_frames:
                        done = True
                elif frame.type == FrameType.EOS:
                    result.eos = frame.json()
                    done = True
                elif frame.type == FrameType.ERROR:
                    result.error = frame.json().get("message", "server error")
                    done = True
            if done:
                break
            if read_delay:
                await asyncio.sleep(read_delay)
            data = await reader.read(READ_CHUNK)
            if not data:
                result.error = result.error or "connection closed without EOS"
                break
            pending = decoder.feed(data)
    except (ConnectionError, OSError, asyncio.IncompleteReadError) as error:
        result.error = str(error) or error.__class__.__name__
    finally:
        if writer is not None:
            try:
                writer.write(encode_frame(FrameType.BYE, 0))
                writer.close()
            except (ConnectionError, OSError):
                pass
    return result


async def _swarm(
    address: str,
    n_clients: int,
    request: dict,
    connect_concurrency: int,
    read_delay: float,
    stall: float,
    slow_fraction: float,
    max_frames: int | None,
    timeout: float | None,
) -> SwarmResult:
    endpoint = parse_endpoint(address)
    gate = asyncio.Semaphore(connect_concurrency)
    n_slow = int(round(n_clients * slow_fraction))
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    tasks = [
        asyncio.ensure_future(
            _run_client(
                i,
                endpoint,
                request,
                gate,
                read_delay if i < n_slow else 0.0,
                stall if i < n_slow else 0.0,
                max_frames,
            )
        )
        for i in range(n_clients)
    ]
    done, pending = await asyncio.wait(tasks, timeout=timeout)
    for task in pending:
        task.cancel()
    clients = []
    for i, task in enumerate(tasks):
        if task in done and not task.cancelled() and task.exception() is None:
            clients.append(task.result())
        else:
            clients.append(ClientResult(index=i, error="swarm timeout"))
    return SwarmResult(clients=clients, elapsed=loop.time() - t0)


def run_swarm(
    address: str,
    n_clients: int,
    *,
    device: str | None = None,
    mode: str = "raw",
    window: int = 1,
    connect_concurrency: int = 64,
    read_delay: float = 0.0,
    stall: float = 0.0,
    slow_fraction: float = 1.0,
    max_frames: int | None = None,
    timeout: float | None = None,
) -> SwarmResult:
    """Run ``n_clients`` asyncio subscribers against a psserve endpoint.

    Blocks the calling thread until every subscriber reaches EOS (or
    errors, or ``timeout`` elapses).  Runs its own event loop, so it
    must be called from a thread that has none — the natural shape is
    the server's loop in one thread (or process) and the swarm here.
    """
    request: dict = {"mode": mode, "window": window}
    if device is not None:
        request["device"] = device
    return asyncio.run(
        _swarm(
            address,
            n_clients,
            request,
            connect_concurrency,
            read_delay,
            stall,
            slow_fraction,
            max_frames,
            timeout,
        )
    )
