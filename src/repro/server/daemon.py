"""The psserve daemon: N devices, thousands of subscribers, one event loop.

:class:`PowerSensorServer` owns one or more named
:class:`~repro.core.sources.SampleSource` devices and fans their streams
out over TCP or Unix sockets.  Each subscriber names its device in the
``SUBSCRIBE`` frame (the HELLO advertises all of them); omitting the
name subscribes to the first device, which keeps single-device clients
oblivious to the fleet.

The core is a **single-threaded asyncio event loop** around a **shared
broadcast ring** (:mod:`repro.server.ring`): per pump tick each device's
DATA frame is encoded exactly once and appended to the device's
:class:`~repro.server.ring.BroadcastRing`; every subscriber holds a
:class:`~repro.server.ring.RingCursor` into that ring instead of a
per-client frame queue, so fan-out cost is one encode plus N integer
cursor advances — independent of payload size and linear only in the
*count* of subscribers.  Server-side windowing is shared the same way:
all subscribers of one ``(device, window)`` stream read one ring fed by
a single vectorised NumPy fold per tick (so the window(1) float64
downgrade of a byte-less device costs one ``pack_window`` per tick, not
one per client).

Backpressure policies are cursor policies: ``block`` flow-controls the
pump (bounded by the client timeout, then evicts the laggard),
``drop-oldest`` lets the ring evict and accounts the gap on the lapped
cursor, ``downsample`` thins a pressured cursor to alternate frames.
Per-socket flow control is the transport's own: each client's writer
coroutine awaits ``drain()``, so a slow socket shows up as cursor lag,
never as a stalled pump.

The public surface is thread-friendly: :meth:`start`, :meth:`serve`,
:meth:`finish` and :meth:`close` may be called from plain threads (the
CLI and the test suite do); they marshal onto the loop internally.

Everything observable is counted: the thread-era series
(``server_clients_connected``, ``server_clients_total``,
``server_clients_evicted_total``, ``server_samples_produced_total``,
``server_frames_sent_total``, ``server_bytes_sent_total``,
``server_frames_dropped_total{client=,policy=,device=,kind=}``, the
``server_accept`` / ``server_pump`` / ``server_send`` spans) plus the
ring-era gauges ``server_frames_encoded_total{device=}``,
``server_ring_occupancy{device=}`` and
``server_client_cursor_lag{client=,device=}``.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
from collections import deque

import numpy as np

from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    ServerError,
    TransportError,
)
from repro.core.sources import SampleBlock, SampleSource
from repro.hardware.eeprom import VirtualEeprom
from repro.observability import MetricsRegistry, Tracer
from repro.server.backpressure import POLICIES
from repro.server.ring import BroadcastRing, RingCursor
from repro.server.wire import (
    HISTORY_FAILED,
    HISTORY_NO_STORE,
    HISTORY_OK,
    Frame,
    FrameDecoder,
    FrameType,
    encode_control,
    encode_frame,
    pack_history,
    pack_window,
    parse_endpoint,
)

#: Default pump chunk: 400 samples = 20 ms of stream at 20 kHz.
DEFAULT_CHUNK = 400
#: Cap on rows in one HISTORY_DATA reply (bounds the payload well under
#: MAX_PAYLOAD even with both min/max envelopes attached).
HISTORY_MAX_POINTS = 4096
#: Frames a writer drains per wake-up before yielding to its peers.
WRITER_BATCH = 64
#: ``asyncio.wait_for`` raises ``asyncio.TimeoutError``, which is only an
#: alias of the builtin ``TimeoutError`` from Python 3.11 on; catch both
#: so timeouts are handled on 3.10 too.
_TIMEOUTS = (TimeoutError, asyncio.TimeoutError)


def _raw_capable(source) -> bool:
    """True if the source can relay raw wire bytes (read_block_raw).

    Remote sources inherit the method but raise — a re-served remote
    stream (and any source without wire bytes) goes out as sample-exact
    float64 WINDOW rows instead.
    """
    if not callable(getattr(source, "read_block_raw", None)):
        return False
    from repro.server.client import RemoteSampleSource

    return not isinstance(source, RemoteSampleSource)


def _bind_listener(endpoint: tuple[str, object], backlog: int) -> socket.socket:
    """Bind (but don't accept on) the listening socket for an endpoint."""
    kind, target = endpoint
    if kind == "unix":
        assert isinstance(target, str)
        if os.path.exists(target):
            os.unlink(target)  # stale socket from a previous run
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(target)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(target)  # type: ignore[arg-type]
    sock.listen(backlog)
    return sock


def _unlink_unix(endpoint: tuple[str, object]) -> None:
    kind, target = endpoint
    if kind == "unix" and isinstance(target, str) and os.path.exists(target):
        try:
            os.unlink(target)
        except OSError:
            pass


def _source_pair_names(source) -> list[str]:
    """Recorded pair names for a source, the way ``PowerSensor.dump`` picks them."""
    configs = list(source.configs)
    names = []
    for pair in range(len(configs) // 2):
        if configs[2 * pair].enabled and configs[2 * pair + 1].enabled:
            names.append(configs[2 * pair].pair_name or f"pair{pair}")
    return names


class _Device:
    """Server-side state for one served device (shared by both engines)."""

    def __init__(self, name: str, source, registry: MetricsRegistry) -> None:
        self.name = name
        self.source = source
        self.store = None  # TelemetryStore when the server records history
        self.raw_capable = _raw_capable(source)
        self.seq = 0  # DATA sequence for the threaded engine
        self.samples_produced = 0
        self.samples_counter = registry.counter(
            "server_samples_produced_total",
            help="samples pumped from the device",
            device=name,
        )
        # Ring-engine state (unused by the threaded engine).
        self.clients: set[_AsyncClient] = set()
        self.raw_ring: BroadcastRing | None = None
        self.window_streams: dict[int, _WindowStream] = {}
        self.encode_counter = registry.counter(
            "server_frames_encoded_total",
            help="frames encoded into the device's broadcast rings",
            device=name,
        )
        self.ring_gauge = registry.gauge(
            "server_ring_occupancy",
            help="frames retained in the device's raw broadcast ring",
            device=name,
        )

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def ensure_raw_ring(self, capacity: int) -> BroadcastRing:
        if self.raw_ring is None:
            self.raw_ring = BroadcastRing(capacity)
        return self.raw_ring

    def info(self) -> dict:
        return {
            "version": self.source.version,
            "sample_rate": self.source.sample_rate,
            "history": self.store is not None,
        }

    def config_image(self) -> bytes:
        """The device's current EEPROM image (fresh, not connect-time)."""
        return VirtualEeprom(configs=list(self.source.configs)).pack()


class _WindowStream:
    """One shared server-side window stream: fold and encode once per tick.

    All subscribers of the same ``(device, window)`` pair share this
    accumulator and its ring — the thread-era daemon kept one
    accumulator *per client* and paid a Python fold per client per tick.
    """

    def __init__(self, window: int, capacity: int) -> None:
        self.window = int(window)
        self.ring = BroadcastRing(capacity)
        self.acc: list[SampleBlock] = []
        self.acc_count = 0

    def fold(self, block: SampleBlock) -> list[tuple[bytes, int]]:
        """Fold one device block; return the encoded WINDOW frames due.

        Each returned entry is ``(frame, raw_samples_covered)``.  A
        window of 1 (the byte-less-device downgrade) is the fast path:
        one ``pack_window`` pass over the block, no accumulation.
        """
        w = self.window
        if w == 1:
            if not len(block):
                return []
            payload = pack_window(
                block.times, block.values, block.markers, block.enabled
            )
            frame = encode_frame(FrameType.WINDOW, self.ring.next_seq(), payload)
            return [(frame, len(block))]
        if len(block):
            self.acc.append(block)
            self.acc_count += len(block)
        if self.acc_count < w:
            return []
        times = np.concatenate([b.times for b in self.acc])
        values = np.concatenate([b.values for b in self.acc])
        markers = np.concatenate([b.markers for b in self.acc])
        k = self.acc_count // w
        used = k * w
        avg_times = times[:used].reshape(k, w).mean(axis=1)
        avg_values = values[:used].reshape(k, w, values.shape[1]).mean(axis=1)
        any_markers = markers[:used].reshape(k, w).any(axis=1)
        leftover = SampleBlock(
            times=times[used:],
            values=values[used:],
            markers=markers[used:],
            enabled=block.enabled,
        )
        self.acc = [leftover] if len(leftover) else []
        self.acc_count -= used
        payload = pack_window(avg_times, avg_values, any_markers, block.enabled)
        frame = encode_frame(FrameType.WINDOW, self.ring.next_seq(), payload)
        return [(frame, used)]


class _AsyncClient:
    """Server-side state for one subscriber on the event loop."""

    def __init__(
        self,
        cid: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        device: _Device,
        cursor: RingCursor,
    ) -> None:
        self.id = cid
        self.reader = reader
        self.writer = writer
        self.device = device
        self.cursor = cursor
        self.decoder = FrameDecoder()
        self.mode = "raw"
        self.window = 1
        self.started = False
        self.ever_started = False
        self.finishing = False
        self.evicted = False
        self.torn = False
        self.eos_reason: str | None = None
        self.seq = 0  # per-client sequence for control frames
        self.frames_sent = 0
        self.samples_sent = 0
        self.control: deque[bytes] = deque()
        self.wake = asyncio.Event()
        self.writer_task: asyncio.Task | None = None
        self.drop_counters: dict[str, object] = {}
        self.lag_gauge = None

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq


class PowerSensorServer:
    """Serve one or more PowerSensor streams to N subscribers (asyncio).

    ``source`` is a single :class:`~repro.core.sources.SampleSource` or a
    ``{name: source}`` dict for a multi-device endpoint; the first entry
    is the default device for subscribers that don't name one.
    """

    def __init__(
        self,
        source: SampleSource | dict[str, SampleSource],
        listen: str,
        *,
        policy: str = "block",
        buffer_frames: int = 256,
        chunk: int = DEFAULT_CHUNK,
        pump_batch: int = 1,
        client_timeout: float = 5.0,
        max_clients: int = 64,
        time_scale: float = 0.0,
        wait_clients: int = 0,
        record_store: str | None = None,
        store_roll: int = 1_000_000,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {policy!r} (choose from {POLICIES})"
            )
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk}")
        if pump_batch < 1:
            raise ConfigurationError(f"pump_batch must be >= 1, got {pump_batch}")
        self.endpoint = parse_endpoint(listen)
        self.policy = policy
        self.buffer_frames = int(buffer_frames)
        self.chunk = int(chunk)
        self.pump_batch = int(pump_batch)
        self.client_timeout = float(client_timeout)
        self.max_clients = int(max_clients)
        self.time_scale = float(time_scale)
        self.wait_clients = int(wait_clients)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)

        if not isinstance(source, dict):
            source = {getattr(source, "device", None) or "device0": source}
        if not source:
            raise ConfigurationError("a server needs at least one device")
        self.devices: dict[str, _Device] = {
            name: _Device(name, src, self.registry) for name, src in source.items()
        }
        self.default_device = next(iter(self.devices.values()))
        self.source = self.default_device.source  # single-device back-compat

        self.record_store = record_store
        if record_store is not None:
            # One store per served device: everything the pump produces
            # is also appended here, and HISTORY requests query it.
            from repro.store import TelemetryStore

            for device in self.devices.values():
                device.store = TelemetryStore(
                    os.path.join(record_store, device.name),
                    roll_samples=int(store_roll),
                    device=device.name,
                    sample_rate=float(device.source.sample_rate),
                    pair_names=_source_pair_names(device.source),
                    registry=self.registry,
                    tracer=self.tracer,
                )

        self._clients: dict[int, _AsyncClient] = {}
        self._next_cid = 0
        self._starts_seen = 0  # distinct subscribers that ever sent START
        self._listener: socket.socket | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._aio_server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._started_event: asyncio.Event | None = None
        self._drain_event: asyncio.Event | None = None
        self._serve_task: asyncio.Task | None = None

        self._connected_gauge = self.registry.gauge(
            "server_clients_connected", help="subscribers currently connected"
        )
        self._clients_counter = self.registry.counter(
            "server_clients_total", help="subscribers accepted since start"
        )
        self._evicted_counter = self.registry.counter(
            "server_clients_evicted_total",
            help="subscribers force-disconnected (backpressure or send failure)",
        )
        self._samples_counter = self.registry.counter(
            "server_samples_produced_total", help="samples pumped from the device"
        )
        self._frames_counter = self.registry.counter(
            "server_frames_sent_total", help="frames written to subscribers"
        )
        self._bytes_counter = self.registry.counter(
            "server_bytes_sent_total", help="frame bytes written to sockets"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle (thread-facing surface)                                  #
    # ------------------------------------------------------------------ #

    @property
    def samples_produced(self) -> int:
        """Samples pumped across every device since start."""
        return sum(d.samples_produced for d in self.devices.values())

    @property
    def address(self) -> str:
        """The bound address, as a connect spec (useful with port 0)."""
        kind, target = self.endpoint
        if kind == "unix":
            return f"unix:{target}"
        host, port = target  # type: ignore[misc]
        if self._listener is not None:
            host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    def start(self) -> None:
        """Bind the listener and start the event loop thread."""
        if self._loop is not None:
            return
        # The backlog needs headroom beyond max_clients: a connect storm
        # deeper than the queue makes unix-socket connects fail hard
        # (ECONNREFUSED/EINVAL) rather than wait for an accept slot.
        self._listener = _bind_listener(self.endpoint, max(self.max_clients, 512))
        loop = asyncio.new_event_loop()
        self._loop = loop
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="psserve-loop", daemon=True
        )
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(self._start_async(), loop).result(timeout=10)

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _start_async(self) -> None:
        self._stop_event = asyncio.Event()
        self._started_event = asyncio.Event()
        self._drain_event = asyncio.Event()
        assert self._listener is not None
        self._listener.setblocking(False)
        kind, _ = self.endpoint
        if kind == "unix":
            self._aio_server = await asyncio.start_unix_server(
                self._client_connected, sock=self._listener
            )
        else:
            self._aio_server = await asyncio.start_server(
                self._client_connected, sock=self._listener
            )

    def serve(self, duration: float | None = None) -> dict:
        """Pump every device and fan out until ``duration`` simulated seconds.

        Each pump round advances every device by the same simulated time
        (per-device chunk sizes scale with sample rate), so a fleet's
        clocks stay aligned.  ``duration=None`` pumps until
        :meth:`close` (or Ctrl-C in the CLI).  With ``time_scale > 0``
        the pump paces itself against the wall clock (1.0 = real time);
        0 pumps as fast as possible.  Returns a stats dict (also the
        shape of the EOS payload).  Blocks the calling thread; the work
        happens on the server's event loop.
        """
        loop = self._require_loop()
        future = asyncio.run_coroutine_threadsafe(self._serve_async(duration), loop)
        return future.result()

    def finish(self, reason: str = "end of stream") -> dict:
        """Stop pumping, send EOS (with stats) to everyone, return stats."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return self._stats_dict(reason)
        loop.call_soon_threadsafe(self._signal_stop)
        return asyncio.run_coroutine_threadsafe(
            self._finish_async(reason), loop
        ).result(timeout=max(self.client_timeout, 2.0) + 10)

    def close(self) -> None:
        """Stop accepting, end the stream, disconnect everyone."""
        loop = self._loop
        if loop is None:
            self._close_stores()
            _unlink_unix(self.endpoint)
            return
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown_async(), loop).result(
                timeout=max(self.client_timeout, 2.0) + 15
            )
        finally:
            loop.call_soon_threadsafe(loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=10)
                self._loop_thread = None
            loop.close()
            self._loop = None
            self._listener = None
            self._close_stores()
            _unlink_unix(self.endpoint)

    def _close_stores(self) -> None:
        """Seal and close every device's telemetry store (idempotent)."""
        for device in self.devices.values():
            if device.store is not None:
                device.store.close()

    def __enter__(self) -> "PowerSensorServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise ServerError("server is not started (call start() first)")
        return self._loop

    def _signal_stop(self) -> None:
        """Loop-thread half of stopping: wake everything that waits."""
        if self._stop_event is not None:
            self._stop_event.set()
        if self._started_event is not None:
            self._started_event.set()
        if self._drain_event is not None:
            self._drain_event.set()

    async def _shutdown_async(self) -> None:
        self._signal_stop()
        if self._aio_server is not None:
            self._aio_server.close()
        serve_task = self._serve_task
        if serve_task is not None:
            # The pump notices the stop event within one pacing interval
            # and runs _finish_async itself.
            await asyncio.wait({serve_task}, timeout=max(self.client_timeout, 2.0) + 5)
        if self._clients:
            await self._finish_async("server closed")
        if self._aio_server is not None:
            try:
                await self._aio_server.wait_closed()
            except Exception:
                pass
            self._aio_server = None

    # ------------------------------------------------------------------ #
    # Accepting and per-client coroutines                                #
    # ------------------------------------------------------------------ #

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client: _AsyncClient | None = None
        leftovers: list[Frame] = []
        try:
            try:
                with self.tracer.span("server_accept"):
                    client, leftovers = await asyncio.wait_for(
                        self._handshake(reader, writer), timeout=self.client_timeout
                    )
            except (
                TimeoutError,
                asyncio.TimeoutError,
                TransportError,
                ServerError,
                ConfigurationError,
                ProtocolError,
                ConnectionError,
                OSError,
            ):
                client = None
            if client is None:
                writer.close()
                return
            client.writer_task = asyncio.get_running_loop().create_task(
                self._writer_loop(client)
            )
            if self._handle_control(client, leftovers):
                await self._control_loop(client)
        finally:
            if client is not None:
                self._teardown(client)

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple[_AsyncClient | None, list[Frame]]:
        """HELLO -> SUBSCRIBE -> SUBACK; returns (client, undelivered frames)."""
        hello = {
            "server": "psserve",
            # Legacy top-level fields describe the default device so old
            # single-device clients keep working unmodified.
            "version": self.default_device.source.version,
            "sample_rate": self.default_device.source.sample_rate,
            "policy": self.policy,
            "buffer_frames": self.buffer_frames,
            "devices": {name: dev.info() for name, dev in self.devices.items()},
        }
        writer.write(encode_control(FrameType.HELLO, 0, hello))
        await writer.drain()
        decoder = FrameDecoder()
        sub: Frame | None = None
        leftovers: list[Frame] = []
        while sub is None:
            data = await reader.read(65536)
            if not data:
                return None, []
            frames = decoder.feed(data)
            for i, frame in enumerate(frames):
                if frame.type == FrameType.SUBSCRIBE:
                    sub = frame
                    leftovers = frames[i + 1 :]
                    break
                if frame.type == FrameType.BYE:
                    return None, []
        request = sub.json()
        mode = request.get("mode", "raw")
        window = int(request.get("window", 1) or 1)
        if mode not in ("raw", "window") or window < 1:
            writer.write(
                encode_control(
                    FrameType.ERROR, 0, {"message": f"bad subscription {request!r}"}
                )
            )
            await writer.drain()
            return None, []
        device_name = request.get("device") or self.default_device.name
        device = self.devices.get(device_name)
        if device is None:
            writer.write(
                encode_control(
                    FrameType.ERROR,
                    0,
                    {
                        "message": f"unknown device {device_name!r}",
                        "devices": list(self.devices),
                    },
                )
            )
            await writer.drain()
            return None, []
        # A raw subscription needs the device's wire byte stream; fall
        # back to sample-exact single-sample windows when it has none.
        if mode == "raw" and not device.raw_capable:
            mode = "window"
            window = max(window, 1)
        if len(self._clients) >= self.max_clients:
            writer.write(
                encode_control(FrameType.ERROR, 0, {"message": "server full"})
            )
            await writer.drain()
            return None, []
        if mode == "raw":
            ring = device.ensure_raw_ring(self.buffer_frames)
        else:
            stream = device.window_streams.get(window)
            if stream is None:
                stream = _WindowStream(window, self.buffer_frames)
                device.window_streams[window] = stream
            ring = stream.ring
        cid = self._next_cid
        self._next_cid += 1
        client = _AsyncClient(
            cid, reader, writer, device, RingCursor(ring, policy=self.policy)
        )
        # Adopt the handshake decoder: partial bytes of a pipelined
        # control frame split across the SUBSCRIBE read boundary must
        # carry over into the control loop, not be silently dropped.
        client.decoder = decoder
        client.mode = mode
        client.window = window
        self._clients[cid] = client
        device.clients.add(client)
        self._connected_gauge.set(len(self._clients))
        self._clients_counter.inc()
        # Per-client backpressure accounting: ``kind`` distinguishes
        # ring-evicted frames from downsample-skipped ones.
        client.drop_counters = {
            kind: self.registry.counter(
                "server_frames_dropped_total",
                help="frames discarded by backpressure, per client",
                client=str(cid),
                policy=self.policy,
                device=device.name,
                kind=kind,
            )
            for kind in ("evicted", "skipped")
        }
        client.lag_gauge = self.registry.gauge(
            "server_client_cursor_lag",
            help="frames between the broadcast ring head and the client cursor",
            client=str(cid),
            device=device.name,
        )
        try:
            writer.write(
                encode_control(
                    FrameType.SUBACK,
                    0,
                    {
                        "client": cid,
                        "mode": mode,
                        "window": window,
                        "device": device.name,
                        "version": device.source.version,
                        "sample_rate": device.source.sample_rate,
                    },
                )
            )
            await writer.drain()
        except BaseException:
            # The peer vanished mid-drain, or client_timeout cancelled
            # the handshake: the client is already registered, so undo
            # it — otherwise the slot, connected gauge and ring cursor
            # leak, and repeated aborted handshakes read "server full".
            self._teardown(client)
            raise
        return client, leftovers

    async def _control_loop(self, client: _AsyncClient) -> None:
        """Handle control frames from one subscriber until it goes away."""
        stop = self._stop_event
        while not client.torn and (stop is None or not stop.is_set()):
            try:
                data = await client.reader.read(65536)
            except (ConnectionError, OSError):
                return
            if not data:
                return
            if not self._handle_control(client, client.decoder.feed(data)):
                return

    def _handle_control(self, client: _AsyncClient, frames: list[Frame]) -> bool:
        """Apply control frames; False means the client said goodbye."""
        for frame in frames:
            if frame.type == FrameType.START:
                if not client.started:
                    # Join (or rejoin) at the live edge: frames streamed
                    # while stopped are skipped, not counted as drops.
                    client.cursor.rebase()
                    client.started = True
                    if not client.ever_started:
                        client.ever_started = True
                        self._starts_seen += 1
                if self._started_event is not None:
                    self._started_event.set()
            elif frame.type == FrameType.STOP:
                client.started = False
            elif frame.type == FrameType.MARK:
                # The marker lands in the device's shared stream.
                client.device.source.mark()
            elif frame.type == FrameType.CONFIG_REQ:
                client.control.append(
                    encode_frame(
                        FrameType.CONFIG,
                        client.next_seq(),
                        client.device.config_image(),
                    )
                )
                client.wake.set()
            elif frame.type == FrameType.HISTORY:
                client.control.append(self._history_reply(client, frame))
                client.wake.set()
            elif frame.type == FrameType.BYE:
                return False
        return True

    def _history_reply(self, client: _AsyncClient, frame: Frame) -> bytes:
        """Answer one HISTORY request against the device's telemetry store."""
        seq = client.next_seq()
        store = client.device.store
        if store is None:
            payload = pack_history(
                HISTORY_NO_STORE,
                window=b"server is not recording history (start with --record-store)",
            )
            return encode_frame(FrameType.HISTORY_DATA, seq, payload)
        try:
            req = frame.json()
            t0 = req.get("t0")
            t1 = req.get("t1")
            max_points = req.get("max_points")
            max_points = (
                HISTORY_MAX_POINTS
                if max_points is None
                else max(1, min(int(max_points), HISTORY_MAX_POINTS))
            )
            result = client.device.store.query(
                None if t0 is None else float(t0),
                None if t1 is None else float(t1),
                max_points,
            )
        except Exception as error:  # noqa: BLE001 - reported to the peer
            payload = pack_history(HISTORY_FAILED, window=str(error).encode())
            return encode_frame(FrameType.HISTORY_DATA, seq, payload)
        window = pack_window(
            result.times, result.values, result.markers, result.enabled
        )
        if result.factor > 1:
            payload = pack_history(
                HISTORY_OK,
                result.factor,
                result.n_source,
                window,
                result.vmin,
                result.vmax,
            )
        else:
            payload = pack_history(HISTORY_OK, result.factor, result.n_source, window)
        return encode_frame(FrameType.HISTORY_DATA, seq, payload)

    async def _writer_loop(self, client: _AsyncClient) -> None:
        """Drain one subscriber's cursor (and control queue) onto its socket."""
        writer = client.writer
        try:
            while not client.torn:
                client.wake.clear()
                wrote = False
                while client.control:
                    frame = client.control.popleft()
                    writer.write(frame)
                    self._bytes_counter.inc(len(frame))
                    wrote = True
                if client.started:
                    batch = client.cursor.take(limit=WRITER_BATCH)
                    if batch:
                        with self.tracer.span("server_send"):
                            for frame, _samples in batch:
                                writer.write(frame)
                            await writer.drain()
                        client.frames_sent += len(batch)
                        client.samples_sent += sum(s for _, s in batch)
                        self._frames_counter.inc(len(batch))
                        self._bytes_counter.inc(sum(len(f) for f, _ in batch))
                        if client.lag_gauge is not None:
                            client.lag_gauge.set(client.cursor.lag)
                        if self._drain_event is not None:
                            self._drain_event.set()
                        wrote = True
                if wrote:
                    await writer.drain()
                    continue
                if client.finishing:
                    if client.eos_reason is not None:
                        # Build the EOS only now, with the cursor fully
                        # drained: its stats then report what was
                        # actually delivered (downsample may skip
                        # pending frames, so predicting delivery at
                        # finish time would double-count a frame as
                        # both sent and dropped).
                        stats = self._client_stats(client)
                        stats["reason"] = client.eos_reason
                        client.eos_reason = None
                        frame = encode_control(
                            FrameType.EOS, client.next_seq(), stats
                        )
                        writer.write(frame)
                        self._bytes_counter.inc(len(frame))
                        await writer.drain()
                    return
                try:
                    await asyncio.wait_for(client.wake.wait(), timeout=0.25)
                except _TIMEOUTS:
                    pass
        except (TransportError, ConnectionError, OSError):
            self._evict(client, reason="send failed")

    # ------------------------------------------------------------------ #
    # The pump                                                           #
    # ------------------------------------------------------------------ #

    async def _serve_async(self, duration: float | None) -> dict:
        self._serve_task = asyncio.current_task()
        stop = self._stop_event
        assert stop is not None
        try:
            if self.wait_clients:
                await self._await_started(self.wait_clients)
            devices = list(self.devices.values())
            ref_rate = max(d.source.sample_rate for d in devices)
            chunks = {
                d.name: max(
                    int(round(self.chunk * d.source.sample_rate / ref_rate)), 1
                )
                for d in devices
            }
            totals = (
                None
                if duration is None
                else {
                    d.name: max(int(round(duration * d.source.sample_rate)), 0)
                    for d in devices
                }
            )
            dry: set[str] = set()  # finite replay tapes that ran out

            def is_live(d: _Device) -> bool:
                return d.name not in dry and (
                    totals is None or d.samples_produced < totals[d.name]
                )

            loop = asyncio.get_running_loop()
            t0 = loop.time()
            while not stop.is_set():
                live = [d for d in devices if is_live(d)]
                if not live:
                    break
                for device in live:
                    # One read covers pump_batch chunks of stream time;
                    # the raw bytes are re-framed chunk-sized below so
                    # ring/backpressure granularity doesn't change.
                    n = chunks[device.name] * self.pump_batch
                    if totals is not None:
                        n = min(n, totals[device.name] - device.samples_produced)
                    if await self._pump_device(device, n, chunks[device.name]) == 0:
                        dry.add(device.name)
                if self.time_scale > 0:
                    # Pace from the furthest-ahead device still
                    # producing: a fixed reference would freeze the
                    # clock once a finite replay tape runs dry and pump
                    # the remaining devices unpaced at 100% CPU.
                    pacers = [d for d in devices if is_live(d)] or devices
                    sim_elapsed = max(
                        d.samples_produced / d.source.sample_rate for d in pacers
                    )
                    delay = t0 + sim_elapsed * self.time_scale - loop.time()
                    if delay > 0:
                        await asyncio.sleep(delay)
                else:
                    # Fast mode never sleeps; yield once per tick so the
                    # writer coroutines actually get scheduled.
                    await asyncio.sleep(0)
            return await self._finish_async(
                "duration" if duration is not None else "stopped"
            )
        finally:
            self._serve_task = None

    async def _await_started(self, n: int) -> None:
        """Wait until ``n`` distinct subscribers have sent START.

        The count is cumulative: a subscriber that started and then went
        away still counts, so a client crashing mid-rendezvous degrades
        the fan-out instead of deadlocking the pump forever.
        """
        stop = self._stop_event
        started = self._started_event
        assert stop is not None and started is not None
        while not stop.is_set():
            if self._starts_seen >= n:
                return
            started.clear()
            try:
                await asyncio.wait_for(started.wait(), timeout=0.25)
            except _TIMEOUTS:
                pass

    async def _pump_device(self, device: _Device, n: int, chunk: int | None = None) -> int:
        """Pump ``n`` samples from one device into its broadcast rings.

        ``chunk`` is the per-frame sample granularity: with
        ``pump_batch > 1`` one read covers several chunks of stream time
        and the raw bytes are re-framed into chunk-sized DATA frames, so
        subscribers and backpressure see the same frame cadence while
        the device-simulation/decode cost is paid once per batch.
        Returns the number of samples actually produced (a finite replay
        tape may run dry and return 0).
        """
        source = device.source
        if not source.streaming:
            source.start()
        raw: bytes | None = None
        if device.raw_capable:
            with self.tracer.span("server_pump", device=device.name):
                block, raw = source.read_block_raw(n)
            produced = n
        else:
            with self.tracer.span("server_pump", device=device.name):
                block = source.read_block(n)
            produced = len(block)
            if produced == 0:
                return 0
        device.samples_produced += produced
        device.samples_counter.inc(produced)
        self._samples_counter.inc(produced)
        if device.store is not None and len(block):
            device.store.append(block)
        # Encode each DATA frame exactly once, into the shared ring.
        if raw is not None and any(c.mode == "raw" for c in device.clients):
            ring = device.ensure_raw_ring(self.buffer_frames)
            for payload, samples in self._split_raw(raw, produced, chunk):
                frame = encode_frame(FrameType.DATA, ring.next_seq(), payload)
                await self._append(device, ring, frame, samples)
                device.encode_counter.inc()
            device.ring_gauge.set(ring.occupancy)
        # One vectorised fold + one encode per (device, window) stream.
        for stream in device.window_streams.values():
            if not any(c.cursor.ring is stream.ring for c in device.clients):
                continue
            for frame, samples in stream.fold(block):
                await self._append(device, stream.ring, frame, samples)
                device.encode_counter.inc()
        return produced

    @staticmethod
    def _split_raw(
        raw: bytes, produced: int, chunk: int | None
    ) -> list[tuple[bytes, int]]:
        """Split one batched raw read back into chunk-sized DATA payloads.

        Only possible when the byte count maps cleanly onto the sample
        count (the normal case; fault-mangled streams are relayed as one
        frame — the client-side decoder is chunking-invariant either
        way, so only the frame cadence differs).
        """
        if (
            chunk is None
            or produced <= chunk
            or not raw
            or len(raw) % produced != 0
        ):
            return [(raw, produced)]
        bps = len(raw) // produced
        return [
            (raw[s * bps : min(s + chunk, produced) * bps], min(chunk, produced - s))
            for s in range(0, produced, chunk)
        ]

    async def _append(
        self, device: _Device, ring: BroadcastRing, frame: bytes, samples: int
    ) -> None:
        if self.policy == "block":
            await self._flow_control(device, ring)
        ring.append(frame, samples)
        for client in device.clients:
            if client.cursor.ring is ring:
                client.wake.set()

    async def _flow_control(self, device: _Device, ring: BroadcastRing) -> None:
        """Hold the pump while a ``block``-policy cursor would be overrun.

        Bounded by the client timeout, after which the laggards are
        evicted — the async analogue of :class:`BufferTimeout`.
        """
        stop = self._stop_event
        drained = self._drain_event
        assert stop is not None and drained is not None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.client_timeout
        while not stop.is_set():
            laggards = [
                c
                for c in device.clients
                if c.started and c.cursor.ring is ring and c.cursor.overrun()
            ]
            if not laggards:
                return
            remaining = deadline - loop.time()
            if remaining <= 0:
                for client in laggards:
                    self._evict(client, reason="backpressure timeout")
                return
            drained.clear()
            try:
                await asyncio.wait_for(drained.wait(), timeout=min(remaining, 0.25))
            except _TIMEOUTS:
                pass

    # ------------------------------------------------------------------ #
    # Teardown                                                           #
    # ------------------------------------------------------------------ #

    def _client_stats(self, client: _AsyncClient) -> dict:
        # The writer calls this after draining the cursor, so the taken
        # counters are exact delivered counts — no pending estimate that
        # the downsample policy could falsify by skipping frames.
        cursor = client.cursor
        return {
            "client": client.id,
            "device": client.device.name,
            "samples_sent": cursor.taken_samples,
            "frames_sent": cursor.taken_frames,
            "frames_dropped": cursor.dropped,
        }

    def _stats_dict(self, reason: str) -> dict:
        return {
            "reason": reason,
            "samples_produced": self.samples_produced,
            "devices": {
                name: dev.samples_produced for name, dev in self.devices.items()
            },
            "clients_served": int(self._clients_counter.value),
            "clients_evicted": int(self._evicted_counter.value),
        }

    async def _finish_async(self, reason: str) -> dict:
        """Send EOS (with per-client stats) to everyone and disconnect them."""
        clients = list(self._clients.values())
        for client in clients:
            if client.finishing:
                continue
            # The writer builds the EOS itself once its cursor runs dry,
            # so the stats reflect the frames that actually went out.
            client.eos_reason = reason
            client.finishing = True
            client.wake.set()
        tasks = {c.writer_task for c in clients if c.writer_task is not None}
        tasks = {t for t in tasks if not t.done()}
        if tasks:
            await asyncio.wait(tasks, timeout=max(self.client_timeout, 2.0))
        for client in clients:
            self._teardown(client)
        return self._stats_dict(reason)

    def _evict(self, client: _AsyncClient, reason: str) -> None:
        if client.evicted or client.torn:
            return
        client.evicted = True
        # Only count an eviction if the client was still registered — a
        # send failing after a clean BYE is a disconnect, not an eviction.
        if client.id in self._clients:
            self._evicted_counter.inc()
        self._teardown(client)

    def _mirror_drops(self, client: _AsyncClient) -> None:
        cursor = client.cursor
        for kind, value in (
            ("evicted", cursor.lost_frames),
            ("skipped", cursor.skipped_frames),
        ):
            counter = client.drop_counters.get(kind)
            if counter is not None and value:
                already = int(counter.value)
                if value > already:
                    counter.inc(value - already)

    def _teardown(self, client: _AsyncClient) -> None:
        """Idempotent full teardown: registry entry, tasks, socket."""
        if client.torn:
            return
        client.torn = True
        self._clients.pop(client.id, None)
        client.device.clients.discard(client)
        if client.mode == "window":
            stream = client.device.window_streams.get(client.window)
            if stream is not None and not any(
                c.cursor.ring is stream.ring for c in client.device.clients
            ):
                # Last subscriber gone: drop the partial fold so a later
                # subscriber's first window doesn't average samples from
                # both sides of an arbitrarily long unsubscribed gap.
                stream.acc.clear()
                stream.acc_count = 0
        self._connected_gauge.set(len(self._clients))
        self._mirror_drops(client)
        task = client.writer_task
        if task is not None and task is not asyncio.current_task() and not task.done():
            task.cancel()
        try:
            client.writer.close()
        except Exception:
            pass
        client.wake.set()
        if self._drain_event is not None:
            self._drain_event.set()
