"""The serving layer: share one PowerSensor stream with many consumers.

A :class:`PowerSensorServer` (the ``psserve`` daemon) owns one simulated
device and fans its 20 kHz sample stream out to N subscribers over TCP or
Unix sockets; :class:`RemoteSampleSource` is the client side — a drop-in
:class:`~repro.core.sources.ProtocolSampleSource` that decodes the exact
device bytes relayed by the server, so every consumer (CLI tools via
``--remote``, the PMT backend, experiments) reads the shared stream with
unchanged semantics.  See ``docs/serving.md``.

:class:`PowerSensorServer` runs a single-threaded asyncio event loop
around a shared :class:`BroadcastRing` (encode each frame once, fan out
by :class:`RingCursor`); the original thread-per-client engine survives
as :class:`ThreadedPowerSensorServer` (``psserve --engine threaded``) and
as the byte-equivalence baseline in the test suite.
"""

from repro.server.backpressure import BufferTimeout, SendBuffer
from repro.server.client import (
    RemoteLink,
    RemoteSampleSource,
    RemoteSetup,
    connect_stream,
)
from repro.server.daemon import PowerSensorServer
from repro.server.ring import BroadcastRing, RingCursor
from repro.server.threaded import ThreadedPowerSensorServer
from repro.server.wire import (
    Frame,
    FrameDecoder,
    FrameType,
    HEADER_SIZE,
    MAX_PAYLOAD,
    encode_frame,
    pack_window,
    parse_endpoint,
    unpack_window,
)

__all__ = [
    "BufferTimeout",
    "SendBuffer",
    "RemoteLink",
    "RemoteSampleSource",
    "RemoteSetup",
    "connect_stream",
    "PowerSensorServer",
    "ThreadedPowerSensorServer",
    "BroadcastRing",
    "RingCursor",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "encode_frame",
    "pack_window",
    "parse_endpoint",
    "unpack_window",
]
