"""Bench instruments of the paper's Fig. 3 measurement setup.

A laboratory power supply (Keysight N6705B in the paper) sources the rail,
an electronic load (Kniel E.Last) draws a programmable current with finite
slew rate and optional square-wave modulation, and two digital multimeters
(Fluke 177/77) read the true voltage at the sensor and current through the
load.  In simulation the multimeters are exact by construction — they *are*
the ground truth the accuracy experiments compare the sensor against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import MeasurementError


@dataclass
class LabSupply:
    """A regulated voltage source with finite output impedance."""

    setpoint_volts: float
    source_impedance_ohms: float = 0.005
    enabled: bool = True

    def voltage_under_load(self, amps: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return np.zeros_like(np.asarray(amps, dtype=float))
        return self.setpoint_volts - self.source_impedance_ohms * np.asarray(
            amps, dtype=float
        )


@dataclass
class _Step:
    time: float
    amps: float


class ElectronicLoad:
    """Programmable constant-current load with finite slew rate.

    The current follows a step schedule; each transition ramps linearly at
    ``slew_a_per_us``.  :meth:`program_square` builds the 100 Hz square
    modulation used for the paper's step-response measurement (Fig. 5).
    """

    def __init__(self, slew_a_per_us: float = 2.0) -> None:
        if slew_a_per_us <= 0:
            raise MeasurementError("slew rate must be positive")
        self.slew_a_per_s = slew_a_per_us * 1e6
        self._steps: list[_Step] = [_Step(0.0, 0.0)]

    def set_current(self, amps: float, at_time: float = 0.0) -> None:
        """Schedule a setpoint change (times must be scheduled in order)."""
        if self._steps and at_time < self._steps[-1].time:
            raise MeasurementError("load steps must be scheduled in time order")
        self._steps.append(_Step(float(at_time), float(amps)))

    def program_square(
        self,
        low_amps: float,
        high_amps: float,
        frequency_hz: float,
        start: float,
        cycles: int,
    ) -> None:
        """Schedule a square wave: high for the first half of each period."""
        period = 1.0 / frequency_hz
        for k in range(cycles):
            self.set_current(high_amps, start + k * period)
            self.set_current(low_amps, start + (k + 0.5) * period)

    def _breakpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Piecewise-linear (time, current) breakpoints with slew ramps."""
        times = [self._steps[0].time]
        amps = [self._steps[0].amps]
        for step in self._steps[1:]:
            prev_i = amps[-1]
            ramp = abs(step.amps - prev_i) / self.slew_a_per_s
            t0 = max(step.time, times[-1])
            times.extend([t0, t0 + ramp])
            amps.extend([prev_i, step.amps])
        return np.asarray(times), np.asarray(amps)

    def current_at(self, times: np.ndarray) -> np.ndarray:
        bp_t, bp_i = self._breakpoints()
        return np.interp(np.asarray(times, dtype=float), bp_t, bp_i)


class LoadedSupplyRail:
    """The bench rail: a supply sourcing an electronic load.

    This is what the sensor module under test is wired across in the
    accuracy, averaging, stability, and step-response experiments.
    """

    def __init__(self, supply: LabSupply, load: ElectronicLoad) -> None:
        self.supply = supply
        self.load = load

    def sample_uniform(self, start: float, dt: float, n: int):
        times = start + dt * np.arange(n)
        amps = self.load.current_at(times)
        volts = self.supply.voltage_under_load(amps)
        return volts, amps


@dataclass
class DigitalMultimeter:
    """Ground-truth meter: averages the true rail state over a window.

    The simulation's stand-in for the Fluke meters — exact by construction,
    with an optional resolution to emulate display rounding.
    """

    resolution: float = 0.0
    readings: list[float] = field(default_factory=list)

    def read_voltage(self, rail, at: float, window: float = 0.01, n: int = 100) -> float:
        volts, _ = rail.sample_uniform(at, window / n, n)
        return self._round(float(np.mean(volts)))

    def read_current(self, rail, at: float, window: float = 0.01, n: int = 100) -> float:
        _, amps = rail.sample_uniform(at, window / n, n)
        return self._round(float(np.mean(amps)))

    def _round(self, value: float) -> float:
        if self.resolution > 0:
            value = round(value / self.resolution) * self.resolution
        self.readings.append(value)
        return value
