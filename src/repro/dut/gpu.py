"""Behavioural GPU power models (the paper's Section V-A case studies).

The models reproduce the *trace features* the paper's Fig. 7 annotates,
per vendor:

* NVIDIA (RTX 4000 Ada): on kernel start, power jumps to an initial level
  (~95 W) and then ramps to the steady level (~120 W) as the clock
  governor raises the frequency; thread-block waves along the grid's
  y-dimension produce short power dips between phases; after the workload
  the GPU takes over a second to return to idle.
* AMD (Radeon Pro W7700): an initial spike to the power limit, a sharp
  drop, a ramp-up with brief overshoot, stabilisation at the limit, and a
  fast return to idle.

Power scales with clock as ``f * V(f)^2`` (DVFS), which is what creates
the performance/efficiency trade-off the auto-tuning experiments explore.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError
from repro.common.rng import RngStream
from repro.dut.base import PowerTrace, SplitRail


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model."""

    name: str
    vendor: str  # "nvidia" or "amd"
    n_sm: int  # streaming multiprocessors / compute units
    idle_watts: float
    power_limit_watts: float
    base_clock_mhz: float
    boost_clock_mhz: float
    #: FP16 tensor/matrix FLOPs per SM per cycle (dense).
    tensor_flops_per_sm_cycle: float
    #: Governor ramp time constant (s); NVIDIA ramps slowly.
    ramp_tau_s: float
    #: Power level right after kernel start, before the ramp completes.
    launch_watts: float
    #: Decay time constant back to idle after the workload (s).
    idle_return_tau_s: float
    #: AMD-style spike-to-limit / sharp-drop / overshoot behaviour.
    overshoot: bool = False
    #: Fraction of board power drawn from each feed.
    slot_3v3_share: float = 0.04
    slot_12v_share: float = 0.30

    @property
    def ext_12v_share(self) -> float:
        return 1.0 - self.slot_3v3_share - self.slot_12v_share

    @property
    def peak_tensor_tflops(self) -> float:
        """Dense FP16 tensor peak at boost clock, TFLOP/s."""
        return (
            self.n_sm * self.tensor_flops_per_sm_cycle * self.boost_clock_mhz * 1e6
        ) / 1e12

    def voltage_at(self, clock_mhz: float) -> float:
        """DVFS operating voltage (V) for a core clock (linear V-f curve)."""
        span = max(self.boost_clock_mhz - self.base_clock_mhz, 1.0)
        frac = (clock_mhz - self.base_clock_mhz) / span
        return 0.70 + 0.35 * np.clip(frac, -0.5, 1.2)

    def dynamic_power(self, clock_mhz: float, utilization: float) -> float:
        """Board dynamic power (W) above idle at a clock and utilisation.

        Normalised so a fully utilised GPU at boost clock sits a few
        percent above the power limit (and therefore throttles), matching
        the behaviour of both evaluated boards.
        """
        v = self.voltage_at(clock_mhz)
        v_max = self.voltage_at(self.boost_clock_mhz)
        norm = self.boost_clock_mhz * v_max**2
        scale = (clock_mhz * v**2) / norm
        full_dynamic = 1.08 * (self.power_limit_watts - self.idle_watts)
        return full_dynamic * scale * (0.25 + 0.75 * float(utilization))

    def board_power(self, clock_mhz: float, utilization: float) -> float:
        """Total board power, clamped at the power limit."""
        return min(
            self.idle_watts + self.dynamic_power(clock_mhz, utilization),
            self.power_limit_watts,
        )


GPU_CATALOG: dict[str, GpuSpec] = {
    "rtx4000ada": GpuSpec(
        name="NVIDIA RTX 4000 Ada",
        vendor="nvidia",
        n_sm=48,
        idle_watts=14.0,
        power_limit_watts=130.0,
        base_clock_mhz=1500.0,
        boost_clock_mhz=2175.0,
        tensor_flops_per_sm_cycle=1475.0,  # ~154 FP16 TFLOP/s dense peak
        ramp_tau_s=0.35,
        launch_watts=95.0,
        idle_return_tau_s=1.0,  # the paper notes >1 s back to idle
        overshoot=False,
    ),
    "w7700": GpuSpec(
        name="AMD Radeon Pro W7700",
        vendor="amd",
        n_sm=48,
        idle_watts=18.0,
        power_limit_watts=150.0,
        base_clock_mhz=1900.0,
        boost_clock_mhz=2600.0,
        tensor_flops_per_sm_cycle=1024.0,
        ramp_tau_s=0.12,
        launch_watts=150.0,
        idle_return_tau_s=0.12,
        overshoot=True,
    ),
    "jetson_orin_gpu": GpuSpec(
        name="NVIDIA Jetson AGX Orin (GPU)",
        vendor="nvidia",
        n_sm=16,
        idle_watts=6.0,
        power_limit_watts=44.0,
        base_clock_mhz=612.0,
        boost_clock_mhz=1300.0,
        tensor_flops_per_sm_cycle=2048.0,  # ~42 FP16 TFLOP/s dense peak
        ramp_tau_s=0.20,
        launch_watts=30.0,
        idle_return_tau_s=0.30,
        overshoot=False,
    ),
}


def gpu_spec(key: str) -> GpuSpec:
    try:
        return GPU_CATALOG[key]
    except KeyError:
        known = ", ".join(sorted(GPU_CATALOG))
        raise MeasurementError(f"unknown GPU {key!r}; known GPUs: {known}")


@dataclass
class KernelLaunch:
    """One kernel execution scheduled on the GPU.

    Attributes:
        start: launch time (s).
        duration: execution time (s).
        utilization: 0..1 compute utilisation while running.
        clock_mhz: locked core clock; None lets the governor ramp to boost.
        n_waves: thread-block waves along the grid's y-dimension; wave
            boundaries produce the short power dips Fig. 7a highlights.
        dip_depth: fractional power drop at each wave boundary.
        dip_duration: duration of each dip (s).
    """

    start: float
    duration: float
    utilization: float = 1.0
    clock_mhz: float | None = None
    n_waves: int = 1
    dip_depth: float = 0.35
    dip_duration: float = 0.0015


class Gpu:
    """A GPU whose scheduled workload renders into a ground-truth trace."""

    def __init__(self, spec: GpuSpec | str, rng: RngStream | None = None) -> None:
        self.spec = spec if isinstance(spec, GpuSpec) else gpu_spec(spec)
        self.rng = rng or RngStream(0, f"gpu/{self.spec.name}")
        self.launches: list[KernelLaunch] = []

    def launch(self, launch: KernelLaunch) -> None:
        if launch.duration <= 0:
            raise MeasurementError("kernel duration must be positive")
        self.launches.append(launch)

    # ------------------------------------------------------------------ #
    # Trace rendering                                                    #
    # ------------------------------------------------------------------ #

    def render(self, t_end: float, dt: float = 2e-4) -> PowerTrace:
        """Render the scheduled workload into a board power trace.

        The trace covers [0, t_end] at resolution ``dt``; rails derived
        from it are sample-and-hold, which is faithful at dt well below
        the 50 us sensor sample interval only for the experiments that
        need it (pass a smaller dt there).
        """
        times = np.arange(0.0, t_end + dt, dt)
        power = np.full(times.size, self.spec.idle_watts)
        for launch in sorted(self.launches, key=lambda k: k.start):
            mask = (times >= launch.start) & (times < launch.start + launch.duration)
            power[mask] = self._active_power(times[mask], launch)
            # Idle-return tail after this launch (overwritten by a
            # subsequent launch if one follows immediately).
            stop = launch.start + launch.duration
            tail = times >= stop
            steady = self._steady_power(launch)
            tail_power = self.spec.idle_watts + (
                0.35 * (steady - self.spec.idle_watts)
            ) * np.exp(-(times[tail] - stop) / self.spec.idle_return_tau_s)
            power[tail] = tail_power
        # Small fluctuation of real board power (VRM ripple, fan, ...).
        power = power + self.rng.normal(0.0, 0.15, size=power.shape)
        power = np.clip(power, 0.8 * self.spec.idle_watts, None)
        volts = np.full(times.size, 12.0)
        amps = power / volts
        return PowerTrace(times=times, volts=volts, amps=amps)

    def _steady_power(self, launch: KernelLaunch) -> float:
        clock = launch.clock_mhz or self.spec.boost_clock_mhz
        return self.spec.board_power(clock, launch.utilization)

    def _active_power(self, times: np.ndarray, launch: KernelLaunch) -> np.ndarray:
        rel = times - launch.start
        steady = self._steady_power(launch)
        if self.spec.overshoot:
            power = self._amd_envelope(rel, steady)
        else:
            power = self._nvidia_envelope(rel, steady)
        if launch.n_waves > 1:
            wave_period = launch.duration / launch.n_waves
            phase = np.mod(rel, wave_period)
            in_dip = phase < launch.dip_duration
            in_dip &= rel > wave_period  # no dip before the first boundary
            power = np.where(in_dip, power * (1.0 - launch.dip_depth), power)
        return power

    def _nvidia_envelope(self, rel: np.ndarray, steady: float) -> np.ndarray:
        """Jump to launch power, then governor ramp toward steady."""
        launch_level = min(self.spec.launch_watts, steady)
        ramp = 1.0 - np.exp(-rel / self.spec.ramp_tau_s)
        return launch_level + (steady - launch_level) * ramp

    def _amd_envelope(self, rel: np.ndarray, steady: float) -> np.ndarray:
        """Spike to the limit, sharp drop, overshooting ramp, stabilise."""
        spike_t = 0.05
        drop_level = 0.62 * steady
        ramp = 1.0 - np.exp(-(rel - spike_t) / self.spec.ramp_tau_s)
        over = 0.06 * steady * np.exp(-(rel - spike_t) / (2.5 * self.spec.ramp_tau_s))
        ramped = drop_level + (steady - drop_level) * ramp + over * np.sin(
            np.clip((rel - spike_t) / (2.0 * self.spec.ramp_tau_s), 0.0, np.pi)
        )
        power = np.where(rel < spike_t, self.spec.power_limit_watts, ramped)
        return np.minimum(power, self.spec.power_limit_watts * 1.02)

    # ------------------------------------------------------------------ #
    # Rails                                                              #
    # ------------------------------------------------------------------ #

    def rails(self, trace: PowerTrace) -> dict[str, SplitRail]:
        """Split a board trace into the three physical feeds of a PCIe card."""
        def total_watts(times: np.ndarray) -> np.ndarray:
            idx = np.searchsorted(trace.times, times, side="right") - 1
            idx = np.clip(idx, 0, trace.times.size - 1)
            return trace.watts[idx]

        spec = self.spec
        return {
            "slot_3v3": SplitRail(total_watts, spec.slot_3v3_share, 3.3, 0.002),
            "slot_12v": SplitRail(total_watts, spec.slot_12v_share, 12.0, 0.004),
            "ext_12v": SplitRail(total_watts, spec.ext_12v_share, 12.0, 0.004),
        }

    def reset(self) -> None:
        self.launches.clear()
