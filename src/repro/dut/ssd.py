"""NVMe SSD model with a page-mapping FTL (the paper's Section V-C study).

The paper measures a Samsung 980 PRO under fio workloads and reproduces
two classic observations:

* random-read bandwidth *and* power grow with request size until the
  device saturates (Fig. 12a);
* under sustained random writes, garbage collection makes bandwidth highly
  variable while *power stays stable* around 5 W, i.e. bandwidth is not an
  indicator of power (Fig. 12b).

The write path is a real FTL simulation — page-mapped, SLC write cache,
greedy garbage collection over an over-provisioned pool — because the
bandwidth-variability-with-stable-power phenomenon *emerges* from those
mechanics: once the NAND backend saturates, total internal work (host +
GC traffic) is constant while the host-visible share varies with write
amplification.

Scale: the simulated drive defaults to 8 GiB logical capacity instead of
1 TB.  GC dynamics depend on over-provisioning ratio and utilisation, not
absolute capacity; the scale-down compresses the time axis of the
steady-state experiment proportionally (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError
from repro.common.rng import RngStream
from repro.common.units import GIB, KIB


@dataclass(frozen=True)
class SsdSpec:
    """Static description of the simulated drive."""

    name: str = "Samsung 980 PRO (simulated, scaled)"
    logical_bytes: int = 8 * GIB
    overprovision: float = 0.09
    page_bytes: int = 4 * KIB
    pages_per_block: int = 512  # 2 MiB erase blocks
    channels: int = 8
    #: Host interface ceiling (PCIe gen3 x4 riser in the paper's setup).
    interface_bw: float = 3.4e9
    #: Aggregate NAND read bandwidth across channels.
    nand_read_bw: float = 6.0e9
    #: Sustained TLC program bandwidth (total internal, host + GC).
    nand_write_bw: float = 900e6
    #: SLC-cache program bandwidth and capacity.
    slc_write_bw: float = 2.2e9
    slc_cache_fraction: float = 0.08
    #: Per-command firmware/flash latency for reads.
    read_cmd_overhead_s: float = 65e-6
    idle_watts: float = 1.9
    read_max_watts: float = 6.2
    write_slc_watts: float = 4.1
    write_tlc_watts: float = 5.0
    #: GC triggers when the free-block pool drops to the low watermark and
    #: then runs until it reaches the high one.  The hysteresis makes GC
    #: bursty, which is what produces the bandwidth variability (with
    #: stable power) of the paper's Fig. 12b.
    gc_low_watermark: float = 0.01
    gc_high_watermark: float = 0.03

    @property
    def logical_pages(self) -> int:
        return self.logical_bytes // self.page_bytes

    @property
    def physical_pages(self) -> int:
        return int(self.logical_pages * (1.0 + self.overprovision))

    @property
    def n_blocks(self) -> int:
        """Physical erase blocks; rounding never eats the over-provisioning.

        Rounds the physical page count *up* to whole blocks and guarantees
        at least two spare blocks beyond the logical capacity, so garbage
        collection always has somewhere to relocate into.
        """
        from_op = -(-self.physical_pages // self.pages_per_block)
        minimum = -(-self.logical_pages // self.pages_per_block) + 2
        return max(from_op, minimum)

    @property
    def slc_cache_pages(self) -> int:
        return int(self.logical_pages * self.slc_cache_fraction)


INVALID = np.int64(-1)


@dataclass
class SsdCounters:
    """Cumulative FTL activity counters."""

    host_pages_written: int = 0
    gc_pages_relocated: int = 0
    blocks_erased: int = 0
    gc_runs: int = 0

    @property
    def write_amplification(self) -> float:
        if self.host_pages_written == 0:
            return 1.0
        return (
            self.host_pages_written + self.gc_pages_relocated
        ) / self.host_pages_written


class Ssd:
    """A page-mapped flash SSD with greedy garbage collection."""

    def __init__(self, spec: SsdSpec | None = None, seed: int = 0) -> None:
        self.spec = spec or SsdSpec()
        self.rng = RngStream(seed, "ssd")
        self.counters = SsdCounters()
        self._format()

    # ------------------------------------------------------------------ #
    # FTL state                                                          #
    # ------------------------------------------------------------------ #

    def _format(self) -> None:
        spec = self.spec
        n_pages = spec.n_blocks * spec.pages_per_block
        # Logical -> physical page number; physical -> logical (INVALID = free/stale).
        self.l2p = np.full(spec.logical_pages, INVALID, dtype=np.int64)
        self.p2l = np.full(n_pages, INVALID, dtype=np.int64)
        self.valid_count = np.zeros(spec.n_blocks, dtype=np.int64)
        self.block_state = np.zeros(spec.n_blocks, dtype=np.int8)  # 0 free, 1 open, 2 full
        self._free_blocks = list(range(spec.n_blocks - 1, 0, -1))
        self._active_block = 0
        self.block_state[0] = 1
        self._write_ptr = 0
        self._in_gc = False
        self.slc_pages_remaining = spec.slc_cache_pages
        self.counters = SsdCounters()

    def format(self) -> None:
        """NVMe format: drop all mappings and reset the SLC cache."""
        self._format()

    def idle_flush(self) -> None:
        """Model an idle period: the controller drains the SLC cache.

        Restores full SLC write-cache capacity, as a real drive does while
        the host is quiescent between workloads.
        """
        self.slc_pages_remaining = self.spec.slc_cache_pages

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks)

    @property
    def mapped_pages(self) -> int:
        return int(np.count_nonzero(self.l2p != INVALID))

    def check_invariants(self) -> None:
        """Structural FTL invariants (exercised by property-based tests)."""
        spec = self.spec
        if int(self.valid_count.sum()) != self.mapped_pages:
            raise MeasurementError("valid-page accounting out of sync with L2P")
        if np.any(self.valid_count < 0) or np.any(
            self.valid_count > spec.pages_per_block
        ):
            raise MeasurementError("per-block valid count out of range")
        mapped = self.l2p[self.l2p != INVALID]
        if mapped.size != np.unique(mapped).size:
            raise MeasurementError("two logical pages map to one physical page")
        back = self.p2l[mapped]
        expect = np.flatnonzero(self.l2p != INVALID)
        if not np.array_equal(np.sort(back), np.sort(expect)):
            raise MeasurementError("P2L back-pointers inconsistent with L2P")

    # ------------------------------------------------------------------ #
    # Write path                                                         #
    # ------------------------------------------------------------------ #

    def write_pages(self, lpns: np.ndarray) -> int:
        """Program logical pages (host write); returns GC relocations incurred.

        Duplicate LPNs within one call are allowed; later entries win,
        exactly as sequential writes to the same sector would.
        """
        lpns = np.asarray(lpns, dtype=np.int64)
        if lpns.size == 0:
            return 0
        if np.any((lpns < 0) | (lpns >= self.spec.logical_pages)):
            raise MeasurementError("LPN out of logical range")
        gc_before = self.counters.gc_pages_relocated
        self._program(lpns, host=True)
        self.counters.host_pages_written += int(lpns.size)
        self.slc_pages_remaining = max(self.slc_pages_remaining - int(lpns.size), 0)
        return self.counters.gc_pages_relocated - gc_before

    def trim(self, lpns: np.ndarray) -> int:
        """NVMe Deallocate (TRIM): drop mappings; returns pages deallocated.

        Trimmed pages stop counting as valid, so subsequent garbage
        collection gets cheaper — the mechanism behind the common advice
        to TRIM before write benchmarks.
        """
        lpns = np.unique(np.asarray(lpns, dtype=np.int64))
        if lpns.size == 0:
            return 0
        if np.any((lpns < 0) | (lpns >= self.spec.logical_pages)):
            raise MeasurementError("LPN out of logical range")
        phys = self.l2p[lpns]
        live = phys != INVALID
        if not np.any(live):
            return 0
        live_phys = phys[live]
        self.p2l[live_phys] = INVALID
        np.subtract.at(
            self.valid_count, live_phys // self.spec.pages_per_block, 1
        )
        self.l2p[lpns[live]] = INVALID
        return int(np.count_nonzero(live))

    def _program(self, lpns: np.ndarray, host: bool) -> None:
        spec = self.spec
        offset = 0
        while offset < lpns.size:
            room = spec.pages_per_block - self._write_ptr
            if room == 0:
                self._open_new_block()
                continue
            chunk = lpns[offset : offset + room]
            self._program_into_active(chunk)
            offset += chunk.size

    def _program_into_active(self, lpns: np.ndarray) -> None:
        spec = self.spec
        # Invalidate prior versions.  Deduplicate first: with repeated LPNs
        # in one chunk the old physical page must be invalidated exactly
        # once, then the last writer wins on the new positions.
        old = self.l2p[np.unique(lpns)]
        live = old != INVALID
        if np.any(live):
            old_pos = old[live]
            self.p2l[old_pos] = INVALID
            np.subtract.at(self.valid_count, old_pos // spec.pages_per_block, 1)
        start = self._active_block * spec.pages_per_block + self._write_ptr
        positions = start + np.arange(lpns.size, dtype=np.int64)
        # Last occurrence of each lpn wins.
        self.p2l[positions] = lpns
        self.l2p[lpns] = positions  # duplicate lpns: numpy keeps the last write
        # Stale duplicates inside this chunk: positions whose back-pointer
        # no longer points at them.
        stale = self.l2p[self.p2l[positions]] != positions
        if np.any(stale):
            self.p2l[positions[stale]] = INVALID
        self.valid_count[self._active_block] += int(np.count_nonzero(~stale))
        self._write_ptr += int(lpns.size)

    def _open_new_block(self) -> None:
        self.block_state[self._active_block] = 2  # full
        if not self._free_blocks and not self._collect_one():
            raise MeasurementError("FTL ran out of free blocks (GC starvation)")
        self._active_block = self._free_blocks.pop()
        self.block_state[self._active_block] = 1
        self._write_ptr = 0
        self._maybe_collect()

    # ------------------------------------------------------------------ #
    # Garbage collection                                                 #
    # ------------------------------------------------------------------ #

    def _maybe_collect(self) -> None:
        if self._in_gc:
            return  # relocations already run under an outer collection loop
        low = max(int(self.spec.n_blocks * self.spec.gc_low_watermark), 2)
        if len(self._free_blocks) >= low:
            return
        high = max(int(self.spec.n_blocks * self.spec.gc_high_watermark), low)
        while len(self._free_blocks) < high:
            if not self._collect_one():
                break

    def _collect_one(self) -> bool:
        """Greedy GC: relocate the fullest-of-stale block; returns success."""
        spec = self.spec
        candidates = np.flatnonzero(self.block_state == 2)
        if candidates.size == 0:
            return False
        victim = int(candidates[np.argmin(self.valid_count[candidates])])
        if self.valid_count[victim] >= spec.pages_per_block:
            return False  # nothing reclaimable anywhere
        start = victim * spec.pages_per_block
        phys = np.arange(start, start + spec.pages_per_block, dtype=np.int64)
        live_lpns = self.p2l[phys]
        live_lpns = live_lpns[live_lpns != INVALID]
        # Erase first (the mappings move, so clear victim bookkeeping), then
        # re-program the survivors through the normal write path.
        self.p2l[phys] = INVALID
        self.valid_count[victim] = 0
        self.block_state[victim] = 0
        self._free_blocks.insert(0, victim)
        self.counters.blocks_erased += 1
        self.counters.gc_runs += 1
        if live_lpns.size:
            self.l2p[live_lpns] = INVALID  # re-mapped by _program below
            was_in_gc = self._in_gc
            self._in_gc = True
            try:
                self._program(live_lpns, host=False)
            finally:
                self._in_gc = was_in_gc
            self.counters.gc_pages_relocated += int(live_lpns.size)
        return True

    # ------------------------------------------------------------------ #
    # Performance / power models                                         #
    # ------------------------------------------------------------------ #

    def read_bandwidth(self, request_bytes: int, iodepth: int = 4) -> float:
        """Steady random-read bandwidth for a request size (bytes/s)."""
        if request_bytes <= 0:
            raise MeasurementError("request size must be positive")
        spec = self.spec
        per_cmd = spec.read_cmd_overhead_s + request_bytes / spec.nand_read_bw
        pipelined = iodepth * request_bytes / per_cmd
        return float(min(pipelined, spec.interface_bw, spec.nand_read_bw))

    def read_power(self, bandwidth: float, request_bytes: int) -> float:
        """Average power while sustaining a random-read bandwidth."""
        spec = self.spec
        bw_frac = bandwidth / spec.interface_bw
        iops = bandwidth / request_bytes
        iops_max = 1.0 / spec.read_cmd_overhead_s * spec.channels
        iops_frac = min(iops / iops_max, 1.0)
        # Data movement dominates at large requests, command processing at
        # small ones; the max keeps power monotone in request size up to
        # saturation, as the paper observes.
        activity = min(max(bw_frac, 0.55 * bw_frac + 0.45 * iops_frac), 1.0)
        return spec.idle_watts + (spec.read_max_watts - spec.idle_watts) * activity

    @property
    def in_slc_mode(self) -> bool:
        return self.slc_pages_remaining > 0

    def write_budget_pages(self, dt: float) -> int:
        """Internal page programs the NAND backend can absorb in ``dt``."""
        bw = self.spec.slc_write_bw if self.in_slc_mode else self.spec.nand_write_bw
        return max(int(bw * dt / self.spec.page_bytes), 1)

    def write_power(self, busy_fraction: float) -> float:
        """Power while the write backend is ``busy_fraction`` utilised."""
        spec = self.spec
        active = spec.write_slc_watts if self.in_slc_mode else spec.write_tlc_watts
        return spec.idle_watts + (active - spec.idle_watts) * min(busy_fraction, 1.0)
