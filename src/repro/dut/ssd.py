"""NVMe SSD model with pluggable FTL strategies (Section V-C study).

The paper measures a Samsung 980 PRO under fio workloads and reproduces
two classic observations:

* random-read bandwidth *and* power grow with request size until the
  device saturates (Fig. 12a);
* under sustained random writes, garbage collection makes bandwidth highly
  variable while *power stays stable* around 5 W, i.e. bandwidth is not an
  indicator of power (Fig. 12b).

The write path is a real FTL simulation — page-mapped by default, SLC
write cache, greedy garbage collection over an over-provisioned pool —
because the bandwidth-variability-with-stable-power phenomenon *emerges*
from those mechanics: once the NAND backend saturates, total internal
work (host + GC traffic) is constant while the host-visible share varies
with write amplification.

The mapping scheme itself is a strategy (:mod:`repro.ftl`):
``Ssd(spec, ftl="page" | "group" | "compressed" | "hybrid")`` selects how
logical pages map to physical ones, which shapes write amplification,
mapping-table footprint and lookup overhead — the axes the extended
Fig. 12 study compares.  ``ftl="page"`` is the pre-refactor behaviour,
pinned bit-identical.

Scale: the simulated drive defaults to 8 GiB logical capacity instead of
1 TB.  GC dynamics depend on over-provisioning ratio and utilisation, not
absolute capacity; the scale-down compresses the time axis of the
steady-state experiment proportionally (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError
from repro.common.rng import RngStream
from repro.common.units import GIB, KIB
from repro.ftl import FtlPolicy, create_ftl
from repro.ftl.base import INVALID, FtlCounters

#: Back-compat alias: the counters moved to :mod:`repro.ftl.base` with
#: the strategy extraction and grew merge/lookup fields.
SsdCounters = FtlCounters

__all__ = ["INVALID", "Ssd", "SsdCounters", "SsdSpec"]


@dataclass(frozen=True)
class SsdSpec:
    """Static description of the simulated drive."""

    name: str = "Samsung 980 PRO (simulated, scaled)"
    logical_bytes: int = 8 * GIB
    overprovision: float = 0.09
    page_bytes: int = 4 * KIB
    pages_per_block: int = 512  # 2 MiB erase blocks
    channels: int = 8
    #: Host interface ceiling (PCIe gen3 x4 riser in the paper's setup).
    interface_bw: float = 3.4e9
    #: Aggregate NAND read bandwidth across channels.
    nand_read_bw: float = 6.0e9
    #: Sustained TLC program bandwidth (total internal, host + GC).
    nand_write_bw: float = 900e6
    #: SLC-cache program bandwidth and capacity.
    slc_write_bw: float = 2.2e9
    slc_cache_fraction: float = 0.08
    #: Per-command firmware/flash latency for reads.
    read_cmd_overhead_s: float = 65e-6
    idle_watts: float = 1.9
    read_max_watts: float = 6.2
    write_slc_watts: float = 4.1
    write_tlc_watts: float = 5.0
    #: GC triggers when the free-block pool drops to the low watermark and
    #: then runs until it reaches the high one.  The hysteresis makes GC
    #: bursty, which is what produces the bandwidth variability (with
    #: stable power) of the paper's Fig. 12b.
    gc_low_watermark: float = 0.01
    gc_high_watermark: float = 0.03

    @property
    def logical_pages(self) -> int:
        return self.logical_bytes // self.page_bytes

    @property
    def physical_pages(self) -> int:
        return int(self.logical_pages * (1.0 + self.overprovision))

    @property
    def n_blocks(self) -> int:
        """Physical erase blocks; rounding never eats the over-provisioning.

        Rounds the physical page count *up* to whole blocks and guarantees
        at least two spare blocks beyond the logical capacity, so garbage
        collection always has somewhere to relocate into.
        """
        from_op = -(-self.physical_pages // self.pages_per_block)
        minimum = -(-self.logical_pages // self.pages_per_block) + 2
        return max(from_op, minimum)

    @property
    def slc_cache_pages(self) -> int:
        return int(self.logical_pages * self.slc_cache_fraction)


class Ssd:
    """A flash SSD with a pluggable FTL and greedy garbage collection.

    ``ftl`` selects the mapping strategy by name (see
    :data:`repro.ftl.FTL_POLICIES`) or accepts a ready
    :class:`~repro.ftl.FtlPolicy` instance; ``ftl_options`` passes
    policy-specific knobs (``group_pages``, ``compact_threshold``).
    """

    def __init__(
        self,
        spec: SsdSpec | None = None,
        seed: int = 0,
        ftl: str | FtlPolicy = "page",
        ftl_options: dict | None = None,
    ) -> None:
        self.spec = spec or SsdSpec()
        self.rng = RngStream(seed, "ssd")
        if isinstance(ftl, FtlPolicy):
            self.ftl = ftl
        else:
            self.ftl = create_ftl(ftl, self.spec, **(ftl_options or {}))
        self.slc_pages_remaining = self.spec.slc_cache_pages

    # ------------------------------------------------------------------ #
    # FTL delegation                                                     #
    # ------------------------------------------------------------------ #

    @property
    def ftl_name(self) -> str:
        return self.ftl.name

    @property
    def counters(self) -> FtlCounters:
        return self.ftl.counters

    @property
    def l2p(self) -> np.ndarray:
        return self.ftl.l2p

    @property
    def p2l(self) -> np.ndarray:
        return self.ftl.p2l

    @property
    def valid_count(self) -> np.ndarray:
        return self.ftl.valid_count

    @property
    def block_state(self) -> np.ndarray:
        return self.ftl.block_state

    @property
    def free_block_count(self) -> int:
        return self.ftl.free_block_count

    @property
    def mapped_pages(self) -> int:
        return self.ftl.mapped_pages

    def check_invariants(self) -> None:
        """Structural FTL invariants (exercised by property-based tests)."""
        self.ftl.check_invariants()

    def format(self) -> None:
        """NVMe format: drop all mappings and reset the SLC cache."""
        self.ftl.format()
        self.slc_pages_remaining = self.spec.slc_cache_pages

    def idle_flush(self) -> None:
        """Model an idle period: the controller drains the SLC cache.

        Restores full SLC write-cache capacity, as a real drive does while
        the host is quiescent between workloads.
        """
        self.slc_pages_remaining = self.spec.slc_cache_pages

    def write_pages(self, lpns: np.ndarray) -> int:
        """Program logical pages (host write); returns the internal page
        programs incurred (GC relocations plus any policy merge traffic).

        Duplicate LPNs within one call are allowed; later entries win,
        exactly as sequential writes to the same sector would.
        """
        lpns = np.asarray(lpns, dtype=np.int64)
        internal = self.ftl.write_pages(lpns)
        self.slc_pages_remaining = max(self.slc_pages_remaining - int(lpns.size), 0)
        return internal

    def trim(self, lpns: np.ndarray) -> int:
        """NVMe Deallocate (TRIM): drop mappings; returns pages deallocated.

        Trimmed pages stop counting as valid, so subsequent garbage
        collection gets cheaper — the mechanism behind the common advice
        to TRIM before write benchmarks.
        """
        return self.ftl.trim(lpns)

    def translate(self, lpns: np.ndarray) -> np.ndarray:
        """L2P lookup with the policy's lookup-overhead accounting."""
        return self.ftl.translate(lpns)

    def map_bytes(self) -> int:
        """Current mapping-table footprint of the active policy."""
        return self.ftl.map_bytes()

    def publish_metrics(self, registry) -> None:
        """Report per-policy FTL counters through the metrics registry.

        Counters are cumulative and gauges point-in-time, all labelled
        ``policy=<name>`` so a sweep over strategies lands each series
        side by side.
        """
        labels = {"policy": self.ftl.name}
        c = self.counters
        for name, value in (
            ("ftl_host_pages_written_total", c.host_pages_written),
            ("ftl_gc_pages_relocated_total", c.gc_pages_relocated),
            ("ftl_merge_pages_relocated_total", c.merge_pages_relocated),
            ("ftl_blocks_erased_total", c.blocks_erased),
            ("ftl_lookup_ops_total", c.lookup_ops),
        ):
            counter = registry.counter(name, **labels)
            delta = value - counter.value
            if delta > 0:
                counter.inc(delta)
        registry.gauge("ftl_write_amplification", **labels).set(
            c.write_amplification
        )
        registry.gauge("ftl_map_bytes", **labels).set(self.map_bytes())

    # ------------------------------------------------------------------ #
    # Performance / power models                                         #
    # ------------------------------------------------------------------ #

    def read_bandwidth(self, request_bytes: int, iodepth: int = 4) -> float:
        """Steady random-read bandwidth for a request size (bytes/s)."""
        if request_bytes <= 0:
            raise MeasurementError("request size must be positive")
        spec = self.spec
        per_cmd = spec.read_cmd_overhead_s + request_bytes / spec.nand_read_bw
        pipelined = iodepth * request_bytes / per_cmd
        return float(min(pipelined, spec.interface_bw, spec.nand_read_bw))

    def read_power(self, bandwidth: float, request_bytes: int) -> float:
        """Average power while sustaining a random-read bandwidth."""
        spec = self.spec
        bw_frac = bandwidth / spec.interface_bw
        iops = bandwidth / request_bytes
        iops_max = 1.0 / spec.read_cmd_overhead_s * spec.channels
        iops_frac = min(iops / iops_max, 1.0)
        # Data movement dominates at large requests, command processing at
        # small ones; the max keeps power monotone in request size up to
        # saturation, as the paper observes.
        activity = min(max(bw_frac, 0.55 * bw_frac + 0.45 * iops_frac), 1.0)
        return spec.idle_watts + (spec.read_max_watts - spec.idle_watts) * activity

    @property
    def in_slc_mode(self) -> bool:
        return self.slc_pages_remaining > 0

    def write_budget_pages(self, dt: float) -> int:
        """Internal page programs the NAND backend can absorb in ``dt``."""
        bw = self.spec.slc_write_bw if self.in_slc_mode else self.spec.nand_write_bw
        return max(int(bw * dt / self.spec.page_bytes), 1)

    def write_power(self, busy_fraction: float) -> float:
        """Power while the write backend is ``busy_fraction`` utilised."""
        spec = self.spec
        active = spec.write_slc_watts if self.in_slc_mode else spec.write_tlc_watts
        return spec.idle_watts + (active - spec.idle_watts) * min(busy_fraction, 1.0)
