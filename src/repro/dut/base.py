"""Power-rail abstractions: the ground truth the sensors measure.

A rail is a pure function of time returning (volts, amps); purity lets the
two ADC channels of a sensor pair sample overlapping windows ~1 us apart
(see :class:`repro.hardware.baseboard.PowerRail`).  Stateful DUT models
(GPU, SSD) first *render* their behaviour into a :class:`PowerTrace`,
which :class:`TraceRail` then exposes for sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.common.errors import MeasurementError


@dataclass
class PowerTrace:
    """A rendered ground-truth power timeline for one rail.

    ``volts``/``amps`` are the rail state from ``times[k]`` until
    ``times[k+1]`` (sample-and-hold semantics).
    """

    times: np.ndarray
    volts: np.ndarray
    amps: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.volts = np.asarray(self.volts, dtype=float)
        self.amps = np.asarray(self.amps, dtype=float)
        if not (self.times.size == self.volts.size == self.amps.size):
            raise MeasurementError("trace arrays must have equal length")
        if self.times.size == 0:
            raise MeasurementError("trace must contain at least one point")
        if np.any(np.diff(self.times) < 0):
            raise MeasurementError("trace times must be non-decreasing")

    @property
    def watts(self) -> np.ndarray:
        return self.volts * self.amps

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    def energy(self) -> float:
        """Exact energy of the sample-and-hold trace (J)."""
        if self.times.size < 2:
            return 0.0
        dts = np.diff(self.times)
        return float((self.watts[:-1] * dts).sum())

    def mean_power(self) -> float:
        if self.duration <= 0:
            raise MeasurementError("trace has zero duration")
        return self.energy() / self.duration

    def save(self, path) -> None:
        """Persist the trace as a compressed .npz archive.

        The paper's artifact releases its measurement datasets; this is
        the equivalent exchange format for simulated ground truth.
        """
        np.savez_compressed(path, times=self.times, volts=self.volts, amps=self.amps)

    @classmethod
    def load(cls, path) -> "PowerTrace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(path) as archive:
            return cls(
                times=archive["times"], volts=archive["volts"], amps=archive["amps"]
            )


class ConstantRail:
    """A rail at fixed voltage and current."""

    def __init__(self, volts: float, amps: float) -> None:
        self.volts = float(volts)
        self.amps = float(amps)

    def sample_uniform(self, start: float, dt: float, n: int):
        return np.full(n, self.volts), np.full(n, self.amps)


class FunctionRail:
    """A rail defined by a vectorised function ``t -> (volts, amps)``."""

    def __init__(self, fn: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]]):
        self.fn = fn

    def sample_uniform(self, start: float, dt: float, n: int):
        times = start + dt * np.arange(n)
        volts, amps = self.fn(times)
        return (
            np.broadcast_to(np.asarray(volts, dtype=float), times.shape).copy(),
            np.broadcast_to(np.asarray(amps, dtype=float), times.shape).copy(),
        )


class TraceRail:
    """Expose a rendered :class:`PowerTrace` with sample-and-hold lookup.

    Before the first trace point the rail reads the first value; after the
    last point it holds the last value.
    """

    def __init__(self, trace: PowerTrace, offset: float = 0.0) -> None:
        self.trace = trace
        #: Simulated time at which the trace's t=0 occurs (lets a trace
        #: rendered on its own timeline be measured later in bench time).
        self.offset = float(offset)

    def sample_uniform(self, start: float, dt: float, n: int):
        times = start - self.offset + dt * np.arange(n)
        idx = np.searchsorted(self.trace.times, times, side="right") - 1
        idx = np.clip(idx, 0, self.trace.times.size - 1)
        return self.trace.volts[idx].copy(), self.trace.amps[idx].copy()


class CabledRail:
    """A rail reached through a resistive cable, with optional remote sense.

    The sensor module sits at the supply end of the cable; the DUT draws
    its current at the far end.  Measuring the voltage at the module's
    input port therefore over-reads by ``I * R_cable`` — which is why the
    PowerSensor3 modules integrate a remote-sense connector that taps the
    voltage directly at the DUT (paper, Section III-A).
    """

    def __init__(
        self,
        inner,
        cable_resistance_ohms: float,
        remote_sense: bool = True,
    ) -> None:
        if cable_resistance_ohms < 0:
            raise MeasurementError("cable resistance cannot be negative")
        self.inner = inner
        self.cable_resistance_ohms = float(cable_resistance_ohms)
        self.remote_sense = bool(remote_sense)

    def sample_uniform(self, start: float, dt: float, n: int):
        volts_dut, amps = self.inner.sample_uniform(start, dt, n)
        if self.remote_sense:
            return volts_dut, amps  # sense wires tap the DUT directly
        return volts_dut + amps * self.cable_resistance_ohms, amps


class SegmentRail:
    """A rail whose power is scheduled as appended constant segments.

    Used by the auto-tuning harness: before each kernel trial a segment
    ``(start, stop, watts)`` is appended at the current simulated time,
    and the sensor samples whatever is scheduled.  Outside all segments
    the rail sits at the idle power.
    """

    def __init__(self, volts: float, idle_watts: float) -> None:
        self.volts = float(volts)
        self.idle_watts = float(idle_watts)
        self._starts: list[float] = []
        self._stops: list[float] = []
        self._watts: list[float] = []

    def schedule(self, start: float, stop: float, watts: float) -> None:
        if stop <= start:
            raise MeasurementError("segment must have positive duration")
        if self._starts and start < self._stops[-1]:
            raise MeasurementError("segments must be scheduled in time order")
        self._starts.append(float(start))
        self._stops.append(float(stop))
        self._watts.append(float(watts))

    def prune_before(self, time: float) -> None:
        """Drop fully elapsed segments to keep lookups O(log recent)."""
        keep = 0
        while keep < len(self._stops) and self._stops[keep] < time:
            keep += 1
        if keep:
            del self._starts[:keep], self._stops[:keep], self._watts[:keep]

    def sample_uniform(self, start: float, dt: float, n: int):
        times = start + dt * np.arange(n)
        watts = np.full(n, self.idle_watts)
        if self._starts:
            starts = np.asarray(self._starts)
            stops = np.asarray(self._stops)
            levels = np.asarray(self._watts)
            idx = np.searchsorted(starts, times, side="right") - 1
            idx_c = np.clip(idx, 0, starts.size - 1)
            inside = (idx >= 0) & (times < stops[idx_c])
            watts = np.where(inside, levels[idx_c], watts)
        volts = np.full(n, self.volts)
        return volts, watts / self.volts


class ScaledRail:
    """A rail derived from another by scaling voltage and/or current.

    Used e.g. to derive a 3.3 V auxiliary rail carrying a fixed fraction of
    a device's power from its main power model.
    """

    def __init__(self, inner, volt_scale: float = 1.0, amp_scale: float = 1.0):
        self.inner = inner
        self.volt_scale = float(volt_scale)
        self.amp_scale = float(amp_scale)

    def sample_uniform(self, start: float, dt: float, n: int):
        volts, amps = self.inner.sample_uniform(start, dt, n)
        return volts * self.volt_scale, amps * self.amp_scale


class SplitRail:
    """One of several parallel feeds of a device.

    A PCIe GPU draws from the slot (3.3 V and 12 V) and external 12 V
    connectors simultaneously; ``SplitRail`` carves a fixed share of a
    total-power rail into one feed at its own nominal voltage.
    """

    def __init__(self, total_watts_fn: Callable[[np.ndarray], np.ndarray],
                 share: float, volts: float, droop_ohms: float = 0.0):
        if not 0.0 <= share <= 1.0:
            raise MeasurementError(f"share must be in [0, 1], got {share}")
        self.total_watts_fn = total_watts_fn
        self.share = float(share)
        self.nominal_volts = float(volts)
        self.droop_ohms = float(droop_ohms)

    def sample_uniform(self, start: float, dt: float, n: int):
        times = start + dt * np.arange(n)
        watts = np.asarray(self.total_watts_fn(times), dtype=float) * self.share
        # Solve u = V0 - R * i with i = p / u; one Newton step from u = V0
        # is plenty for the few-mOhm droops involved.
        volts = np.full(n, self.nominal_volts)
        if self.droop_ohms > 0.0:
            amps0 = watts / volts
            volts = volts - self.droop_ohms * amps0
            volts = np.maximum(volts, 0.5 * self.nominal_volts)
        amps = watts / volts
        return volts, amps
