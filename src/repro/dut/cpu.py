"""CPU package model: the substrate behind the RAPL backend.

The paper's related-work section covers RAPL as the standard software
interface for CPU power (Section II); PMT's CPU backend reads it.  This
behavioural model renders a package power trace from a per-core load
schedule so the RAPL model and PMT backend have something real to
integrate: idle/uncore power, per-core active power scaled by a DVFS
``f * V(f)^2`` curve, and turbo behaviour when few cores are active.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import MeasurementError
from repro.common.rng import RngStream
from repro.dut.base import PowerTrace


@dataclass(frozen=True)
class CpuSpec:
    """Static description of one CPU package."""

    name: str = "generic 16-core server CPU"
    n_cores: int = 16
    idle_watts: float = 22.0  # package + uncore at idle
    core_active_watts: float = 8.5  # one core fully busy at base clock
    base_clock_ghz: float = 2.6
    turbo_clock_ghz: float = 3.8
    #: Cores that can hold turbo simultaneously before clocks step down.
    turbo_core_limit: int = 4
    #: Clock with every core busy (the ladder's lower end).
    allcore_clock_ghz: float = 3.0
    tdp_watts: float = 165.0

    def clock_at(self, active_cores: int) -> float:
        """All-core clock for a number of busy cores (simple turbo ladder)."""
        if active_cores <= 0:
            return self.base_clock_ghz
        if active_cores <= self.turbo_core_limit:
            return self.turbo_clock_ghz
        frac = (active_cores - self.turbo_core_limit) / max(
            self.n_cores - self.turbo_core_limit, 1
        )
        return self.turbo_clock_ghz - frac * (
            self.turbo_clock_ghz - self.allcore_clock_ghz
        )

    def package_power(self, active_cores: int) -> float:
        """Steady package power with ``active_cores`` busy, W (TDP-capped)."""
        if not 0 <= active_cores <= self.n_cores:
            raise MeasurementError(
                f"active cores {active_cores} out of 0..{self.n_cores}"
            )
        clock = self.clock_at(active_cores)
        v = 0.75 + 0.30 * (clock - self.base_clock_ghz) / max(
            self.turbo_clock_ghz - self.base_clock_ghz, 1e-9
        )
        scale = (clock * v * v) / (self.base_clock_ghz * 0.75**2)
        return min(
            self.idle_watts + active_cores * self.core_active_watts * scale,
            self.tdp_watts,
        )


@dataclass
class LoadPhase:
    """A span of time with a fixed number of busy cores."""

    start: float
    duration: float
    active_cores: int


class Cpu:
    """A CPU whose scheduled load renders into a package power trace."""

    def __init__(self, spec: CpuSpec | None = None, rng: RngStream | None = None):
        self.spec = spec or CpuSpec()
        self.rng = rng or RngStream(0, "cpu")
        self.phases: list[LoadPhase] = []

    def schedule(self, phase: LoadPhase) -> None:
        if phase.duration <= 0:
            raise MeasurementError("phase duration must be positive")
        if not 0 <= phase.active_cores <= self.spec.n_cores:
            raise MeasurementError("active cores out of range")
        self.phases.append(phase)

    def render(self, t_end: float, dt: float = 1e-3) -> PowerTrace:
        """Render the load schedule into a 12 V EPS-rail power trace."""
        times = np.arange(0.0, t_end + dt, dt)
        power = np.full(times.size, self.spec.idle_watts)
        for phase in sorted(self.phases, key=lambda p: p.start):
            mask = (times >= phase.start) & (times < phase.start + phase.duration)
            steady = self.spec.package_power(phase.active_cores)
            # Package power settles within a few milliseconds.
            rel = times[mask] - phase.start
            power[mask] = self.spec.idle_watts + (steady - self.spec.idle_watts) * (
                1.0 - np.exp(-rel / 0.004)
            )
        power = power + self.rng.normal(0.0, 0.2, size=power.shape)
        power = np.clip(power, 0.5 * self.spec.idle_watts, self.spec.tdp_watts)
        volts = np.full(times.size, 12.0)
        return PowerTrace(times=times, volts=volts, amps=power / volts)
