"""Devices under test and bench instruments.

Everything PowerSensor3 measures in the paper lives here: the laboratory
bench (supply, electronic load, multimeters — Section IV's Fig. 3 setup),
the discrete GPUs of Section V-A, the Jetson AGX Orin SoC of Section V-B,
and the NVMe SSD of Section V-C.  Each DUT exposes one or more
:class:`~repro.dut.base.PowerRail`-compatible rails that sensor modules
can be connected to.
"""

from repro.dut.base import (
    CabledRail,
    ConstantRail,
    FunctionRail,
    PowerTrace,
    ScaledRail,
    SegmentRail,
    SplitRail,
    TraceRail,
)
from repro.dut.cpu import Cpu, CpuSpec, LoadPhase
from repro.dut.instruments import (
    DigitalMultimeter,
    ElectronicLoad,
    LabSupply,
    LoadedSupplyRail,
)

__all__ = [
    "PowerTrace",
    "CabledRail",
    "Cpu",
    "CpuSpec",
    "LoadPhase",
    "ConstantRail",
    "FunctionRail",
    "TraceRail",
    "ScaledRail",
    "SegmentRail",
    "SplitRail",
    "LabSupply",
    "ElectronicLoad",
    "DigitalMultimeter",
    "LoadedSupplyRail",
]
