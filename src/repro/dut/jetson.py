"""NVIDIA Jetson AGX Orin SoC model (the paper's Section V-B case study).

The development kit combines the SoC *module* (CPU + GPU + memory) with a
*carrier board*; the whole system is powered over USB-C.  The two Jetson
limitations the paper demonstrates are modelled explicitly:

* the built-in INA-style sensor reports only *module* power — the carrier
  board's consumption is invisible to it (PowerSensor3 on the USB-C feed
  sees everything);
* the built-in sensor updates only every ~0.1 s.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream
from repro.dut.base import PowerTrace, TraceRail
from repro.dut.gpu import Gpu, KernelLaunch, gpu_spec

#: nvpmodel power modes: (module power budget W, GPU clock cap MHz).
#: MAXN removes the budget and runs the full clock range.
POWER_MODES: dict[str, tuple[float | None, float | None]] = {
    "15W": (15.0, 420.0),
    "30W": (30.0, 620.0),
    "50W": (50.0, 828.0),
    "MAXN": (None, None),
}


class JetsonAgxOrin:
    """Jetson AGX Orin development kit: SoC module on a carrier board.

    ``power_mode`` selects an nvpmodel profile: it caps the GPU clock and
    the module's power budget, exactly the knob Jetson deployments tune.
    """

    #: Carrier board draw (regulators, USB/network PHYs, fan) — roughly
    #: constant, and excluded from the module's built-in sensor.
    CARRIER_WATTS = 4.8
    #: CPU-complex idle contribution inside the module.
    CPU_IDLE_WATTS = 3.2
    #: USB-C PD supply voltage of the devkit.
    USB_C_VOLTS = 20.0

    def __init__(
        self, rng: RngStream | None = None, power_mode: str = "MAXN"
    ) -> None:
        if power_mode not in POWER_MODES:
            known = ", ".join(sorted(POWER_MODES))
            raise ConfigurationError(
                f"unknown power mode {power_mode!r}; known modes: {known}"
            )
        self.rng = rng or RngStream(0, "jetson")
        self.power_mode = power_mode
        budget, clock_cap = POWER_MODES[power_mode]
        spec = gpu_spec("jetson_orin_gpu")
        if budget is not None:
            gpu_budget = max(budget - self.CPU_IDLE_WATTS, spec.idle_watts + 1.0)
            spec = replace(
                spec,
                power_limit_watts=min(spec.power_limit_watts, gpu_budget),
                boost_clock_mhz=min(spec.boost_clock_mhz, clock_cap),
            )
        self.gpu = Gpu(spec, self.rng.child("gpu"))

    def launch(self, launch: KernelLaunch) -> None:
        self.gpu.launch(launch)

    def reset(self) -> None:
        self.gpu.reset()

    def render(self, t_end: float, dt: float = 2e-4) -> tuple[PowerTrace, PowerTrace]:
        """Render (module_trace, total_trace) for the scheduled workload."""
        gpu_trace = self.gpu.render(t_end, dt)
        times = gpu_trace.times
        cpu = self.CPU_IDLE_WATTS + self.rng.normal(0.0, 0.05, size=times.size)
        module_watts = gpu_trace.watts + cpu
        carrier = self.CARRIER_WATTS + self.rng.normal(0.0, 0.03, size=times.size)
        total_watts = module_watts + carrier
        module = PowerTrace(
            times=times,
            volts=np.full(times.size, self.USB_C_VOLTS),
            amps=module_watts / self.USB_C_VOLTS,
        )
        total = PowerTrace(
            times=times,
            volts=np.full(times.size, self.USB_C_VOLTS),
            amps=total_watts / self.USB_C_VOLTS,
        )
        return module, total

    def usb_c_rail(self, total_trace: PowerTrace) -> TraceRail:
        """The USB-C feed PowerSensor3's USB-C module intercepts."""
        return TraceRail(total_trace)
