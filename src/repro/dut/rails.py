"""Build DUT power rails from compact spec strings.

The CLI tools and URI device specs describe the device under test as a
short string — ``load:8.0@12.0``, ``gpu:rtx4000ada``, ``const:2@5`` —
and every layer (CLI flags, ``sim://`` specs, the fleet builder) resolves
it through :func:`build_rail`.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.dut.base import ConstantRail
from repro.dut.gpu import Gpu, KernelLaunch
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail

#: One-line spec reference for CLI help strings.
DUT_SPEC_HELP = (
    "'load:<amps>@<volts>', 'gpu:<key>' (repeating synthetic workload), "
    "'const:<amps>@<volts>', or 'none'"
)


def build_rail(dut: str, seed: int = 0):
    """Resolve a DUT spec string to a power rail (``None`` for 'none')."""
    dut = dut.strip().lower()
    if dut in ("none", ""):
        return None
    if dut.startswith("load:"):
        spec = dut.split(":", 1)[1]
        amps_text, _, volts_text = spec.partition("@")
        load = ElectronicLoad()
        load.set_current(float(amps_text))
        return LoadedSupplyRail(LabSupply(float(volts_text or 12.0)), load)
    if dut.startswith("gpu:"):
        key = dut.split(":", 1)[1] or "rtx4000ada"
        gpu = Gpu(key)
        # A repeating 2-second synthetic workload with 1 s of idle between.
        for k in range(20):
            gpu.launch(
                KernelLaunch(start=1.0 + 3.0 * k, duration=2.0, n_waves=8)
            )
        trace = gpu.render(t_end=62.0, dt=5e-4)
        return gpu.rails(trace)["ext_12v"]
    if dut.startswith("const:"):
        spec = dut.split(":", 1)[1]
        amps_text, _, volts_text = spec.partition("@")
        return ConstantRail(float(volts_text or 12.0), float(amps_text))
    raise ConfigurationError(f"unknown DUT spec {dut!r} (expected {DUT_SPEC_HELP})")
