"""PowerSensor3 reproduction library.

A faithful software reproduction of *PowerSensor3: A Fast and Accurate Open
Source Power Measurement Tool* (van der Vlugt et al., ISPASS 2025): the
20 kHz power measurement toolkit, a simulated hardware substrate standing
in for the physical sensor (see DESIGN.md for the substitution table), the
devices under test the paper evaluates (GPUs, Jetson SoC, NVMe SSD), and
the ecosystem integrations (PMT, Kernel Tuner, fio-style storage
workloads).

Quickstart::

    from repro import SimulatedSetup, joules, watts, seconds
    from repro.dut import LabSupply, ElectronicLoad, LoadedSupplyRail

    setup = SimulatedSetup(["pcie_slot_12v"])
    load = ElectronicLoad()
    load.set_current(8.0)
    setup.connect(0, LoadedSupplyRail(LabSupply(12.0), load))

    before = setup.ps.read()
    setup.ps.pump_seconds(1.0)        # one second of simulated measurement
    after = setup.ps.read()
    print(watts(before, after))       # ~96 W
"""

from repro.core import (
    DirectSampleSource,
    DumpReader,
    DumpWriter,
    PowerSensor,
    ProtocolSampleSource,
    SampleBlock,
    SimulatedSetup,
    State,
    joules,
    seconds,
    watts,
)

__version__ = "1.0.0"

__all__ = [
    "PowerSensor",
    "SimulatedSetup",
    "State",
    "joules",
    "watts",
    "seconds",
    "SampleBlock",
    "ProtocolSampleSource",
    "DirectSampleSource",
    "DumpReader",
    "DumpWriter",
    "__version__",
]
