"""Deterministic fault injection for the virtual serial link.

The robustness of the host stack (resynchronisation in the stream
decoder, the PowerSensor recovery policy, the realtime watchdog) is only
provable if the failure modes of a physical USB-serial deployment can be
reproduced on demand.  This module wraps :class:`VirtualSerialLink` with
seedable fault models covering what a real bench sees:

* :class:`DroppedBytes` — independent per-byte loss (cable glitches),
* :class:`BitFlips` — random single-bit corruption (EMI),
* :class:`PartialReads` — short reads that defer the tail to the next
  read (USB scheduling), escalating to a transport overflow when the
  backlog grows unboundedly,
* :class:`DeviceStall` — the device stops producing for a while (or
  forever, modelling a wedged firmware),
* :class:`OverflowBurst` — a burst of garbage bytes, as an overflowed
  device ring buffer spews corrupt data.

All randomness comes from one seeded generator owned by the wrapper, so
a given (seed, fault spec, traffic) triple replays byte-for-byte.  With
no fault models installed the wrapper is transparent: the stream is
byte-identical to the bare link.  Faults apply only while the device is
streaming — the short command/response handshake (version, EEPROM reads)
is left intact so a corrupted *stream* can be studied separately from a
corrupted *control plane*.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError, TransportError
from repro.observability import MetricsRegistry
from repro.transport.link import VirtualSerialLink


class FaultModel:
    """Base class: a deterministic transformation of the byte stream.

    Subclasses mutate ``data`` (possibly to ``b""``) using the shared
    seeded generator and count every corruption they inject in
    :attr:`injected`.
    """

    name = "fault"

    def __init__(self) -> None:
        self.injected = 0

    def transform(self, data: bytes, rng: np.random.Generator) -> bytes:
        raise NotImplementedError

    def drain(self) -> bytes:
        """Release bytes the model deferred (nothing, for most models).

        On a blocking transport the wrapper must be able to deliver
        deferred bytes without waiting for fresh traffic, or a
        request/response exchange (e.g. a handshake) deadlocks with the
        response tail stuck in the model.
        """
        return b""


class DroppedBytes(FaultModel):
    """Drop each stream byte independently with probability ``rate``."""

    name = "drop"

    def __init__(self, rate: float) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"drop rate {rate} must be in [0, 1]")
        self.rate = float(rate)

    def transform(self, data: bytes, rng: np.random.Generator) -> bytes:
        if not data or self.rate <= 0.0:
            return data
        arr = np.frombuffer(data, dtype=np.uint8)
        keep = rng.random(arr.size) >= self.rate
        dropped = arr.size - int(keep.sum())
        if not dropped:
            return data
        self.injected += dropped
        return arr[keep].tobytes()


class BitFlips(FaultModel):
    """Flip one random bit in each byte, independently with ``rate``."""

    name = "flip"

    def __init__(self, rate: float) -> None:
        super().__init__()
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"flip rate {rate} must be in [0, 1]")
        self.rate = float(rate)

    def transform(self, data: bytes, rng: np.random.Generator) -> bytes:
        if not data or self.rate <= 0.0:
            return data
        arr = np.frombuffer(data, dtype=np.uint8).copy()
        hits = np.flatnonzero(rng.random(arr.size) < self.rate)
        if hits.size == 0:
            return data
        bits = rng.integers(0, 8, size=hits.size)
        arr[hits] ^= (1 << bits).astype(np.uint8)
        self.injected += int(hits.size)
        return arr.tobytes()


class PartialReads(FaultModel):
    """Truncate reads, deferring the tail to the next read.

    With probability ``probability`` a read returns only a random prefix
    (up to ``max_fraction`` of the pending bytes); the remainder is
    buffered and prepended to the next read, exactly as a short USB
    transfer behaves.  No bytes are lost — unless the backlog exceeds
    ``max_backlog``, which models the device-side ring buffer overflowing
    and raises :class:`TransportError`.
    """

    name = "partial"

    def __init__(
        self,
        probability: float,
        max_fraction: float = 0.75,
        max_backlog: int = 1 << 20,
    ) -> None:
        super().__init__()
        self.probability = float(probability)
        self.max_fraction = float(max_fraction)
        self.max_backlog = int(max_backlog)
        self._backlog = b""

    def transform(self, data: bytes, rng: np.random.Generator) -> bytes:
        data = self._backlog + data
        self._backlog = b""
        if data and rng.random() < self.probability:
            keep = int(len(data) * rng.uniform(0.0, self.max_fraction))
            self._backlog = data[keep:]
            if len(self._backlog) > self.max_backlog:
                backlog = len(self._backlog)
                self._backlog = b""
                raise TransportError(
                    f"injected device buffer overflow ({backlog} bytes backlogged)"
                )
            self.injected += 1
            data = data[:keep]
        return data

    def drain(self) -> bytes:
        out, self._backlog = self._backlog, b""
        return out


class DeviceStall(FaultModel):
    """The device stops producing: reads come back empty for a while.

    Each read trips a stall with probability ``probability``; a stall
    swallows the bytes of ``duration_reads`` consecutive reads (the data
    a wedged device never transmitted is gone, not delayed).  With
    ``probability=1.0`` and a huge duration this models a dead device.
    """

    name = "stall"

    def __init__(self, probability: float, duration_reads: int = 5) -> None:
        super().__init__()
        self.probability = float(probability)
        self.duration_reads = int(duration_reads)
        self._remaining = 0

    def transform(self, data: bytes, rng: np.random.Generator) -> bytes:
        if self._remaining > 0:
            self._remaining -= 1
            self.injected += 1
            return b""
        if rng.random() < self.probability:
            self._remaining = self.duration_reads - 1
            self.injected += 1
            return b""
        return data


class OverflowBurst(FaultModel):
    """Prepend a burst of garbage bytes with probability ``probability``.

    Models the corrupt data an overflowed device buffer spews before the
    stream recovers; the decoder must resynchronise through it.
    """

    name = "burst"

    def __init__(self, probability: float, burst_bytes: int = 256) -> None:
        super().__init__()
        self.probability = float(probability)
        self.burst_bytes = int(burst_bytes)

    def transform(self, data: bytes, rng: np.random.Generator) -> bytes:
        if rng.random() < self.probability:
            garbage = rng.integers(0, 256, size=self.burst_bytes, dtype=np.uint8)
            self.injected += 1
            data = garbage.tobytes() + data
        return data


#: Fault spec grammar: comma-separated ``name[:param[@param]]`` tokens.
FAULT_SPEC_HELP = (
    "comma-separated fault models: drop:<rate>, flip:<rate>, "
    "partial:<prob>, stall:<prob>@<reads>, burst:<prob>@<bytes>, dead"
)


def parse_fault_spec(spec: str) -> list[FaultModel]:
    """Parse a ``--faults`` spec string into fault model instances.

    Examples: ``"drop:0.01"``, ``"flip:0.001,stall:0.05@10"``, ``"dead"``.
    """
    models: list[FaultModel] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, _, params = token.partition(":")
        first, _, second = params.partition("@")
        name = name.lower()
        try:
            if name == "drop":
                models.append(DroppedBytes(float(first or 0.01)))
            elif name == "flip":
                models.append(BitFlips(float(first or 0.001)))
            elif name == "partial":
                models.append(PartialReads(float(first or 0.25)))
            elif name == "stall":
                models.append(DeviceStall(float(first or 0.05), int(second or 5)))
            elif name == "burst":
                models.append(OverflowBurst(float(first or 0.05), int(second or 256)))
            elif name == "dead":
                models.append(DeviceStall(1.0, duration_reads=1 << 30))
            else:
                raise ConfigurationError(
                    f"unknown fault model {name!r} ({FAULT_SPEC_HELP})"
                )
        except ValueError as error:
            raise ConfigurationError(f"bad fault spec {token!r}: {error}") from None
    return models


class FaultySerialLink:
    """A :class:`VirtualSerialLink` with fault models on the read path.

    Drop-in replacement for the bare link (same read/pump/write surface);
    every device->host byte passes through the installed fault models in
    order, driven by one seeded generator.  Control-plane traffic (while
    the device is not streaming) is spared unless
    ``spare_control_plane=False``.
    """

    def __init__(
        self,
        link: VirtualSerialLink,
        models: list[FaultModel] | None = None,
        seed: int = 0,
        spare_control_plane: bool = True,
        registry: MetricsRegistry | None = None,
        device: str | None = None,
    ) -> None:
        self.link = link
        self.models = list(models or [])
        self.rng = np.random.default_rng(seed)
        self.spare_control_plane = spare_control_plane
        self.registry = registry if registry is not None else MetricsRegistry()
        self.device = device
        labels = {"device": device} if device else {}
        self._mirrored = [0] * len(self.models)
        self._fault_counters = [
            self.registry.counter(
                "faults_injected_total",
                help="corruptions injected by the fault layer, per model",
                model=model.name,
                **labels,
            )
            for model in self.models
        ]

    # -- pass-through surface ------------------------------------------ #

    @property
    def firmware(self):
        return self.link.firmware

    @property
    def in_waiting(self) -> int:
        return self.link.in_waiting

    @property
    def is_open(self) -> bool:
        return self.link.is_open

    def write(self, data: bytes) -> None:
        self.link.write(data)

    def utilization(self) -> float:
        return self.link.utilization()

    def close(self) -> None:
        self.link.close()

    # -- faulted read path --------------------------------------------- #

    def _apply(self, data: bytes) -> bytes:
        if self.spare_control_plane and not self.link.firmware.streaming:
            return data
        try:
            for model in self.models:
                data = model.transform(data, self.rng)
        finally:
            # Mirror injected counts into the registry even when a model
            # raises (PartialReads overflow), so injected == observed holds.
            self._mirror_injected()
        return data

    def _mirror_injected(self) -> None:
        for i, model in enumerate(self.models):
            delta = model.injected - self._mirrored[i]
            if delta:
                self._fault_counters[i].inc(delta)
                self._mirrored[i] = model.injected

    def read(self, n: int | None = None) -> bytes:
        return self._apply(self.link.read(n))

    def pump_samples(self, n_samples: int) -> bytes:
        return self._apply(self.link.pump_samples(n_samples))

    def pump_seconds(self, seconds: float) -> bytes:
        return self._apply(self.link.pump_seconds(seconds))

    def injected(self) -> dict[str, int]:
        """Per-model count of corruptions injected so far."""
        counts: dict[str, int] = {}
        for model in self.models:
            counts[model.name] = counts.get(model.name, 0) + model.injected
        return counts
