"""Byte-stream abstraction for socket transports, with fault injection.

The serving layer (:mod:`repro.server`) moves framed bytes over TCP or
Unix sockets.  This module gives it the same two properties the virtual
serial link already has: a minimal uniform surface (``read``/``write``/
``close``, where an empty read strictly means end-of-stream) and the
ability to interpose the existing :class:`~repro.transport.faults.FaultModel`
family on the receive path, so the wire protocol's resynchronisation can
be exercised against exactly the corruption models the serial stack is
tested with.

The one semantic difference from :class:`FaultySerialLink`: a serial read
may legitimately return nothing (the device is idle), but on a stream
socket ``recv() == b""`` means the peer closed.  :class:`FaultyByteStream`
therefore re-reads when a fault model eats an entire chunk — the data is
lost (a stall is a loss event, not a hang-up), and the reader only sees
EOF when the underlying socket actually closes.
"""

from __future__ import annotations

import socket

import numpy as np

from repro.common.errors import TransportError
from repro.observability import MetricsRegistry
from repro.transport.faults import FaultModel


class ByteStream:
    """Minimal duplex byte stream: ``read(n) == b""`` means EOF."""

    def read(self, n: int) -> bytes:
        raise NotImplementedError

    def write(self, data: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SocketByteStream(ByteStream):
    """A connected TCP or Unix socket as a :class:`ByteStream`.

    Socket-level failures surface as :class:`TransportError` so callers
    deal with one failure domain; a clean peer shutdown is not an error,
    it is an empty read.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._open = True

    def read(self, n: int) -> bytes:
        if not self._open:
            return b""
        try:
            return self.sock.recv(n)
        except (ConnectionError, socket.timeout) as error:
            raise TransportError(f"socket read failed: {error}") from error
        except OSError as error:
            if not self._open:  # closed concurrently by close()
                return b""
            raise TransportError(f"socket read failed: {error}") from error

    def write(self, data: bytes) -> None:
        if not self._open:
            raise TransportError("socket is closed")
        try:
            self.sock.sendall(data)
        except OSError as error:
            raise TransportError(f"socket write failed: {error}") from error

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class FaultyByteStream(ByteStream):
    """Interpose fault models on a byte stream's receive path.

    Reuses the :class:`FaultModel` family unchanged — the same seeded
    (seed, spec, traffic) determinism applies.  When every installed
    model conspires to turn a non-empty chunk into ``b""`` (a stall, or a
    drop of the whole chunk), the stream re-reads instead of reporting
    EOF: on a socket, silence is loss, not closure.
    """

    def __init__(
        self,
        stream: ByteStream,
        models: list[FaultModel] | None = None,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.stream = stream
        self.models = list(models or [])
        self.rng = np.random.default_rng(seed)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._mirrored = [0] * len(self.models)
        self._fault_counters = [
            self.registry.counter(
                "faults_injected_total",
                help="corruptions injected by the fault layer, per model",
                model=model.name,
            )
            for model in self.models
        ]

    def _apply(self, data: bytes) -> bytes:
        try:
            for model in self.models:
                data = model.transform(data, self.rng)
        finally:
            self._mirror_injected()
        return data

    def _mirror_injected(self) -> None:
        for i, model in enumerate(self.models):
            delta = model.injected - self._mirrored[i]
            if delta:
                self._fault_counters[i].inc(delta)
                self._mirrored[i] = model.injected

    def read(self, n: int) -> bytes:
        # Deliver bytes a model deferred (PartialReads) before blocking
        # on the transport: the peer may be waiting on them to respond.
        for model in self.models:
            pending = model.drain()
            if pending:
                return pending
        while True:
            chunk = self.stream.read(n)
            if not chunk:
                return b""  # true EOF: the peer closed
            faulted = self._apply(chunk)
            if faulted:
                return faulted
            # The models ate the whole chunk (stall/drop): that data is
            # lost, but the connection is alive — keep reading.

    def write(self, data: bytes) -> None:
        self.stream.write(data)

    def close(self) -> None:
        self.stream.close()

    def injected(self) -> dict[str, int]:
        """Per-model count of corruptions injected so far."""
        counts: dict[str, int] = {}
        for model in self.models:
            counts[model.name] = counts.get(model.name, 0) + model.injected
        return counts
