"""Virtual USB-serial transport between firmware and host library."""

from repro.transport.link import VirtualSerialLink

__all__ = ["VirtualSerialLink"]
