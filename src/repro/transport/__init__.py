"""Virtual USB-serial transport between firmware and host library."""

from repro.transport.bytestream import (
    ByteStream,
    FaultyByteStream,
    SocketByteStream,
)
from repro.transport.faults import (
    BitFlips,
    DeviceStall,
    DroppedBytes,
    FaultModel,
    FaultySerialLink,
    OverflowBurst,
    PartialReads,
    parse_fault_spec,
)
from repro.transport.link import VirtualSerialLink

__all__ = [
    "VirtualSerialLink",
    "FaultySerialLink",
    "FaultModel",
    "DroppedBytes",
    "BitFlips",
    "PartialReads",
    "DeviceStall",
    "OverflowBurst",
    "parse_fault_spec",
    "ByteStream",
    "SocketByteStream",
    "FaultyByteStream",
]
