"""Shared-memory producer ring: device simulation off the consumer's read path.

End-to-end ``read_block`` used to interleave three stages in one Python
loop: device simulation (sensor physics + firmware packetisation), the
serial-link pump, and decoding.  Decode alone runs at ~4 M samples/s but
the interleaved loop delivers ~365 k, because every ``read_block(n)``
pays the full production cost inline.

This module splits the pipeline at the transport layer:

* :class:`SpscByteRing` — a lock-light single-producer/single-consumer
  byte ring with cached head/tail indices, laid out over either a plain
  ``bytearray`` (thread/inline producers) or a
  ``multiprocessing.shared_memory`` segment (process producer).  Records
  are framed ``(n_samples, n_bytes, payload)`` and never wrap the ring
  edge, so every payload the consumer sees is one contiguous view that
  feeds ``np.frombuffer``/``decode_block`` zero-copy.
* :class:`ProducerLink` — wraps a :class:`VirtualSerialLink` (or
  :class:`~repro.transport.faults.FaultySerialLink`) and runs
  ``pump_samples`` in large batches from a producer *thread* or forked
  *process* into the ring; the consumer's ``pump_samples(n)`` only
  assembles ring views.  An *inline* producer runs the same batched code
  path synchronously — one deterministic reference the concurrent modes
  are pinned byte-identical against.
* :class:`CodeRingProducer` — the same treatment for
  :class:`~repro.core.sources.DirectSampleSource`: raw averaged ADC code
  batches through the ring instead of wire bytes.

Determinism note: sensor noise is a stateful AR(1) process whose RNG
consumption depends on call granularity, so a batched producer stream is
*not* bitwise-equal to an unbatched one — it is bitwise-equal to any
other producer mode using the same ``batch``.  Producer mode is therefore
opt-in (``sim://...?producer=thread``); the default path is untouched.

Lifecycle: a producer that crashes or is stopped mid-stream marks the
ring end-of-stream, so the consumer's next read returns empty and the
existing :class:`~repro.common.retry.RecoveryPolicy` /
``StreamStalledError`` machinery takes over — no hangs.  ``close()``
always joins the worker and unlinks the shared segment.
"""

from __future__ import annotations

import os
import struct
import threading
import time
from collections import deque
from typing import Callable

from repro.common.errors import ConfigurationError, DeviceError, TransportError
from repro.firmware.commands import Command

#: Samples per producer batch.  Large enough that per-batch Python
#: overhead amortises to noise; small enough that a marker forwarded to
#: the producer lands within a few hundred milliseconds of stream time.
DEFAULT_BATCH = 8192

#: Default ring capacity in bytes (~29 batches of 4-pair wire data).
DEFAULT_RING_BYTES = 1 << 22

#: Producer modes.  ``auto`` resolves to ``process`` on multi-core hosts
#: with ``fork`` available, else ``thread``.
PRODUCER_MODES = ("inline", "thread", "process", "auto")

_HEADER = 64  # head u64 | tail u64 | samples u64 | state u8, padded
_PAD = 0xFFFFFFFF  # n_samples sentinel: skip to the ring edge
_CMD_STOP = "stop"
_CMD_MARK = "mark"
_POLL_S = 25e-6  # consumer/producer poll sleep while waiting on the ring
_JOIN_S = 10.0  # worker join timeout before escalating


def _align8(n: int) -> int:
    return (n + 7) & ~7


def resolve_producer_mode(mode: str) -> str:
    """Resolve a ``producer=`` option to a concrete mode."""
    mode = str(mode).strip().lower()
    if mode not in PRODUCER_MODES:
        raise ConfigurationError(
            f"unknown producer mode {mode!r} (expected one of {PRODUCER_MODES})"
        )
    if mode != "auto":
        return mode
    if hasattr(os, "fork") and (os.cpu_count() or 1) > 1:
        return "process"
    return "thread"


class SpscByteRing:
    """Single-producer/single-consumer byte ring over a shared buffer.

    The first :data:`_HEADER` bytes hold the published head (producer
    write index), tail (consumer read index), a cumulative
    samples-pushed counter and an end-of-stream flag; indices are
    monotonic byte counts, position = index mod capacity.  Producer and
    consumer each cache the other side's index and re-load it only when
    the cached value would block — the "lock-light" part: the common
    push/pop costs two 8-byte header writes and no locks.

    Records are framed ``u32 n_samples | u32 n_bytes | payload``, start
    8-byte aligned, and never wrap the edge: a record that would wrap is
    preceded by a pad sentinel and starts at offset 0, so every payload
    is one contiguous slice of the data region.

    :meth:`pop` advances a private read position without publishing it;
    returned views stay valid until :meth:`release`, which publishes the
    tail in one step.  That lets a consumer decode straight out of the
    ring and only then let the producer reuse the space.
    """

    def __init__(self, buf, *, reset: bool = True) -> None:
        view = memoryview(buf).cast("B")
        if len(view) <= _HEADER + 64:
            raise ValueError(f"ring buffer too small ({len(view)} bytes)")
        self._buf = view
        self._data = view[_HEADER:]
        self.capacity = len(view) - _HEADER
        if reset:
            view[:_HEADER] = bytes(_HEADER)
        # Producer-local state (exact; only the producer writes head).
        self._head_local = self._load(0)
        self._samples_local = self._load(16)
        self._cached_tail = self._load(8)
        # Consumer-local state (exact; only the consumer writes tail).
        self._read_local = self._load(8)
        self._cached_head = self._load(0)

    # -- header accessors ---------------------------------------------- #

    def _load(self, offset: int) -> int:
        return struct.unpack_from("<Q", self._buf, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        struct.pack_into("<Q", self._buf, offset, value)

    @property
    def eos(self) -> bool:
        return self._buf[24] != 0

    def mark_eos(self) -> None:
        self._buf[24] = 1

    @property
    def samples_pushed(self) -> int:
        """Total samples ever pushed (survives a producer crash)."""
        return self._load(16)

    def occupancy(self) -> int:
        """Published bytes currently buffered (head - tail)."""
        return self._load(0) - self._load(8)

    # -- producer side -------------------------------------------------- #

    def try_push(self, payload, n_samples: int) -> bool:
        """Append one record; False (nothing written) if the ring is full."""
        nbytes = len(payload)
        rec = _align8(8 + nbytes)
        if rec + 8 > self.capacity // 2:
            raise ValueError(
                f"record of {nbytes} bytes does not fit a {self.capacity}-byte ring"
            )
        head = self._head_local
        off = head % self.capacity
        gap = self.capacity - off
        need = rec if rec <= gap else gap + rec
        if need > self.capacity - (head - self._cached_tail):
            self._cached_tail = self._load(8)
            if need > self.capacity - (head - self._cached_tail):
                return False
        if rec > gap:
            if gap >= 8:  # a sub-header gap is skipped implicitly by pop()
                struct.pack_into("<II", self._data, off, _PAD, 0)
            head += gap
            self._store(0, head)
            off = 0
        struct.pack_into("<II", self._data, off, n_samples, nbytes)
        if nbytes:
            self._data[off + 8 : off + 8 + nbytes] = payload
        head += rec
        self._samples_local += n_samples
        self._store(16, self._samples_local)
        self._store(0, head)  # publish last: payload is fully written
        self._head_local = head
        return True

    # -- consumer side -------------------------------------------------- #

    def pop(self):
        """Next record as ``(payload_view, n_samples)``, or None if empty.

        The view stays valid until :meth:`release`; call sites must drop
        it before the ring is released/detached.
        """
        pos = self._read_local
        while True:
            if pos == self._cached_head:
                self._cached_head = self._load(0)
                if pos == self._cached_head:
                    return None
            off = pos % self.capacity
            gap = self.capacity - off
            if gap < 8:
                pos += gap
                continue
            n_samples, nbytes = struct.unpack_from("<II", self._data, off)
            if n_samples == _PAD:
                pos += gap
                continue
            self._read_local = pos + _align8(8 + nbytes)
            return self._data[off + 8 : off + 8 + nbytes], n_samples

    def release(self) -> None:
        """Publish the consumer position: popped records become reusable."""
        self._store(8, self._read_local)

    def detach(self) -> None:
        """Release the memoryviews (required before closing shared memory)."""
        self._data.release()
        self._buf.release()


class _Stop(Exception):
    """Internal: the producer loop was asked to stop."""


def _producer_loop(
    ring: SpscByteRing,
    pump: Callable[[int], bytes],
    batch: int,
    poll_cmd: Callable[[], str | None],
    handle_cmd: Callable[[str], None],
) -> str | None:
    """Shared producer body: pump batches into the ring until stopped.

    Returns an error string if the pump raised (the ring is marked
    end-of-stream either way, so the consumer never hangs).
    """
    error: str | None = None
    try:
        while True:
            cmd = poll_cmd()
            while cmd is not None:
                if cmd == _CMD_STOP:
                    raise _Stop
                handle_cmd(cmd)
                cmd = poll_cmd()
            payload = pump(batch)
            while not ring.try_push(payload, batch):
                cmd = poll_cmd()
                if cmd == _CMD_STOP:
                    raise _Stop
                if cmd is not None:
                    handle_cmd(cmd)
                time.sleep(_POLL_S)
    except _Stop:
        pass
    except BaseException as exc:  # propagate as stream-end + recorded error
        error = f"{type(exc).__name__}: {exc}"
    finally:
        ring.mark_eos()
    return error


class _RingWorker:
    """Owns one producer worker (thread or forked process) and its ring."""

    def __init__(
        self,
        mode: str,
        ring_bytes: int,
        pump: Callable[[int], bytes],
        batch: int,
        handle_cmd: Callable[[str], None],
        collect_state: Callable[[], dict] | None = None,
    ) -> None:
        self.mode = mode
        self.batch = int(batch)
        self._pump = pump
        self._handle_cmd = handle_cmd
        self._collect_state = collect_state
        self.error: str | None = None
        self.final_state: dict | None = None
        self._shm = None
        self._thread: threading.Thread | None = None
        self._process = None
        self._parent_conn = None
        self._cmds: deque[str] = deque()
        if mode == "process":
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(create=True, size=_HEADER + ring_bytes)
            self.ring = SpscByteRing(self._shm.buf)
        else:
            self.ring = SpscByteRing(bytearray(_HEADER + ring_bytes))

    # -- lifecycle ------------------------------------------------------ #

    def start(self) -> None:
        if self.mode == "inline":
            return
        if self.mode == "thread":
            self._thread = threading.Thread(
                target=self._thread_main, name="ps-producer", daemon=True
            )
            self._thread.start()
            return
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-fork platforms
            raise ConfigurationError(
                "producer=process requires the fork start method; use producer=thread"
            ) from exc
        self._parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=self._process_main, args=(child_conn,), daemon=True
        )
        self._process.start()
        child_conn.close()

    def _thread_main(self) -> None:
        cmds = self._cmds
        self.error = _producer_loop(
            self.ring,
            self._pump,
            self.batch,
            lambda: cmds.popleft() if cmds else None,
            self._handle_cmd,
        )

    def _process_main(self, conn) -> None:
        def poll_cmd() -> str | None:
            return conn.recv() if conn.poll() else None

        error = _producer_loop(self.ring, self._pump, self.batch, poll_cmd, self._handle_cmd)
        state = {}
        if self._collect_state is not None:
            try:
                state = self._collect_state()
            except Exception:  # state sync is best-effort
                state = {}
        try:
            conn.send({"error": error, "state": state})
            conn.close()
        except (OSError, ValueError):  # parent already gone
            pass

    # -- parent-side control -------------------------------------------- #

    def send(self, cmd: str) -> None:
        if self.mode == "inline":
            if cmd != _CMD_STOP:
                self._handle_cmd(cmd)
        elif self.mode == "thread":
            self._cmds.append(cmd)
        elif self._parent_conn is not None:
            try:
                self._parent_conn.send(cmd)
            except (OSError, ValueError, BrokenPipeError):  # worker already dead
                pass

    def alive(self) -> bool:
        if self.mode == "inline":
            return not self.ring.eos
        if self.mode == "thread":
            return self._thread is not None and self._thread.is_alive()
        return self._process is not None and self._process.is_alive()

    def inline_fill(self) -> None:
        """Inline mode: run one producer batch synchronously."""
        payload = self._pump(self.batch)
        if not self.ring.try_push(payload, self.batch):
            raise TransportError(
                "producer ring full: ring_bytes too small for the requested read"
            )

    def drain_state(self) -> None:
        """Collect the worker's error/final state once it has exited."""
        if self.mode == "thread" or self.mode == "inline":
            return
        if self._parent_conn is None or self.final_state is not None:
            return
        try:
            if self._parent_conn.poll(0.5):
                result = self._parent_conn.recv()
                self.final_state = result.get("state") or {}
                self.error = self.error or result.get("error")
        except (OSError, ValueError, EOFError):
            self.final_state = {}

    def stop(self) -> None:
        """Stop the worker: signal, join, escalate to terminate; never hang."""
        self.send(_CMD_STOP)
        if self.mode == "thread" and self._thread is not None:
            self._thread.join(timeout=_JOIN_S)
            self._thread = None
        elif self.mode == "process" and self._process is not None:
            self._process.join(timeout=_JOIN_S)
            if self._process.is_alive():  # pragma: no cover - stuck producer
                self._process.terminate()
                self._process.join(timeout=_JOIN_S)
            self.drain_state()
            self._process = None
        self.ring.mark_eos()

    def close(self) -> None:
        """Join the worker and unlink the shared segment (idempotent)."""
        self.stop()
        if self._parent_conn is not None:
            try:
                self._parent_conn.close()
            except OSError:
                pass
            self._parent_conn = None
        if self._shm is not None:
            self.ring.release()
            try:
                self.ring.detach()
            except BufferError:  # a consumer view is still referenced
                import gc

                gc.collect()
                self.ring.detach()
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None


class ProducerLink:
    """A serial link whose device simulation runs in a producer worker.

    Wraps the :class:`~repro.transport.link.VirtualSerialLink` surface.
    Before streaming starts everything passes through, so the handshake
    (version, EEPROM reads) is byte-identical to the bare link.
    ``START_STREAMING`` arms the producer; the worker itself launches at
    the first read (so a forked child snapshots the fully wired bench,
    not whatever half-built state existed at START) and then pumps
    ``batch``-sample blocks into the ring; the consumer's
    :meth:`pump_samples` assembles
    whole-record ring views — a read of exactly ``batch`` samples is
    zero-copy into decode.  ``MARKER`` is forwarded to the producer (it
    lands at batch granularity); ``STOP_STREAMING`` joins the worker and,
    for a forked producer, syncs the device clock/marker/fault state back
    to the parent's firmware.  Any other command while the producer runs
    raises :class:`DeviceError`, matching the firmware's own
    cannot-while-streaming rules.

    The buffer returned by :meth:`pump_samples` is valid until the next
    call (ring space is only released then).
    """

    def __init__(
        self,
        link,
        producer: str = "auto",
        batch: int = DEFAULT_BATCH,
        ring_bytes: int = DEFAULT_RING_BYTES,
        stall_timeout: float = 5.0,
    ) -> None:
        self.link = link
        self.mode = resolve_producer_mode(producer)
        self.batch = int(batch)
        if self.batch <= 0:
            raise ConfigurationError(f"producer batch must be positive, got {batch}")
        self.ring_bytes = int(ring_bytes)
        self.stall_timeout = float(stall_timeout)
        self._armed = False  # START seen; worker launches on the first read
        self._worker: _RingWorker | None = None
        self._carry: tuple[bytes, int] | None = None
        self._pump_residual = 0.0
        self.producer_error: str | None = None

    # -- pass-through surface ------------------------------------------- #

    @property
    def firmware(self):
        return self.link.firmware

    @property
    def in_waiting(self) -> int:
        return self.link.in_waiting

    @property
    def is_open(self) -> bool:
        return self.link.is_open

    @property
    def producing(self) -> bool:
        """True between START and STOP (the worker itself launches lazily)."""
        return self._armed or self._worker is not None

    @property
    def ring(self) -> SpscByteRing | None:
        return self._worker.ring if self._worker is not None else None

    def utilization(self) -> float:
        return self.link.utilization()

    def __getattr__(self, name: str):
        # Unknown attributes (injected(), models, bandwidth_bps, ...)
        # resolve against the wrapped link, so the wrapper stays a
        # drop-in for FaultySerialLink-aware callers.
        if name == "link":
            raise AttributeError(name)
        return getattr(self.link, name)

    def read(self, n: int | None = None) -> bytes:
        if self._worker is not None:
            raise DeviceError("cannot issue control reads while the producer is running")
        return self.link.read(n)

    def write(self, data: bytes) -> None:
        if self._worker is None:
            # Not launched yet (streaming may be armed, but the first
            # read hasn't happened): the parent still owns the firmware,
            # so every command goes straight through — including markers
            # written between START and the first read, which the worker
            # inherits with the rest of the device state at launch.
            self.link.write(data)
            if data == Command.START_STREAMING.value:
                self._armed = True
                self._carry = None
                self.producer_error = None
            elif data == Command.STOP_STREAMING.value:
                self._armed = False
            return
        if data == Command.MARKER.value:
            self._worker.send(_CMD_MARK)
            return
        if data == Command.STOP_STREAMING.value:
            self._stop()
            self.link.write(data)
            return
        if data == Command.START_STREAMING.value:
            return  # already streaming; a duplicate START is a no-op
        raise DeviceError(
            "only marker/stop commands are valid while the producer is running"
        )

    # -- producer lifecycle --------------------------------------------- #

    def _launch(self) -> _RingWorker:
        """Create and start the worker (deferred to the first read).

        Launching lazily matters for the forked producer: the bench may
        keep wiring itself up after START (``simulated_source`` connects
        the DUT rail after the PowerSensor starts streaming), and a child
        forked at START would snapshot that half-assembled state.  At the
        first read the device is in its final shape by definition.
        """
        self._carry = None
        worker = _RingWorker(
            self.mode,
            self.ring_bytes,
            self.link.pump_samples,
            self.batch,
            self._apply_command,
            self._collect_child_state,
        )
        self._worker = worker
        worker.start()
        return worker

    def _apply_command(self, cmd: str) -> None:
        # Runs in the producer (thread/forked process/inline): commands
        # apply between batches, against the producer's firmware.
        if cmd == _CMD_MARK:
            self.link.write(Command.MARKER.value)

    def _collect_child_state(self) -> dict:
        """Runs in the forked child at exit: state to sync to the parent."""
        state: dict = {}
        firmware = getattr(self.link, "firmware", None)
        if firmware is not None:
            state["samples_produced"] = firmware.samples_produced
            state["markers_pending"] = firmware._markers_pending
            state["markers_dropped"] = firmware.markers_dropped
        models = getattr(self.link, "models", None)
        if models is not None:
            state["injected"] = [model.injected for model in models]
        return state

    def _sync_from_child(self, worker: _RingWorker) -> None:
        """Fold the forked producer's device state back into the parent.

        The parent's firmware did not run while the child produced: its
        clock, sample counter, marker queue and fault counters are stale.
        The child reports them at exit; after a crash the ring's
        samples-pushed counter still lets the clock advance, so time
        never goes backwards across a producer restart.
        """
        state = worker.final_state or {}
        firmware = getattr(self.link, "firmware", None)
        if firmware is not None:
            produced = state.get("samples_produced")
            if produced is None:
                produced = firmware.samples_produced + worker.ring.samples_pushed
            delta = int(produced) - firmware.samples_produced
            if delta > 0:
                firmware.clock.tick(delta)
                firmware.samples_produced += delta
            if "markers_pending" in state:
                firmware._markers_pending = int(state["markers_pending"])
            if "markers_dropped" in state:
                firmware.markers_dropped = int(state["markers_dropped"])
        models = getattr(self.link, "models", None)
        injected = state.get("injected")
        if models is not None and injected is not None:
            for model, count in zip(models, injected):
                model.injected = max(model.injected, int(count))
            mirror = getattr(self.link, "_mirror_injected", None)
            if mirror is not None:
                mirror()

    def _stop(self) -> None:
        self._armed = False
        worker = self._worker
        if worker is None:
            return
        self._worker = None
        self._carry = None
        worker.stop()
        self.producer_error = worker.error
        if self.mode == "process":
            # Sync before close(): after a crash the fallback reads the
            # ring's samples-pushed counter, and close() detaches it.
            self._sync_from_child(worker)
        worker.close()

    # -- consumer read path --------------------------------------------- #

    def _clean_bps(self) -> int:
        firmware = getattr(self.link, "firmware", None)
        return firmware.bytes_per_sample() if firmware is not None else 0

    def _next_record(self, worker: _RingWorker):
        ring = worker.ring
        record = ring.pop()
        if record is not None:
            return record
        if worker.mode == "inline":
            if ring.eos:
                return None
            worker.inline_fill()
            return ring.pop()
        deadline = time.monotonic() + self.stall_timeout
        while True:
            record = ring.pop()
            if record is not None:
                return record
            if ring.eos or not worker.alive():
                # Crashed/stopped producer: surface as an empty read so
                # RecoveryPolicy/StreamStalledError handles it upstream.
                worker.drain_state()
                self.producer_error = self.producer_error or worker.error
                return None
            if time.monotonic() > deadline:
                return None
            time.sleep(_POLL_S)

    def pump_samples(self, n_samples: int):
        """Assemble ring records covering exactly ``n_samples`` of stream time.

        Records are split at the nominal bytes-per-sample boundary when
        they cover more than the remaining request; the byte tail and the
        sample residue are carried (independently — a lossy record can
        leave sample coverage with no bytes) so every call consumes
        exactly ``n_samples`` of coverage while the ring has data.
        Decoding is pinned chunking-invariant, so the reassembled stream
        is byte-for-byte the producer's regardless of split points.  A
        read of exactly one whole record returns the ring view zero-copy.
        """
        worker = self._worker
        if worker is None:
            if not self._armed:
                return self.link.pump_samples(n_samples)
            if n_samples <= 0:
                return b""
            worker = self._launch()
        if n_samples <= 0:
            return b""
        worker.ring.release()  # views from the previous call die here
        bps = self._clean_bps()
        parts: list = []
        covered = 0
        record = self._carry
        self._carry = None
        while True:
            if record is None:
                if covered >= n_samples:
                    break
                record = self._next_record(worker)
                if record is None:
                    break  # producer gone/stalled: short read, recovery upstream
            payload, samples = record
            record = None
            remaining = n_samples - covered
            if samples > remaining and bps:
                take = min(remaining * bps, len(payload))
                if take:
                    head = payload[:take]
                    parts.append(head if isinstance(head, bytes) else bytes(head))
                self._carry = (bytes(payload[take:]), samples - remaining)
                covered = n_samples
            else:
                if len(payload):
                    parts.append(payload)
                covered += samples
        if len(parts) == 1 and isinstance(parts[0], memoryview):
            return parts[0]  # zero-copy straight into decode
        return b"".join(parts)

    def pump_seconds(self, seconds: float):
        if self._worker is None and not self._armed:
            return self.link.pump_seconds(seconds)
        interval = self.link.firmware.baseboard.timing.output_interval_s
        exact = seconds / interval + self._pump_residual
        n = max(int(round(exact)), 0)
        self._pump_residual = exact - n
        return self.pump_samples(n)

    def close(self) -> None:
        self._stop()
        self.link.close()


class CodeRingProducer:
    """Batched ADC-code producer for :class:`DirectSampleSource`.

    The producer owns a private clock snapshotted from the consumer's at
    start and pushes ``(batch, 8)`` uint16 code blocks through the ring;
    the consumer reconstructs codes with one ``np.frombuffer`` per record
    and keeps computing timestamps and markers from its own clock, so the
    consumer-visible stream is continuous across producer restarts.
    """

    BYTES_PER_ROW = 16  # 8 sensors x uint16

    def __init__(
        self,
        baseboard,
        start_time: float,
        producer: str = "auto",
        batch: int = DEFAULT_BATCH,
        ring_bytes: int = DEFAULT_RING_BYTES,
        stall_timeout: float = 5.0,
    ) -> None:
        import numpy as np

        from repro.common.clock import VirtualClock

        self.mode = resolve_producer_mode(producer)
        self.stall_timeout = float(stall_timeout)
        self._baseboard = baseboard
        self._clock = VirtualClock(start=start_time)
        self._clock.configure_ticks(baseboard.timing.output_interval_s)
        self._np = np

        def pump(n: int) -> bytes:
            start = self._clock.now
            codes = baseboard.averaged_codes(start, n)
            self._clock.tick(n)
            return np.ascontiguousarray(codes, dtype="<u2").tobytes()

        self._worker = _RingWorker(
            self.mode, ring_bytes, pump, int(batch), lambda cmd: None
        )
        self._worker.start()
        self.error: str | None = None

    @property
    def ring(self) -> SpscByteRing:
        return self._worker.ring

    def next_codes(self):
        """Next code block as an int64 ``(n, 8)`` array, or None at stream end.

        Copies out of the ring (``astype``) and releases immediately, so
        callers never hold ring views.
        """
        worker = self._worker
        ring = worker.ring
        deadline = None
        while True:
            record = ring.pop()
            if record is not None:
                payload, _ = record
                codes = (
                    self._np.frombuffer(payload, dtype="<u2")
                    .reshape(-1, 8)
                    .astype(self._np.int64)
                )
                ring.release()
                return codes
            if worker.mode == "inline":
                if ring.eos:
                    return None
                worker.inline_fill()
                continue
            if ring.eos or not worker.alive():
                worker.drain_state()
                self.error = self.error or worker.error
                return None
            if deadline is None:
                deadline = time.monotonic() + self.stall_timeout
            elif time.monotonic() > deadline:
                return None
            time.sleep(_POLL_S)

    def close(self) -> None:
        self._worker.close()
        self.error = self.error or self._worker.error
