"""Virtual USB-serial link with a bandwidth model.

The Black Pill's USB controller is full-speed only (12 Mbit/s), which is
the design constraint that drove the choice of a 20 kHz output rate instead
of streaming raw ADC conversions (paper, Section III-B).  The link model
enforces a finite device-side buffer and accounts transfer time so tests
can assert the sustained data rate fits the pipe.
"""

from __future__ import annotations

from repro.common.errors import TransportError
from repro.common.units import USB_FULL_SPEED_BPS
from repro.firmware.device import Firmware


class VirtualSerialLink:
    """Host handle to a simulated device.

    Host writes are delivered to the firmware immediately (commands are a
    handful of bytes).  Host reads *pull* the device: reading ``n`` samples
    worth of data advances the device's simulated clock, exactly as a
    blocking read against real hardware passes wall-clock time.
    """

    def __init__(
        self,
        firmware: Firmware,
        bandwidth_bps: float = USB_FULL_SPEED_BPS,
        buffer_limit: int = 1 << 22,
    ) -> None:
        self.firmware = firmware
        self.bandwidth_bps = float(bandwidth_bps)
        self._seconds_per_byte = 8.0 / self.bandwidth_bps
        self.buffer_limit = int(buffer_limit)
        self._rx = bytearray()  # device -> host bytes not yet read
        self._pump_residual = 0.0  # fractional samples carried across pump_seconds
        self.is_open = True
        self.bytes_to_host = 0
        self.bytes_to_device = 0
        self.busy_seconds = 0.0

    def _check_open(self) -> None:
        if not self.is_open:
            raise TransportError("link is closed")

    def write(self, data: bytes) -> None:
        """Host -> device."""
        self._check_open()
        self.bytes_to_device += len(data)
        self.busy_seconds += len(data) * self._seconds_per_byte
        self.firmware.handle_input(data)
        self._buffer(self.firmware.flush_responses())

    def _buffer(self, data: bytes) -> None:
        if not data:
            return
        if len(self._rx) + len(data) > self.buffer_limit:
            raise TransportError(
                f"device buffer overflow ({len(self._rx) + len(data)} bytes)"
            )
        self._rx.extend(data)
        self.bytes_to_host += len(data)
        self.busy_seconds += len(data) * self._seconds_per_byte

    @property
    def in_waiting(self) -> int:
        return len(self._rx)

    def read(self, n: int | None = None) -> bytes:
        """Drain up to ``n`` buffered bytes (all, if ``n`` is None)."""
        self._check_open()
        rx = self._rx
        if n is None or n >= len(rx):
            out = bytes(rx)  # single copy: drain the whole buffer
            rx.clear()
            return out
        out = bytes(rx[:n])
        del rx[:n]
        return out

    def pump_samples(self, n_samples: int) -> bytes:
        """Advance the device by ``n_samples`` output intervals and read.

        This is the simulation analogue of a blocking read: the device
        produces the bytes covering that much simulated time and they are
        returned (after passing through the buffer accounting).

        This is also the producer-side hot call of
        :class:`repro.transport.shm.ProducerLink`, which runs it in large
        batches off the consumer's read path and hands the returned
        buffer straight to the shared ring.
        """
        self._check_open()
        data = self.firmware.produce(n_samples)
        if not self._rx:
            # Nothing buffered: hand the produced bytes straight to the
            # host (no extend + re-slice copies), with the same overflow
            # and traffic accounting as the buffered path.
            if len(data) > self.buffer_limit:
                raise TransportError(f"device buffer overflow ({len(data)} bytes)")
            self.bytes_to_host += len(data)
            self.busy_seconds += len(data) * self._seconds_per_byte
            return data
        self._buffer(data)
        return self.read()

    def pump_seconds(self, seconds: float) -> bytes:
        # Carry the fractional-sample remainder across calls so repeated
        # short pumps (e.g. 20 ms realtime chunks) never accumulate drift.
        exact = seconds / self.firmware.baseboard.timing.output_interval_s
        exact += self._pump_residual
        n = max(int(round(exact)), 0)
        self._pump_residual = exact - n
        return self.pump_samples(n)

    def utilization(self) -> float:
        """Fraction of the link capacity the produced traffic would use."""
        elapsed = self.firmware.clock.now
        if elapsed <= 0:
            return 0.0
        return (self.bytes_to_host * 8 / elapsed) / self.bandwidth_bps

    def close(self) -> None:
        self.is_open = False
