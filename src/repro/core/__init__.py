"""PowerSensor3 host library (the paper's primary user-facing contribution).

The public API mirrors the real toolkit's C++/Python interface:

* :class:`~repro.core.powersensor.PowerSensor` — connect to a device, read
  :class:`~repro.core.state.State` snapshots, stream to dump files, place
  markers.
* :func:`~repro.core.state.joules` / :func:`~repro.core.state.watts` /
  :func:`~repro.core.state.seconds` — interval-based energy arithmetic
  between two states.
* :class:`~repro.core.setup.SimulatedSetup` — assemble a complete simulated
  measurement bench (modules, baseboard, firmware, link, host) in one call.

Two sample sources exist: the byte-accurate protocol path and a vectorised
direct path for experiments needing millions of samples (see DESIGN.md).
"""

from repro.core.dump import DumpReader, DumpWriter
from repro.core.health import StreamHealth
from repro.core.powersensor import DEFAULT_RECOVERY, PowerSensor, RecoveryPolicy
from repro.core.setup import SimulatedSetup
from repro.core.fleet import Fleet, FleetBlock, FleetMember, FleetSetup, FleetState
from repro.core.sources import (
    SAMPLE_SOURCES,
    DirectSampleSource,
    ProtocolSampleSource,
    SampleBlock,
    SampleSource,
    SourceSpec,
    convert_codes,
    create_source,
    parse_source_spec,
    register_source,
)
from repro.core.state import State, joules, seconds, watts

__all__ = [
    "PowerSensor",
    "RecoveryPolicy",
    "DEFAULT_RECOVERY",
    "StreamHealth",
    "State",
    "joules",
    "watts",
    "seconds",
    "SimulatedSetup",
    "SampleBlock",
    "SampleSource",
    "SourceSpec",
    "ProtocolSampleSource",
    "DirectSampleSource",
    "SAMPLE_SOURCES",
    "create_source",
    "parse_source_spec",
    "register_source",
    "convert_codes",
    "Fleet",
    "FleetBlock",
    "FleetMember",
    "FleetSetup",
    "FleetState",
    "DumpReader",
    "DumpWriter",
]
