"""Measurement states and interval-based energy arithmetic.

This is the host library's interval mode (paper, Section III-C): request a
:class:`State` before and after a region of interest, then compute the
energy, mean power, and duration between the two snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import MeasurementError

PAIRS = 4


@dataclass(frozen=True)
class State:
    """A snapshot of the accumulated measurement at one instant.

    Attributes:
        time: reconstructed device time in seconds.
        consumed_energy: cumulative joules per sensor pair since connect.
        current: most recent current reading per pair (A).
        voltage: most recent voltage reading per pair (V).
        marker_count: markers seen so far (for time syncing with app code).
    """

    time: float
    consumed_energy: tuple[float, ...]
    current: tuple[float, ...]
    voltage: tuple[float, ...]
    marker_count: int = 0

    @property
    def total_power(self) -> float:
        """Instantaneous total power across pairs at this snapshot."""
        return sum(u * i for u, i in zip(self.voltage, self.current))

    def pair_power(self, pair: int) -> float:
        _check_pair(pair)
        return self.voltage[pair] * self.current[pair]


def _check_pair(pair: int) -> None:
    if not -1 <= pair < PAIRS:
        raise MeasurementError(f"pair {pair} out of range (-1 for total, 0..{PAIRS - 1})")


def seconds(first: State, second: State) -> float:
    """Duration between two states, in seconds."""
    return second.time - first.time


def joules(first: State, second: State, pair: int = -1) -> float:
    """Energy consumed between two states.

    Args:
        first: earlier state.
        second: later state.
        pair: sensor pair index, or -1 for the sum over all pairs.
    """
    _check_pair(pair)
    if pair == -1:
        return sum(
            b - a for a, b in zip(first.consumed_energy, second.consumed_energy)
        )
    return second.consumed_energy[pair] - first.consumed_energy[pair]


def watts(first: State, second: State, pair: int = -1) -> float:
    """Mean power between two states.

    Raises:
        MeasurementError: if the two states are at the same instant.
    """
    duration = seconds(first, second)
    if duration <= 0:
        raise MeasurementError(
            f"states must be strictly ordered in time (dt={duration} s)"
        )
    return joules(first, second, pair) / duration


# PowerSensor3 C++-style aliases for users porting code.
Joules = joules
Watt = watts
