"""The fleet layer: one session driving N named devices.

The paper's baseboard carries up to four sensor modules, and real
deployments measure several rails and several devices at once (the PMT
toolkit composes independent power backends the same way).  A
:class:`Fleet` owns any number of named benches — simulated, remote,
replayed, freely mixed — and drives them through one surface:

* :meth:`Fleet.read_all` performs a clock-aligned synchronized pump —
  every member advances by the same duration of stream time, each
  carrying its own fractional-sample residual, so devices with different
  sample rates stay aligned — and returns the per-device
  :class:`~repro.core.sources.SampleBlock`\\ s plus an aggregated view.
* :meth:`Fleet.read` snapshots every member and aggregates energy/power.
* Markers, configs and health are addressed per device.

Members are described by the same URI device specs
:func:`~repro.core.sources.create_source` understands (``sim://…``,
``remote://…``, ``replay://…``); a spec without a scheme is shorthand
for a simulated bench with those module keys.  Every member gets a
unique name — from the spec's ``device=`` option or generated — and that
name becomes the ``device=`` label on all of the member's stream,
decode, retry and span metrics in the shared registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError, MeasurementError
from repro.common.retry import DEFAULT_RECOVERY, RecoveryPolicy
from repro.core.health import StreamHealth
from repro.core.powersensor import PowerSensor
from repro.core.sources import SampleBlock, SampleSource, parse_source_spec
from repro.core.state import State
from repro.observability import MetricsRegistry, Tracer


def build_bench(
    spec: str,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    name: str | None = None,
    recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
):
    """Build a complete bench (source + PowerSensor) from a device spec.

    ``sim://MODULES?dut=…&seed=…`` assembles a
    :class:`~repro.core.setup.SimulatedSetup`, ``remote://HOST:PORT`` a
    :class:`~repro.server.client.RemoteSetup`, ``replay://PATH`` a
    :class:`~repro.core.replay.ReplaySetup`.  A spec without ``://`` is
    shorthand for ``sim://<spec>``.  ``name`` overrides the spec's
    ``device=`` option as the bench's device label.
    """
    from repro.core.replay import ReplaySetup
    from repro.core.setup import SETUP_CALIBRATION_SAMPLES, SimulatedSetup
    from repro.core.setup import parse_module_keys
    from repro.dut.rails import build_rail
    from repro.transport.shm import DEFAULT_BATCH, DEFAULT_RING_BYTES

    if "://" not in spec:
        spec = f"sim://{spec}"
    parsed = parse_source_spec(spec)
    options = dict(parsed.options)
    device = name if name is not None else parsed.device
    options.pop("device", None)

    if parsed.scheme == "sim":
        dut = str(options.pop("dut", "load:8.0@12.0"))
        seed = int(options.pop("seed", 0))
        setup = SimulatedSetup(
            parse_module_keys(parsed.target or "pcie_slot_12v"),
            seed=seed,
            direct=bool(options.pop("direct", False)),
            faults=options.pop("faults", None),
            fault_seed=options.pop("fault_seed", None),
            calibrate=bool(options.pop("calibrate", True)),
            calibration_samples=int(
                options.pop("calibration_samples", SETUP_CALIBRATION_SAMPLES)
            ),
            vectorized=bool(options.pop("vectorized", True)),
            recovery=recovery,
            registry=registry,
            tracer=tracer,
            device=device,
            producer=options.pop("producer", None),
            producer_batch=int(options.pop("producer_batch", DEFAULT_BATCH)),
            ring_bytes=int(options.pop("ring_bytes", DEFAULT_RING_BYTES)),
        )
        if options:
            raise ConfigurationError(
                f"unknown sim:// options {sorted(options)} in {spec!r}"
            )
        rail = build_rail(dut, seed)
        if rail is not None:
            for channel in setup.baseboard.populated_slots():
                setup.connect(channel.slot, rail)
                break
        return setup
    if parsed.scheme == "remote":
        from repro.server.client import RemoteSetup

        window = int(options.pop("window", 0))
        mode = str(options.pop("mode", "window" if window > 1 else "raw"))
        setup = RemoteSetup(
            parsed.target,
            mode=mode,
            window=max(window, 1),
            recovery=recovery,
            faults=options.pop("faults", None),
            fault_seed=int(options.pop("fault_seed", 0)),
            connect_timeout=float(options.pop("connect_timeout", 5.0)),
            registry=registry,
            tracer=tracer,
            device=device,
        )
        if options:
            raise ConfigurationError(
                f"unknown remote:// options {sorted(options)} in {spec!r}"
            )
        return setup
    if parsed.scheme == "replay":
        setup = ReplaySetup(
            parsed.target,
            speed=float(options.pop("speed", 1.0)),
            loop=bool(options.pop("loop", False)),
            device=device,
            registry=registry,
            tracer=tracer,
        )
        if options:
            raise ConfigurationError(
                f"unknown replay:// options {sorted(options)} in {spec!r}"
            )
        return setup
    raise ConfigurationError(
        f"unknown device scheme {parsed.scheme!r} in {spec!r} "
        "(expected sim://, remote:// or replay://)"
    )


@dataclass
class FleetMember:
    """One named device in a fleet."""

    name: str
    bench: object  # SimulatedSetup | RemoteSetup | ReplaySetup (duck-typed)

    @property
    def source(self) -> SampleSource:
        return self.bench.source

    @property
    def ps(self) -> PowerSensor:
        return self.bench.ps

    @property
    def health(self) -> StreamHealth:
        return self.ps.health


@dataclass
class FleetBlock:
    """Per-device sample blocks from one synchronized read."""

    blocks: dict[str, SampleBlock] = field(default_factory=dict)

    def __getitem__(self, name: str) -> SampleBlock:
        return self.blocks[name]

    def __iter__(self):
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def items(self):
        return self.blocks.items()

    @property
    def total_samples(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def mean_power(self) -> float:
        """Fleet-wide mean power over the read, W (sum of device means)."""
        total = 0.0
        for block in self.blocks.values():
            if len(block):
                total += float(block.total_power().mean())
        return total


@dataclass(frozen=True)
class FleetState:
    """Per-device snapshots plus fleet-wide aggregates."""

    states: dict[str, State]

    def __getitem__(self, name: str) -> State:
        return self.states[name]

    def items(self):
        return self.states.items()

    @property
    def total_energy(self) -> float:
        """Cumulative joules across every device since connect."""
        return sum(sum(s.consumed_energy) for s in self.states.values())

    @property
    def total_power(self) -> float:
        """Instantaneous total power across every device, W."""
        return sum(s.total_power for s in self.states.values())

    @property
    def marker_count(self) -> int:
        return sum(s.marker_count for s in self.states.values())


class Fleet:
    """N named devices driven as one session (a.k.a. the device manager).

    Members share one metrics registry and tracer; each member's metrics
    carry its name as the ``device=`` label, so one exported snapshot
    tells the devices apart.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.recovery = recovery
        self.members: dict[str, FleetMember] = {}
        self._auto_index = 0

    @classmethod
    def from_specs(
        cls,
        specs: list[str],
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    ) -> "Fleet":
        """Build a fleet from URI device specs, one member per spec."""
        fleet = cls(registry=registry, tracer=tracer, recovery=recovery)
        try:
            for spec in specs:
                fleet.add_spec(spec)
        except Exception:
            fleet.close()
            raise
        return fleet

    # -- membership ----------------------------------------------------- #

    def _generate_name(self) -> str:
        while True:
            name = f"dev{self._auto_index}"
            self._auto_index += 1
            if name not in self.members:
                return name

    def add(self, name: str | None, bench) -> FleetMember:
        """Adopt an already-built bench as a named member."""
        if name is None:
            name = getattr(bench, "device", None) or self._generate_name()
        if name in self.members:
            raise ConfigurationError(f"fleet already has a device named {name!r}")
        member = FleetMember(name=name, bench=bench)
        self.members[name] = member
        return member

    def add_spec(self, spec: str, name: str | None = None) -> FleetMember:
        """Build a bench from a device spec and add it to the fleet."""
        if name is None:
            name = parse_source_spec(
                spec if "://" in spec else f"sim://{spec}"
            ).device or self._generate_name()
        bench = build_bench(
            spec,
            registry=self.registry,
            tracer=self.tracer,
            name=name,
            recovery=self.recovery,
        )
        return self.add(name, bench)

    @property
    def names(self) -> list[str]:
        return list(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members.values())

    def __getitem__(self, name: str) -> FleetMember:
        try:
            return self.members[name]
        except KeyError:
            known = ", ".join(self.members) or "(none)"
            raise ConfigurationError(
                f"no device named {name!r} in the fleet (members: {known})"
            ) from None

    def sources(self) -> dict[str, SampleSource]:
        """The members' sample sources, by device name (for psserve)."""
        return {name: member.source for name, member in self.members.items()}

    # -- synchronized streaming ---------------------------------------- #

    def _require_members(self) -> None:
        if not self.members:
            raise MeasurementError("the fleet has no devices")

    def read_all(self, seconds: float, vectorized: bool = True) -> FleetBlock:
        """Advance every device by the same duration of stream time.

        Each member advances by ``seconds`` with its own
        fractional-sample residual carry (exactly
        :meth:`~repro.core.powersensor.PowerSensor.pump_seconds`
        semantics), so repeated short reads stay clock-aligned across
        members even when their sample rates differ.

        The default path gathers every member's block first, then folds
        all of them in one vectorised pass over pre-sized concatenated
        buffers — power, inter-sample gaps and the clock-alignment dts
        are computed once for the whole fleet, with per-member boundary
        corrections at each segment start.  ``vectorized=False`` keeps
        the historical one-member-at-a-time loop; both paths are pinned
        bitwise-identical by the test suite.
        """
        self._require_members()
        if seconds < 0:
            raise MeasurementError(f"cannot read a negative duration ({seconds} s)")
        with self.tracer.span("fleet_read_all", devices=str(len(self.members))):
            if not vectorized:
                return FleetBlock(
                    blocks={
                        name: member.ps.pump_seconds(seconds)
                        for name, member in self.members.items()
                    }
                )
            return self._read_all_vectorized(seconds)

    def _read_all_vectorized(self, seconds: float) -> FleetBlock:
        # Stage 1 — gather: per-member reads (inherently per device; the
        # sources are independent links/sockets), recovery included.
        names = list(self.members)
        sensors = [self.members[name].ps for name in names]
        blocks = [ps._pump_read(ps._seconds_to_samples(seconds)) for ps in sensors]

        # Stage 2 — one fused fold over every sample the fleet returned.
        live = [i for i, block in enumerate(blocks) if len(block)]
        if live:
            lengths = np.array([len(blocks[i]) for i in live])
            bounds = np.cumsum(lengths)
            starts = bounds - lengths
            times = np.concatenate([blocks[i].times for i in live])
            values = np.concatenate([blocks[i].values for i in live])
            power = values[:, 0::2] * values[:, 1::2]
            dts = np.empty(len(times))
            dts[1:] = np.diff(times)
            # Per-member clock alignment at each segment boundary: the
            # first dt continues from that member's previous read (or is
            # one nominal interval on its very first block).
            firsts = np.array(
                [
                    ps.sample_interval
                    if ps._prev_time is None
                    else times[start] - ps._prev_time
                    for ps, start in zip((sensors[i] for i in live), starts)
                ]
            )
            dts[starts] = np.maximum(firsts, 0.0)
            thresholds = np.repeat(
                [1.5 * sensors[i].sample_interval for i in live], lengths
            )
            gap_counts = np.add.reduceat((dts > thresholds).astype(np.intp), starts)
            for k, i in enumerate(live):
                s, e = starts[k], bounds[k]
                sensors[i]._fold_segment(
                    blocks[i], power[s:e], dts[s:e], int(gap_counts[k])
                )
        return FleetBlock(blocks=dict(zip(names, blocks)))

    def read(self) -> FleetState:
        """Snapshot every member (interval mode across the fleet)."""
        self._require_members()
        return FleetState(
            states={name: member.ps.read() for name, member in self.members.items()}
        )

    def mark_all(self, char: str = "M") -> None:
        """Place the same marker character in every member's stream."""
        for member in self.members.values():
            member.ps.mark(char)

    # -- aggregates ----------------------------------------------------- #

    def total_energy(self) -> float:
        """Cumulative joules across the whole fleet since connect."""
        return sum(member.ps.total_energy() for member in self.members.values())

    def health(self) -> dict[str, StreamHealth]:
        """Per-device stream health, by member name."""
        return {name: member.ps.health for name, member in self.members.items()}

    @property
    def degraded(self) -> bool:
        """True if any member's stream needed recovery."""
        return any(member.ps.health.degraded for member in self.members.values())

    def close(self) -> None:
        errors: list[Exception] = []
        for member in self.members.values():
            try:
                member.bench.close()
            except Exception as error:  # close every member regardless
                errors.append(error)
        self.members.clear()
        if errors:
            raise errors[0]

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FleetSetup:
    """A multi-device bench with the attribute surface the CLI tools use.

    Built by :func:`repro.cli.common.build_setup` when more than one
    ``--device`` spec is given.  Single-device operations (``ps``,
    ``source``) resolve to the *first* member, so code written for one
    device keeps working; fleet-aware callers use :attr:`fleet`.
    """

    def __init__(
        self,
        specs: list[str],
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.fleet = Fleet.from_specs(
            specs, registry=self.registry, tracer=self.tracer, recovery=recovery
        )

    @property
    def _first(self) -> FleetMember:
        if not len(self.fleet):
            raise MeasurementError("the fleet has no devices")
        return next(iter(self.fleet))

    @property
    def ps(self) -> PowerSensor:
        return self._first.ps

    @property
    def source(self) -> SampleSource:
        return self._first.source

    @property
    def sample_rate(self) -> float:
        return max(member.source.sample_rate for member in self.fleet)

    def close(self) -> None:
        self.fleet.close()

    def __enter__(self) -> "FleetSetup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
