"""Replay a recorded dump file through the standard SampleSource surface.

A dump written in continuous mode (:class:`~repro.core.dump.DumpWriter`)
becomes a first-class device: :class:`ReplaySampleSource` re-streams its
samples — times, values, markers — through exactly the
:class:`~repro.core.sources.SampleSource` contract, so a recorded run
plugs into :class:`~repro.core.powersensor.PowerSensor`, the fleet
layer, psserve and the CLI tools anywhere a live bench would.

The re-streaming machinery itself lives in :class:`TapeSampleSource`,
shared with the telemetry store's ``store://`` source
(:mod:`repro.store.source`): any finite recorded tape — whatever its
on-disk format — replays with identical timeline, marker, loop and
health semantics.

``speed`` plays the tape faster: the source advertises ``speed`` times
the recorded sample rate and compresses the emitted timeline to match,
so the stream stays self-consistent (inter-sample gaps equal the
advertised interval) and a driver pacing against wall time finishes in
``1/speed`` of the recorded duration.  ``loop=True`` wraps around at the
end of the recording with monotonically continued timestamps; otherwise
the source simply runs dry, which a recovery-driven consumer reports as
a stall — replay benches therefore disable retry recovery.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import ConfigurationError, MeasurementError, ServerError
from repro.core.dump import DumpData, DumpReader
from repro.core.health import StreamHealth
from repro.core.sources import SampleBlock, SampleSource, register_source
from repro.firmware.version import FIRMWARE_VERSION
from repro.hardware.eeprom import SENSORS, SensorConfig
from repro.observability import MetricsRegistry, Tracer


def _configs_from_dump(data: DumpData) -> list[SensorConfig]:
    """Synthesize sensor configs for the recorded pairs.

    The dump stores physical units, so conversion values are identity;
    the configs exist to carry names and the enabled mask through the
    normal config surface.
    """
    configs = [SensorConfig() for _ in range(SENSORS)]
    for pair, name in enumerate(data.pair_names[: SENSORS // 2]):
        configs[2 * pair] = SensorConfig(
            name=f"{name}.I", pair_name=name, vref=0.0, slope=1.0, enabled=True
        )
        configs[2 * pair + 1] = SensorConfig(
            name=f"{name}.V", pair_name=name, vref=0.0, slope=1.0, enabled=True
        )
    return configs


class TapeSampleSource(SampleSource):
    """Re-stream a finite recorded tape through the SampleSource contract.

    Subclasses load their recording (a text dump, a telemetry store,
    ...) and hand the raw arrays to this constructor; everything
    observable — timeline compression for ``speed``, monotonic loop
    continuation, marker mapping, health accounting — is shared, so two
    recordings of the same capture replay bit-identically regardless of
    the format they travelled through.

    ``label`` names the recording in error messages (e.g. ``"dump
    'run.txt'"``); ``kind`` names the source kind (``"replay"``).
    """

    def __init__(
        self,
        *,
        times: np.ndarray,
        values: np.ndarray,
        markers: np.ndarray,
        configs: list[SensorConfig],
        native_rate: float,
        speed: float = 1.0,
        loop: bool = False,
        device: str | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        label: str = "tape",
        kind: str = "tape",
    ) -> None:
        if speed <= 0:
            raise ConfigurationError(f"replay speed must be positive, got {speed}")
        self.speed = float(speed)
        self.loop = bool(loop)
        self.device = device
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.health = StreamHealth(self.registry, device=device)
        self.version = f"Replay of {FIRMWARE_VERSION}"
        self.streaming = False
        self._label = label
        self._kind = kind

        n = times.size
        if n == 0:
            raise MeasurementError(f"{label} holds no samples")
        self._native_rate = float(native_rate)
        self.configs = configs
        self._values = values
        self._enabled = np.array([c.enabled for c in configs])

        # Timeline compression for accelerated replay: times are re-based
        # at the recording start and divided by speed, so the emitted
        # stream's inter-sample spacing equals 1/sample_rate.
        t0 = float(times[0])
        self._times = t0 + (times - t0) / self.speed
        self._duration = float(self._times[-1] - self._times[0]) + 1.0 / (
            self._native_rate * self.speed
        )
        self._markers = np.asarray(markers, dtype=bool)

        self._cursor = 0
        self._pass = 0  # completed loop passes
        self._marker_pending = 0

    @property
    def sample_rate(self) -> float:
        return self._native_rate * self.speed

    @property
    def exhausted(self) -> bool:
        """True once a non-looping replay has emitted its last sample."""
        return not self.loop and self._cursor >= self._times.size

    def start(self) -> None:
        self.streaming = True

    def stop(self) -> None:
        self.streaming = False

    def mark(self) -> None:
        self._marker_pending += 1

    def rewind(self) -> None:
        """Restart the tape from the first sample."""
        self._cursor = 0
        self._pass = 0

    def refresh_configs(self) -> None:  # the recording is the config
        pass

    def write_configs(self, configs: list[SensorConfig]) -> None:
        raise ServerError(
            f"{self._kind} source {self._label} is read-only: configs are part of "
            "the recording"
        )

    def _empty_block(self) -> SampleBlock:
        return SampleBlock(
            times=np.zeros(0),
            values=np.zeros((0, SENSORS)),
            markers=np.zeros(0, dtype=bool),
            enabled=self._enabled.copy(),
        )

    def read_block(self, n_samples: int) -> SampleBlock:
        if not self.streaming or n_samples <= 0:
            return self._empty_block()
        n_total = self._times.size
        times: list[np.ndarray] = []
        values: list[np.ndarray] = []
        markers: list[np.ndarray] = []
        remaining = n_samples
        while remaining > 0:
            if self._cursor >= n_total:
                if not self.loop:
                    break
                self._cursor = 0
                self._pass += 1
            take = min(remaining, n_total - self._cursor)
            lo, hi = self._cursor, self._cursor + take
            # Each loop pass continues the timeline where the previous one
            # ended, so the replayed clock never jumps backwards.
            times.append(self._times[lo:hi] + self._pass * self._duration)
            values.append(self._values[lo:hi])
            markers.append(self._markers[lo:hi].copy())
            self._cursor = hi
            remaining -= take
        if not times:
            return self._empty_block()
        block = SampleBlock(
            times=np.concatenate(times) if len(times) > 1 else times[0].copy(),
            values=np.concatenate(values) if len(values) > 1 else values[0].copy(),
            markers=np.concatenate(markers) if len(markers) > 1 else markers[0],
            enabled=self._enabled.copy(),
        )
        if self._marker_pending:
            flag = min(self._marker_pending, len(block))
            block.markers[:flag] = True
            self._marker_pending -= flag
        self.health.samples_decoded += len(block)
        return block


def map_markers(times: np.ndarray, marks: list[tuple[float, str]]) -> np.ndarray:
    """Map recorded ``(time, char)`` markers to the sample at/after each time."""
    n = times.size
    flags = np.zeros(n, dtype=bool)
    for time, _char in marks:
        idx = int(np.searchsorted(times, time))
        flags[min(idx, n - 1)] = True
    return flags


class ReplaySampleSource(TapeSampleSource):
    """Re-stream a recorded dump through the SampleSource contract."""

    def __init__(
        self,
        path: str | Path,
        speed: float = 1.0,
        loop: bool = False,
        device: str | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.path = str(path)
        self.data = DumpReader.read(path)
        n = self.data.times.size
        if n == 0:
            raise MeasurementError(f"dump {self.path!r} holds no samples")
        n_pairs = len(self.data.pair_names)
        if self.data.sample_rate_hz > 0:
            native_rate = float(self.data.sample_rate_hz)
        elif n >= 2:
            native_rate = 1.0 / float(np.median(np.diff(self.data.times)))
        else:
            raise MeasurementError(
                f"dump {self.path!r} has no sample_rate_hz header and too few "
                "samples to infer a rate"
            )

        # The recorded pairs map to sensors 0..2*n_pairs-1 (even: current,
        # odd: voltage) — the same layout PowerSensor dumped them from.
        values = np.zeros((n, SENSORS))
        values[:, 0 : 2 * n_pairs : 2] = self.data.amps
        values[:, 1 : 2 * n_pairs : 2] = self.data.volts

        super().__init__(
            times=self.data.times,
            values=values,
            markers=map_markers(self.data.times, self.data.markers),
            configs=_configs_from_dump(self.data),
            native_rate=native_rate,
            speed=speed,
            loop=loop,
            device=device,
            registry=registry,
            tracer=tracer,
            label=f"{self.path!r}",
            kind="replay",
        )


class ReplaySetup:
    """A replay bench with the attribute surface the CLI tools use.

    Retry recovery is disabled: a finite tape running dry is the normal
    end of a replay run, not a device stall.
    """

    def __init__(
        self,
        path: str | Path,
        speed: float = 1.0,
        loop: bool = False,
        device: str | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        from repro.core.powersensor import PowerSensor

        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.device = device
        self.source = ReplaySampleSource(
            path,
            speed=speed,
            loop=loop,
            device=device,
            registry=self.registry,
            tracer=self.tracer,
        )
        self.ps = PowerSensor(self.source, recovery=None)

    @property
    def sample_rate(self) -> float:
        return self.source.sample_rate

    def close(self) -> None:
        self.ps.close()

    def __enter__(self) -> "ReplaySetup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


register_source("replay", ReplaySampleSource)
