"""Sample sources: where the host library's 20 kHz stream comes from.

Two implementations with identical semantics:

* :class:`ProtocolSampleSource` — byte-accurate: pulls wire bytes through
  the virtual serial link and decodes them with the stream parser.  This is
  what every protocol/integration test uses.
* :class:`DirectSampleSource` — reads the baseboard's averaged ADC codes
  directly (numpy end to end), for experiments that need 10^6..10^8
  samples.  The sensor physics, ADC quantisation, firmware averaging and
  conversion math are the *same code*; only packet encode/decode is
  skipped.  ``tests/test_sources.py`` pins the two paths to each other.

The protocol source decodes in three tiers, fastest applicable first:

1. **Template fast path** — a clean stream is strictly periodic
   (``timestamp + one packet per enabled sensor``), so one vectorised
   mask-and-compare proves the whole buffer well-formed and the decode
   collapses to reshapes and bitwise ops.
2. **Generic vectorised path** — any other buffer (corruption, odd
   chunking, carried partial samples) goes through
   :class:`~repro.firmware.protocol.BlockDecoder` plus a vectorised
   grouping pass that splits packets into sample sets on timestamp
   packets; only the rare corrupted stretches fall back to per-boundary
   Python dictionaries.
3. **Scalar reference path** — the original per-event implementation,
   kept bit-for-bit intact behind ``vectorized=False``;
   ``tests/test_block_decoder.py`` pins the fast paths to it, including
   under every fault model.
"""

from __future__ import annotations

import abc
import importlib
from dataclasses import dataclass, field
from typing import Callable
from urllib.parse import parse_qsl

import numpy as np

from repro.common.clock import VirtualClock
from repro.common.errors import DeviceError, ProtocolError
from repro.firmware.commands import Command
from repro.firmware.protocol import (
    BlockDecoder,
    SensorReading,
    StreamDecoder,
    TIMESTAMP_SENSOR,
    Timestamp,
    TimestampUnwrapper,
)
from repro.firmware.version import FIRMWARE_VERSION
from repro.core.health import StreamHealth
from repro.observability import MetricsRegistry, Tracer
from repro.hardware.baseboard import Baseboard
from repro.hardware.eeprom import RECORD_SIZE, SENSORS, SensorConfig, VirtualEeprom
from repro.transport.link import VirtualSerialLink
from repro.transport.shm import DEFAULT_BATCH, DEFAULT_RING_BYTES

#: ADC reconstruction constants shared by firmware display, host and direct path.
ADC_VREF = 3.3
ADC_LEVELS = 1024
ADC_LSB = ADC_VREF / ADC_LEVELS


@dataclass
class SampleBlock:
    """A contiguous block of decoded samples in physical units.

    ``values[:, 2*k]`` is pair k's current (A), ``values[:, 2*k + 1]`` its
    voltage (V).  Disabled sensors hold zeros.
    """

    times: np.ndarray  # (n,) reconstructed seconds
    values: np.ndarray  # (n, 8) physical units
    markers: np.ndarray  # (n,) bool
    enabled: np.ndarray  # (8,) bool

    def __len__(self) -> int:
        return int(self.times.size)

    def pair_power(self, pair: int) -> np.ndarray:
        """Instantaneous power of one pair, W, per sample."""
        return self.values[:, 2 * pair] * self.values[:, 2 * pair + 1]

    def total_power(self) -> np.ndarray:
        """Instantaneous total power across enabled pairs, W, per sample."""
        currents = self.values[:, 0::2]
        volts = self.values[:, 1::2]
        return (currents * volts).sum(axis=1)

    def pair_current(self, pair: int) -> np.ndarray:
        return self.values[:, 2 * pair]

    def pair_voltage(self, pair: int) -> np.ndarray:
        return self.values[:, 2 * pair + 1]


def _conversion_arrays(
    configs: list[SensorConfig],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-sensor ``(enabled, vref, slope)`` arrays, padded to 8 sensors.

    Disabled sensors get a unit slope so the vectorised division never
    hits a configured zero slope.
    """
    enabled = np.zeros(SENSORS, dtype=bool)
    vref = np.zeros(SENSORS)
    slope = np.ones(SENSORS)
    for sensor, config in enumerate(configs[:SENSORS]):
        if not config.enabled:
            continue
        enabled[sensor] = True
        vref[sensor] = config.vref
        slope[sensor] = config.slope
    return enabled, vref, slope


def convert_codes(
    codes: np.ndarray, configs: list[SensorConfig]
) -> tuple[np.ndarray, np.ndarray]:
    """Convert averaged 10-bit codes (n, 8) to physical units.

    Returns ``(values, enabled)`` where values is (n, 8) float (amps on
    even columns, volts on odd columns) and enabled the per-sensor mask.
    Disabled sensors convert to zero.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2 or codes.shape[1] != SENSORS:
        raise ValueError(f"codes must be (n, {SENSORS}), got {codes.shape}")
    enabled, vref, slope = _conversion_arrays(configs)
    adc_volts = (codes.astype(float) + 0.5) * ADC_LSB
    values = (adc_volts - vref) / slope
    values[:, ~enabled] = 0.0
    return values, enabled


class SampleSource(abc.ABC):
    """The formal contract every sample source implements.

    :class:`~repro.core.powersensor.PowerSensor`, the serving daemon and
    the fleet layer program against exactly this surface — nothing else.
    What used to be implicit duck typing between the protocol, direct and
    remote sources is now checkable: a new source kind subclasses this,
    implements the abstract methods, and every consumer (CLIs, psserve,
    PMT, :class:`~repro.core.fleet.Fleet`) works unchanged.

    Required attributes (set by concrete ``__init__``):

    * ``device`` — optional device name; when set, every stream/decode
      metric and span this source emits carries a ``device=`` label.
    * ``version`` — firmware/protocol version string.
    * ``streaming`` — True between :meth:`start` and :meth:`stop`.
    * ``configs`` — the eight :class:`SensorConfig` records.
    * ``health`` / ``registry`` / ``tracer`` — observability handles.
    """

    device: str | None = None
    version: str = ""
    streaming: bool = False
    configs: list[SensorConfig]
    health: StreamHealth
    registry: MetricsRegistry
    tracer: Tracer

    @property
    @abc.abstractmethod
    def sample_rate(self) -> float:
        """Nominal output sample rate, Hz."""

    @abc.abstractmethod
    def start(self) -> None:
        """Begin streaming samples."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Stop streaming samples."""

    @abc.abstractmethod
    def mark(self) -> None:
        """Inject a marker into the sample stream."""

    @abc.abstractmethod
    def refresh_configs(self) -> None:
        """Re-read the sensor configuration from the device."""

    @abc.abstractmethod
    def write_configs(self, configs: list[SensorConfig]) -> None:
        """Persist a full set of sensor configs to the device."""

    @abc.abstractmethod
    def read_block(self, n_samples: int) -> SampleBlock:
        """Pull the next ``n_samples`` output samples."""

    def close(self) -> None:
        """Release the source (default: stop streaming if running)."""
        if self.streaming:
            self.stop()

    def _metric_labels(self) -> dict[str, str]:
        """Labels for this source's metrics: ``device=`` when named.

        Unnamed sources keep emitting unlabelled series, so single-device
        benches (and everything reading ``stream_*_total`` by bare name)
        see exactly the pre-fleet metric surface.
        """
        return {"device": self.device} if self.device else {}


class ProtocolSampleSource(SampleSource):
    """Byte-accurate source over the virtual serial link.

    ``vectorized=False`` selects the scalar per-event reference decoder;
    the default batch decoder produces numerically identical
    :class:`SampleBlock` streams and :class:`StreamHealth` counters.
    """

    def __init__(
        self,
        link: VirtualSerialLink,
        vectorized: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        device: str | None = None,
    ) -> None:
        self.link = link
        self.device = device
        self._vectorized = bool(vectorized)
        self._decoder = BlockDecoder() if self._vectorized else StreamDecoder()
        self._unwrapper = TimestampUnwrapper()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.health = StreamHealth(self.registry, device=device)
        labels = self._metric_labels()
        self._bytes_gauge = self.registry.gauge(
            "decode_last_block_bytes",
            help="wire bytes in the last decoded block",
            **labels,
        )
        self._samples_gauge = self.registry.gauge(
            "decode_last_block_samples",
            help="samples in the last decoded block",
            **labels,
        )
        self._throughput_gauge = self.registry.gauge(
            "decode_samples_per_second",
            help="decode throughput of the last non-trivial block",
            **labels,
        )
        self._span_labels = labels
        self.streaming = False
        self.configs: list[SensorConfig] = []
        self.version = self._read_version()
        self.refresh_configs()
        self._pending_sample: dict[int, int] = {}
        self._pending_marker = False
        self._have_timestamp = False
        self._current_time = 0.0

    @property
    def sample_rate(self) -> float:
        return self.link.firmware.baseboard.timing.output_rate_hz

    def _read_version(self) -> str:
        self.link.write(Command.VERSION.value)
        raw = self.link.read()
        if not raw.endswith(b"\x00"):
            raise ProtocolError("version response not NUL-terminated")
        version = raw[:-1].decode("ascii")
        if version.split()[-1].split(".")[0] != FIRMWARE_VERSION.split()[-1].split(".")[0]:
            raise DeviceError(f"incompatible firmware version {version!r}")
        return version

    def refresh_configs(self) -> None:
        self.link.write(Command.READ_CONFIG.value)
        raw = self.link.read(RECORD_SIZE * SENSORS)
        self.configs = VirtualEeprom.unpack(raw).configs
        self._rebuild_caches()

    def write_configs(self, configs: list[SensorConfig]) -> None:
        """Write a full set of sensor configs to the device EEPROM."""
        image = VirtualEeprom(configs=list(configs)).pack()
        self.link.write(Command.WRITE_CONFIG.value + image)
        self.refresh_configs()

    def _rebuild_caches(self) -> None:
        """Precompute per-sensor conversion arrays and the wire template.

        Recomputed whenever the configs change (connect, config write), so
        the per-block hot path never loops over config objects.
        """
        self._enabled_mask, self._vref, self._slope = _conversion_arrays(self.configs)
        self._enabled_idx = np.flatnonzero(self._enabled_mask)
        self._n_enabled = int(self._enabled_idx.size)
        # A clean sample set is [timestamp, enabled sensors in index order];
        # one mask-and-compare against these templates proves a whole
        # buffer well-formed (see _decode_template).  Sensor 0's marker bit
        # is left free; every other data packet must have it clear (set
        # would decode differently: timestamp for sensor 7, cleared-marker
        # data for 1..6 — both handled by the generic path).
        n_fields = 1 + self._n_enabled
        self._tmpl_and = np.full(n_fields, 0xF8, dtype=np.uint8)
        self._tmpl_val = np.empty(n_fields, dtype=np.uint8)
        self._tmpl_val[0] = 0x80 | (TIMESTAMP_SENSOR << 4) | 0x08
        for field, sensor in enumerate(self._enabled_idx, start=1):
            self._tmpl_val[field] = 0x80 | (int(sensor) << 4)
            if sensor == 0:
                self._tmpl_and[field] = 0xF0  # marker bit free on sensor 0
        self._bytes_per_sample = 2 * n_fields
        self._sensor0_enabled = bool(self._n_enabled and self._enabled_idx[0] == 0)

    def start(self) -> None:
        self.link.write(Command.START_STREAMING.value)
        self.streaming = True

    def stop(self) -> None:
        self.link.write(Command.STOP_STREAMING.value)
        self.streaming = False

    def mark(self) -> None:
        self.link.write(Command.MARKER.value)

    def read_block(self, n_samples: int) -> SampleBlock:
        """Pull and decode ``n_samples`` output samples."""
        data = self.link.pump_samples(n_samples)
        return self._decode(data, n_samples)

    def read_block_raw(self, n_samples: int) -> tuple[SampleBlock, bytes]:
        """Pull ``n_samples``, returning the decoded block *and* the wire bytes.

        The serving layer relays the raw bytes to subscribers verbatim
        (so remote decode is byte-for-byte the local decode) while using
        the decoded block for server-side windowing — one pump, no
        double decode.
        """
        data = self.link.pump_samples(n_samples)
        block = self._decode(data, n_samples)
        # A producer-backed link may hand back a ring view (valid only
        # until the next pump); the serving layer keeps raw bytes around
        # for framing, so pin them down here.
        if not isinstance(data, bytes):
            data = bytes(data)
        return block, data

    # ------------------------------------------------------------------ #
    # Decoding                                                           #
    # ------------------------------------------------------------------ #

    def _decode(self, data: bytes, n_expected: int) -> SampleBlock:
        if not self._vectorized:
            with self.tracer.span("decode", tier="scalar", **self._span_labels) as span:
                block = self._decode_scalar(data, n_expected)
            self._observe_decode(len(data), len(block), span.duration)
            return block
        self.health.bytes_read += len(data)
        with self.tracer.span("decode", tier="template", **self._span_labels) as span:
            block = self._decode_template(data)
            if block is None:
                span.relabel(tier="block")
                block = self._decode_generic(data)
        self._observe_decode(len(data), len(block), span.duration)
        return block

    def _observe_decode(
        self, n_bytes: int, n_samples: int, duration: float | None
    ) -> None:
        """Update the throughput gauges after one decode call."""
        self._bytes_gauge.set(n_bytes)
        self._samples_gauge.set(n_samples)
        if duration and n_samples:
            self._throughput_gauge.set(n_samples / duration)

    def _empty_block(self) -> SampleBlock:
        return SampleBlock(
            times=np.zeros(0),
            values=np.zeros((0, SENSORS)),
            markers=np.zeros(0, dtype=bool),
            enabled=self._enabled_mask.copy(),
        )

    def _convert(self, codes: np.ndarray) -> np.ndarray:
        """Codes (n, 8) to physical units with the cached per-sensor arrays."""
        adc_volts = (codes.astype(float) + 0.5) * ADC_LSB
        values = (adc_volts - self._vref) / self._slope
        values[:, ~self._enabled_mask] = 0.0
        return values

    def _decode_template(self, data: bytes) -> SampleBlock | None:
        """Fast path: decode a buffer that is a clean run of sample sets.

        Returns ``None`` (falling back to the generic path) unless the
        buffer is byte-for-byte a whole number of well-formed sample sets
        and no partial-sample state is carried in — which one vectorised
        template comparison verifies.
        """
        if (
            self._decoder._pending_first is not None
            or self._pending_sample
            or self._pending_marker
            or self._n_enabled == 0
        ):
            return None
        size = len(data)
        if size == 0 or size % self._bytes_per_sample:
            return None
        arr = np.frombuffer(data, dtype=np.uint8)
        mat = arr.reshape(-1, 1 + self._n_enabled, 2)
        firsts = mat[:, :, 0]
        seconds = mat[:, :, 1]
        if ((firsts & self._tmpl_and) != self._tmpl_val).any() or (seconds & 0x80).any():
            return None

        n_samples = mat.shape[0]
        micros = ((firsts[:, 0] & 0x07).astype(np.int64) << 7) | seconds[:, 0]
        times = self._unwrapper.update_block(micros)
        codes = np.zeros((n_samples, SENSORS), dtype=np.int64)
        codes[:, self._enabled_idx] = ((firsts[:, 1:] & 0x07).astype(np.int64) << 7) | seconds[
            :, 1:
        ]
        if self._sensor0_enabled:
            markers = (firsts[:, 1] & 0x08) != 0
        else:
            markers = np.zeros(n_samples, dtype=bool)

        packets = n_samples * (1 + self._n_enabled)
        self._decoder.packet_count += packets
        self.health.packets_decoded += packets
        self.health.samples_decoded += n_samples
        self._have_timestamp = True
        self._current_time = float(times[-1])
        return SampleBlock(
            times=times,
            values=self._convert(codes),
            markers=markers,
            enabled=self._enabled_mask.copy(),
        )

    def _decode_generic(self, data: bytes) -> SampleBlock:
        """Vectorised decode of an arbitrary (possibly corrupted) buffer."""
        resyncs_before = self._decoder.resync_count
        block = self._decoder.decode(data)
        self.health.packets_decoded += len(block)
        self.health.packets_dropped += self._decoder.resync_count - resyncs_before
        times, codes, markers = self._group_samples(block)
        self.health.samples_decoded += times.size
        if not times.size:
            return self._empty_block()
        return SampleBlock(
            times=times,
            values=self._convert(codes),
            markers=markers,
            enabled=self._enabled_mask.copy(),
        )

    def _group_samples(
        self, block
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group decoded packets into complete sample sets.

        Mirrors the scalar event loop exactly: a sample set is closed at
        each timestamp packet (and at end of buffer) once every enabled
        sensor has reported since the previous close; incomplete sets are
        carried across calls.  Boundaries between complete sets are
        resolved vectorised; only boundaries involved in carried state
        (rare — corruption or chunk splits) take a dict-based slow path.
        """
        is_ts = block.is_timestamp
        idx_ts = np.flatnonzero(is_ts)
        m = int(idx_ts.size)
        if m:
            ts_times = self._unwrapper.update_block(block.values[idx_ts])
        else:
            ts_times = np.zeros(0)

        r_idx = np.flatnonzero(~is_ts)
        r_sensor = block.sensors[r_idx].astype(np.int64)
        r_value = block.values[r_idx]
        r_marker = block.markers[r_idx]
        # Segment s holds the readings between timestamp s-1 and timestamp
        # s; segment 0 is pre-first-timestamp, segment m the tail.
        seg = np.searchsorted(idx_ts, r_idx)
        if not self._have_timestamp:
            # Readings before the first-ever timestamp have no time anchor
            # and are discarded (scalar behaviour).
            keep = seg >= 1
            if not keep.all():
                r_sensor, r_value, r_marker, seg = (
                    r_sensor[keep],
                    r_value[keep],
                    r_marker[keep],
                    seg[keep],
                )

        n_enabled = self._n_enabled
        # seg is non-decreasing (stream order), so slice bounds come from
        # one searchsorted; boundary j closes segment j.
        seg_starts = np.searchsorted(seg, np.arange(m + 2))
        if r_sensor.size:
            uniq = np.unique(seg * SENSORS + r_sensor)
            seg_distinct = np.bincount(uniq // SENSORS, minlength=m + 1)
        else:
            seg_distinct = np.zeros(m + 1, dtype=np.int64)

        # Boundary j (at timestamp j; boundary m is end-of-buffer) surely
        # succeeds if its own segment alone covers every enabled sensor —
        # accumulated carry can only add sensors.  Everything else is
        # resolved in the sequential walk below.
        have_ts0 = self._have_timestamp
        opt = seg_distinct >= n_enabled
        opt[0] &= have_ts0
        boundary_time = np.empty(m + 1)
        boundary_time[0] = self._current_time
        if m:
            boundary_time[1:] = ts_times

        success = opt.copy()
        simple = np.ones(m + 1, dtype=bool)
        merged_rows: list[tuple[int, dict[int, int], bool]] = []
        pending = dict(self._pending_sample)
        pending_marker = self._pending_marker

        need = np.flatnonzero(~opt).tolist()
        ptr = 0
        if pending or pending_marker:
            cur = 0
        elif need:
            cur, ptr = need[0], 1
        else:
            cur = -1
        while 0 <= cur <= m:
            simple[cur] = False
            lo, hi = int(seg_starts[cur]), int(seg_starts[cur + 1])
            for i in range(lo, hi):
                pending[int(r_sensor[i])] = int(r_value[i])
            if hi > lo and r_marker[lo:hi].any():
                pending_marker = True
            ok = (have_ts0 or cur >= 1) and len(pending) >= n_enabled
            success[cur] = ok
            if ok:
                merged_rows.append((cur, pending, pending_marker))
                pending = {}
                pending_marker = False
            elif pending or pending_marker:
                cur += 1  # the carry flows into the next boundary
                continue
            # Jump to the next boundary whose outcome is still unknown.
            nxt = -1
            while ptr < len(need):
                cand = need[ptr]
                ptr += 1
                if cand > cur:
                    nxt = cand
                    break
            cur = nxt

        self._pending_sample = pending
        self._pending_marker = pending_marker
        if m:
            self._current_time = float(ts_times[-1])
            self._have_timestamp = True

        succ_idx = np.flatnonzero(success)
        n_out = int(succ_idx.size)
        times = boundary_time[succ_idx]
        codes = np.zeros((n_out, SENSORS), dtype=np.int64)
        markers = np.zeros(n_out, dtype=bool)
        if n_out:
            out_row = np.full(m + 1, -1, dtype=np.int64)
            out_row[succ_idx] = np.arange(n_out)
            take = simple[seg] & success[seg]
            if take.any():
                rows = out_row[seg[take]]
                # Fancy assignment keeps the last write per (row, sensor),
                # matching the dict's duplicate-overwrite semantics.
                codes[rows, r_sensor[take]] = r_value[take]
                marked = r_marker[take]
                if marked.any():
                    markers[rows[marked]] = True
            for j, row_dict, marker_flag in merged_rows:
                if not success[j]:
                    continue
                row = out_row[j]
                for sensor, value in row_dict.items():
                    codes[row, sensor] = value
                markers[row] = marker_flag
        return times, codes, markers

    # ------------------------------------------------------------------ #
    # Scalar reference path                                              #
    # ------------------------------------------------------------------ #

    def _decode_scalar(self, data: bytes, n_expected: int) -> SampleBlock:
        """Per-event reference decoder (``vectorized=False``).

        This is the original implementation, kept as the behavioural
        reference the vectorised paths are pinned against.
        """
        times: list[float] = []
        rows: list[np.ndarray] = []
        markers: list[bool] = []
        enabled_sensors = [i for i, c in enumerate(self.configs) if c.enabled]
        n_enabled = len(enabled_sensors)
        self.health.bytes_read += len(data)
        resyncs_before = self._decoder.resync_count

        # Accumulate the per-packet count locally; one counter update per
        # call keeps the scalar reference path's cost unchanged.
        packets_decoded = 0
        for event in self._decoder.feed(data):
            packets_decoded += 1
            if isinstance(event, Timestamp):
                self._flush_sample(times, rows, markers, n_enabled)
                self._current_time = self._unwrapper.update(event.micros)
                self._have_timestamp = True
            elif isinstance(event, SensorReading):
                if not self._have_timestamp:
                    continue  # wait for the first timestamp to anchor time
                self._pending_sample[event.sensor] = event.value
                self._pending_marker = self._pending_marker or event.marker
        self._flush_sample(times, rows, markers, n_enabled)
        self.health.packets_decoded += packets_decoded
        self.health.packets_dropped += self._decoder.resync_count - resyncs_before
        self.health.samples_decoded += len(times)

        if not times:
            return self._empty_block()
        codes = np.zeros((len(rows), SENSORS), dtype=np.int64)
        for i, row in enumerate(rows):
            codes[i] = row
        return SampleBlock(
            times=np.asarray(times),
            values=self._convert(codes),
            markers=np.asarray(markers, dtype=bool),
            enabled=self._enabled_mask.copy(),
        )

    def _flush_sample(self, times, rows, markers, n_enabled: int) -> None:
        """Close out the sample set currently being accumulated, if complete."""
        if not self._have_timestamp or len(self._pending_sample) < n_enabled:
            return
        row = np.zeros(SENSORS, dtype=np.int64)
        for sensor, value in self._pending_sample.items():
            row[sensor] = value
        times.append(self._current_time)
        rows.append(row)
        markers.append(self._pending_marker)
        self._pending_sample = {}
        self._pending_marker = False


class DirectSampleSource(SampleSource):
    """Vectorised source reading the baseboard directly (no byte encoding).

    With ``producer=`` set, sensor physics runs in a batching producer
    (thread, forked process, or inline — see :mod:`repro.transport.shm`)
    that pushes raw ADC code blocks through a shared SPSC ring;
    :meth:`read_block` then only reassembles codes into one pre-sized
    array and converts.  Opt-in: batched production consumes the noise
    RNG at batch granularity, so the stream is pinned byte-identical
    across producer modes at equal ``producer_batch``, not against the
    unbatched default path.
    """

    def __init__(
        self,
        baseboard: Baseboard,
        eeprom: VirtualEeprom,
        clock: VirtualClock | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        device: str | None = None,
        producer: str | None = None,
        producer_batch: int = DEFAULT_BATCH,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        self.baseboard = baseboard
        self.eeprom = eeprom
        self.device = device
        self.clock = clock or VirtualClock()
        self.clock.configure_ticks(baseboard.timing.output_interval_s)
        self.version = FIRMWARE_VERSION
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.health = StreamHealth(self.registry, device=device)
        labels = self._metric_labels()
        self._samples_gauge = self.registry.gauge(
            "decode_last_block_samples",
            help="samples in the last decoded block",
            **labels,
        )
        self._throughput_gauge = self.registry.gauge(
            "decode_samples_per_second",
            help="decode throughput of the last non-trivial block",
            **labels,
        )
        self._marker_pending = 0
        self.streaming = False
        self._producer_mode = producer
        self._producer_batch = int(producer_batch)
        self._ring_bytes = int(ring_bytes)
        self._code_producer = None
        self._code_carry: np.ndarray | None = None

    @property
    def configs(self) -> list[SensorConfig]:
        return self.eeprom.configs

    @property
    def sample_rate(self) -> float:
        return self.baseboard.timing.output_rate_hz

    def refresh_configs(self) -> None:  # config lives in-process; nothing to do
        pass

    def write_configs(self, configs: list[SensorConfig]) -> None:
        if len(configs) != SENSORS:
            raise ValueError(f"expected {SENSORS} configs")
        self.eeprom.configs = list(configs)

    def start(self) -> None:
        self.streaming = True

    def _launch_producer(self):
        """Launch the code producer on the first read, not at start().

        Deferred for the same reason as :class:`ProducerLink`: benches
        keep wiring themselves up (DUT rail connection) after streaming
        starts, and a worker launched at start() would snapshot the
        half-built baseboard.
        """
        from repro.transport.shm import CodeRingProducer

        self._code_carry = None
        self._code_producer = CodeRingProducer(
            self.baseboard,
            self.clock.now,
            producer=self._producer_mode,
            batch=self._producer_batch,
            ring_bytes=self._ring_bytes,
        )
        return self._code_producer

    def stop(self) -> None:
        if self._code_producer is not None:
            self._code_producer.close()
            self._code_producer = None
            self._code_carry = None
        self.streaming = False

    def mark(self) -> None:
        self._marker_pending += 1

    def _gather_codes(self, n_samples: int) -> np.ndarray:
        """Fill a pre-sized code buffer from the producer ring.

        Consumes whole ring records (plus any carried remainder) until
        ``n_samples`` rows are filled or the producer ends; a dead or
        stopped producer simply yields a short (possibly empty) result,
        which the recovery machinery upstream treats as a stall.
        """
        producer = self._code_producer
        if producer is None:
            producer = self._launch_producer()
        out = np.empty((n_samples, SENSORS), dtype=np.int64)
        filled = 0
        carry = self._code_carry
        self._code_carry = None
        if carry is not None and len(carry):
            take = min(len(carry), n_samples)
            out[:take] = carry[:take]
            if take < len(carry):
                self._code_carry = carry[take:]
            filled = take
        while filled < n_samples:
            codes = producer.next_codes()
            if codes is None:
                break
            take = min(len(codes), n_samples - filled)
            out[filled : filled + take] = codes[:take]
            if take < len(codes):
                self._code_carry = codes[take:]
            filled += take
        return out[:filled]

    def read_block(self, n_samples: int) -> SampleBlock:
        timing = self.baseboard.timing
        start = self.clock.now
        if not self.streaming:
            self.clock.tick(n_samples)
            return SampleBlock(
                times=np.zeros(0),
                values=np.zeros((0, SENSORS)),
                markers=np.zeros(0, dtype=bool),
                enabled=np.array([c.enabled for c in self.configs]),
            )
        if self._producer_mode:
            codes = self._gather_codes(n_samples)
            n_samples = len(codes)  # short on producer stop/crash
        else:
            codes = self.baseboard.averaged_codes(start, n_samples)
        self.clock.tick(n_samples)
        self.health.samples_decoded += n_samples
        values, enabled = convert_codes(codes, self.configs)
        # Match the firmware timestamp convention (after 3 of 6 scans),
        # including its microsecond rounding.
        times = start + np.arange(n_samples) * timing.output_interval_s
        times = np.round((times + 3 * timing.scan_time_s) * 1e6) * 1e-6
        markers = np.zeros(n_samples, dtype=bool)
        n_mark = min(self._marker_pending, n_samples)
        if n_mark:
            markers[:n_mark] = True
            self._marker_pending -= n_mark
        return SampleBlock(times=times, values=values, markers=markers, enabled=enabled)


# --------------------------------------------------------------------- #
# Source registry and URI device specs                                  #
# --------------------------------------------------------------------- #

#: Named sample-source factories.  ``protocol`` and ``direct`` register
#: here; other packages add their kinds on import (see
#: :data:`_LAZY_SOURCES` — :func:`create_source` imports them lazily, so
#: ``create_source("remote", "host:port")`` works without the caller
#: touching the server package).
SAMPLE_SOURCES: dict[str, Callable[..., object]] = {}

#: Source kinds registered by importing a module on first use.
_LAZY_SOURCES: dict[str, str] = {
    "remote": "repro.server.client",
    "replay": "repro.core.replay",
    "sim": "repro.core.setup",
    "store": "repro.store.source",
}

#: Typed coercion for URI query options (everything else stays a string).
_SPEC_INT_KEYS = frozenset(
    {"seed", "fault_seed", "window", "calibration_samples", "producer_batch", "ring_bytes"}
)
_SPEC_FLOAT_KEYS = frozenset({"speed", "connect_timeout", "t0", "t1"})
_SPEC_BOOL_KEYS = frozenset({"direct", "loop", "vectorized", "calibrate"})
_SPEC_TRUE = frozenset({"1", "true", "yes", "on", ""})
_SPEC_FALSE = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class SourceSpec:
    """A parsed ``scheme://target?key=value`` device spec."""

    scheme: str
    target: str
    options: dict[str, object] = field(default_factory=dict)

    @property
    def device(self) -> str | None:
        """The device name carried in the spec's ``device=`` option."""
        name = self.options.get("device")
        return str(name) if name else None


def _coerce_option(key: str, value: str) -> object:
    if key in _SPEC_INT_KEYS:
        return int(value)
    if key in _SPEC_FLOAT_KEYS:
        return float(value)
    if key in _SPEC_BOOL_KEYS:
        lowered = value.strip().lower()
        if lowered in _SPEC_TRUE:
            return True
        if lowered in _SPEC_FALSE:
            return False
        raise ValueError(f"option {key}={value!r} is not a boolean")
    return value


def parse_source_spec(spec: str) -> SourceSpec:
    """Parse a URI-style device spec into scheme, target and options.

    ``sim://pcie_slot_12v?seed=3&dut=load:8@12`` addresses a simulated
    bench, ``remote://host:port?device=gpu`` a psserve subscription,
    ``replay://run.dump?speed=4`` a recorded dump.  The target may itself
    contain colons (``remote://unix:/tmp/ps.sock``); everything after the
    first ``?`` is a query string with typed coercion for well-known keys
    (seeds and windows to int, speed to float, flags to bool).
    """
    scheme, sep, rest = spec.partition("://")
    if not sep:
        raise ValueError(f"not a URI device spec (no '://'): {spec!r}")
    if not scheme:
        raise ValueError(f"device spec {spec!r} has an empty scheme")
    target, _, query = rest.partition("?")
    options: dict[str, object] = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        options[key] = _coerce_option(key, value)
    return SourceSpec(scheme=scheme, target=target, options=options)


def register_source(name: str, factory: Callable[..., object]) -> None:
    """Register a named sample-source factory (idempotent per factory)."""
    existing = SAMPLE_SOURCES.get(name)
    if existing is not None and existing is not factory:
        raise ValueError(f"sample source {name!r} is already registered")
    SAMPLE_SOURCES[name] = factory


def _resolve_factory(name: str) -> Callable[..., object]:
    if name not in SAMPLE_SOURCES and name in _LAZY_SOURCES:
        importlib.import_module(_LAZY_SOURCES[name])  # registers on import
    try:
        return SAMPLE_SOURCES[name]
    except KeyError:
        known = ", ".join(sorted(set(SAMPLE_SOURCES) | set(_LAZY_SOURCES)))
        raise ValueError(f"unknown sample source {name!r}; known: {known}") from None


def create_source(name: str, *args, **kwargs):
    """Instantiate a sample source by registered name or URI spec.

    Two calling conventions:

    * ``create_source("remote", "host:port", window=8)`` — bare registered
      name plus explicit arguments (the original surface, unchanged).
    * ``create_source("remote://host:port?window=8")`` — a URI device
      spec; the scheme picks the factory, the target becomes the first
      positional argument and the query options become keyword arguments.
      Explicit ``**kwargs`` override spec options, so programmatic callers
      can fix e.g. ``registry=`` while users vary the spec string.
    """
    if "://" in name:
        spec = parse_source_spec(name)
        factory = _resolve_factory(spec.scheme)
        merged = dict(spec.options)
        merged.update(kwargs)
        if spec.target:
            return factory(spec.target, *args, **merged)
        return factory(*args, **merged)
    return _resolve_factory(name)(*args, **kwargs)


register_source("protocol", ProtocolSampleSource)
register_source("direct", DirectSampleSource)
