"""Sample sources: where the host library's 20 kHz stream comes from.

Two implementations with identical semantics:

* :class:`ProtocolSampleSource` — byte-accurate: pulls wire bytes through
  the virtual serial link and decodes them with the stream parser.  This is
  what every protocol/integration test uses.
* :class:`DirectSampleSource` — reads the baseboard's averaged ADC codes
  directly (numpy end to end), for experiments that need 10^6..10^8
  samples.  The sensor physics, ADC quantisation, firmware averaging and
  conversion math are the *same code*; only packet encode/decode is
  skipped.  ``tests/test_sources.py`` pins the two paths to each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.clock import VirtualClock
from repro.common.errors import DeviceError, ProtocolError
from repro.firmware.commands import Command
from repro.firmware.protocol import (
    SensorReading,
    StreamDecoder,
    Timestamp,
    TimestampUnwrapper,
)
from repro.firmware.version import FIRMWARE_VERSION
from repro.core.health import StreamHealth
from repro.hardware.baseboard import Baseboard
from repro.hardware.eeprom import RECORD_SIZE, SENSORS, SensorConfig, VirtualEeprom
from repro.transport.link import VirtualSerialLink

#: ADC reconstruction constants shared by firmware display, host and direct path.
ADC_VREF = 3.3
ADC_LEVELS = 1024
ADC_LSB = ADC_VREF / ADC_LEVELS


@dataclass
class SampleBlock:
    """A contiguous block of decoded samples in physical units.

    ``values[:, 2*k]`` is pair k's current (A), ``values[:, 2*k + 1]`` its
    voltage (V).  Disabled sensors hold zeros.
    """

    times: np.ndarray  # (n,) reconstructed seconds
    values: np.ndarray  # (n, 8) physical units
    markers: np.ndarray  # (n,) bool
    enabled: np.ndarray  # (8,) bool

    def __len__(self) -> int:
        return int(self.times.size)

    def pair_power(self, pair: int) -> np.ndarray:
        """Instantaneous power of one pair, W, per sample."""
        return self.values[:, 2 * pair] * self.values[:, 2 * pair + 1]

    def total_power(self) -> np.ndarray:
        """Instantaneous total power across enabled pairs, W, per sample."""
        currents = self.values[:, 0::2]
        volts = self.values[:, 1::2]
        return (currents * volts).sum(axis=1)

    def pair_current(self, pair: int) -> np.ndarray:
        return self.values[:, 2 * pair]

    def pair_voltage(self, pair: int) -> np.ndarray:
        return self.values[:, 2 * pair + 1]


def convert_codes(
    codes: np.ndarray, configs: list[SensorConfig]
) -> tuple[np.ndarray, np.ndarray]:
    """Convert averaged 10-bit codes (n, 8) to physical units.

    Returns ``(values, enabled)`` where values is (n, 8) float (amps on
    even columns, volts on odd columns) and enabled the per-sensor mask.
    Disabled sensors convert to zero.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2 or codes.shape[1] != SENSORS:
        raise ValueError(f"codes must be (n, {SENSORS}), got {codes.shape}")
    values = np.zeros(codes.shape, dtype=float)
    enabled = np.zeros(SENSORS, dtype=bool)
    adc_volts = (codes.astype(float) + 0.5) * ADC_LSB
    for sensor, config in enumerate(configs):
        if not config.enabled:
            continue
        enabled[sensor] = True
        values[:, sensor] = (adc_volts[:, sensor] - config.vref) / config.slope
    return values, enabled


class ProtocolSampleSource:
    """Byte-accurate source over the virtual serial link."""

    def __init__(self, link: VirtualSerialLink) -> None:
        self.link = link
        self._decoder = StreamDecoder()
        self._unwrapper = TimestampUnwrapper()
        self.health = StreamHealth()
        self.streaming = False
        self.configs: list[SensorConfig] = []
        self.version = self._read_version()
        self.refresh_configs()
        self._pending_sample: dict[int, int] = {}
        self._pending_marker = False
        self._have_timestamp = False
        self._current_time = 0.0

    @property
    def sample_rate(self) -> float:
        return self.link.firmware.baseboard.timing.output_rate_hz

    def _read_version(self) -> str:
        self.link.write(Command.VERSION.value)
        raw = self.link.read()
        if not raw.endswith(b"\x00"):
            raise ProtocolError("version response not NUL-terminated")
        version = raw[:-1].decode("ascii")
        if version.split()[-1].split(".")[0] != FIRMWARE_VERSION.split()[-1].split(".")[0]:
            raise DeviceError(f"incompatible firmware version {version!r}")
        return version

    def refresh_configs(self) -> None:
        self.link.write(Command.READ_CONFIG.value)
        raw = self.link.read(RECORD_SIZE * SENSORS)
        self.configs = VirtualEeprom.unpack(raw).configs

    def write_configs(self, configs: list[SensorConfig]) -> None:
        """Write a full set of sensor configs to the device EEPROM."""
        image = VirtualEeprom(configs=list(configs)).pack()
        self.link.write(Command.WRITE_CONFIG.value + image)
        self.refresh_configs()

    def start(self) -> None:
        self.link.write(Command.START_STREAMING.value)
        self.streaming = True

    def stop(self) -> None:
        self.link.write(Command.STOP_STREAMING.value)
        self.streaming = False

    def mark(self) -> None:
        self.link.write(Command.MARKER.value)

    def read_block(self, n_samples: int) -> SampleBlock:
        """Pull and decode ``n_samples`` output samples."""
        data = self.link.pump_samples(n_samples)
        return self._decode(data, n_samples)

    def _decode(self, data: bytes, n_expected: int) -> SampleBlock:
        times: list[float] = []
        rows: list[np.ndarray] = []
        markers: list[bool] = []
        enabled_sensors = [i for i, c in enumerate(self.configs) if c.enabled]
        n_enabled = len(enabled_sensors)
        self.health.bytes_read += len(data)
        resyncs_before = self._decoder.resync_count

        for event in self._decoder.feed(data):
            self.health.packets_decoded += 1
            if isinstance(event, Timestamp):
                self._flush_sample(times, rows, markers, n_enabled)
                self._current_time = self._unwrapper.update(event.micros)
                self._have_timestamp = True
            elif isinstance(event, SensorReading):
                if not self._have_timestamp:
                    continue  # wait for the first timestamp to anchor time
                self._pending_sample[event.sensor] = event.value
                self._pending_marker = self._pending_marker or event.marker
        self._flush_sample(times, rows, markers, n_enabled)
        self.health.packets_dropped += self._decoder.resync_count - resyncs_before
        self.health.samples_decoded += len(times)

        if not times:
            return SampleBlock(
                times=np.zeros(0),
                values=np.zeros((0, SENSORS)),
                markers=np.zeros(0, dtype=bool),
                enabled=np.array([c.enabled for c in self.configs]),
            )
        codes = np.zeros((len(rows), SENSORS), dtype=np.int64)
        for i, row in enumerate(rows):
            codes[i] = row
        values, enabled = convert_codes(codes, self.configs)
        return SampleBlock(
            times=np.asarray(times),
            values=values,
            markers=np.asarray(markers, dtype=bool),
            enabled=enabled,
        )

    def _flush_sample(self, times, rows, markers, n_enabled: int) -> None:
        """Close out the sample set currently being accumulated, if complete."""
        if not self._have_timestamp or len(self._pending_sample) < n_enabled:
            return
        row = np.zeros(SENSORS, dtype=np.int64)
        for sensor, value in self._pending_sample.items():
            row[sensor] = value
        times.append(self._current_time)
        rows.append(row)
        markers.append(self._pending_marker)
        self._pending_sample = {}
        self._pending_marker = False


class DirectSampleSource:
    """Vectorised source reading the baseboard directly (no byte encoding)."""

    def __init__(
        self,
        baseboard: Baseboard,
        eeprom: VirtualEeprom,
        clock: VirtualClock | None = None,
    ) -> None:
        self.baseboard = baseboard
        self.eeprom = eeprom
        self.clock = clock or VirtualClock()
        self.clock.configure_ticks(baseboard.timing.output_interval_s)
        self.version = FIRMWARE_VERSION
        self.health = StreamHealth()
        self._marker_pending = 0
        self.streaming = False

    @property
    def configs(self) -> list[SensorConfig]:
        return self.eeprom.configs

    @property
    def sample_rate(self) -> float:
        return self.baseboard.timing.output_rate_hz

    def refresh_configs(self) -> None:  # config lives in-process; nothing to do
        pass

    def write_configs(self, configs: list[SensorConfig]) -> None:
        if len(configs) != SENSORS:
            raise ValueError(f"expected {SENSORS} configs")
        self.eeprom.configs = list(configs)

    def start(self) -> None:
        self.streaming = True

    def stop(self) -> None:
        self.streaming = False

    def mark(self) -> None:
        self._marker_pending += 1

    def read_block(self, n_samples: int) -> SampleBlock:
        timing = self.baseboard.timing
        start = self.clock.now
        if not self.streaming:
            self.clock.tick(n_samples)
            return SampleBlock(
                times=np.zeros(0),
                values=np.zeros((0, SENSORS)),
                markers=np.zeros(0, dtype=bool),
                enabled=np.array([c.enabled for c in self.configs]),
            )
        codes = self.baseboard.averaged_codes(start, n_samples)
        self.clock.tick(n_samples)
        self.health.samples_decoded += n_samples
        values, enabled = convert_codes(codes, self.configs)
        # Match the firmware timestamp convention (after 3 of 6 scans),
        # including its microsecond rounding.
        times = start + np.arange(n_samples) * timing.output_interval_s
        times = np.round((times + 3 * timing.scan_time_s) * 1e6) * 1e-6
        markers = np.zeros(n_samples, dtype=bool)
        n_mark = min(self._marker_pending, n_samples)
        if n_mark:
            markers[:n_mark] = True
            self._marker_pending -= n_mark
        return SampleBlock(times=times, values=values, markers=markers, enabled=enabled)
