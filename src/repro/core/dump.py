"""Continuous-mode dump files.

In continuous mode the host library records every 20 kHz sample to a file,
with user-supplied marker characters interleaved and time-synced with the
microcontroller (paper, Section III-C).  The format is line-oriented text:

* header lines start with ``#`` and carry metadata,
* ``M <time> <char>`` lines record markers,
* data lines are ``<time> <V I> per enabled pair ... <total W>``.

:class:`DumpReader` parses a dump back into numpy arrays for analysis.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import MeasurementError


class DumpWriter:
    """Streams samples and markers to a dump file."""

    def __init__(
        self,
        path: str | Path | io.TextIOBase,
        pair_names: list[str],
        sample_rate_hz: float,
    ) -> None:
        if isinstance(path, (str, Path)):
            self._file: io.TextIOBase = open(path, "w")
            self._owns_file = True
        else:
            self._file = path
            self._owns_file = False
        self.pair_names = list(pair_names)
        self._file.write("# PowerSensor3 dump\n")
        self._file.write(f"# sample_rate_hz: {sample_rate_hz}\n")
        self._file.write(f"# pairs: {' '.join(self.pair_names)}\n")
        self._file.write("# columns: time_s" + " V I" * len(self.pair_names) + " total_W\n")
        self.samples_written = 0
        self.markers_written = 0

    def write_samples(
        self, times: np.ndarray, volts: np.ndarray, amps: np.ndarray
    ) -> None:
        """Append samples; volts/amps are (n, n_pairs) for enabled pairs."""
        total = (volts * amps).sum(axis=1)
        lines = []
        for k in range(times.size):
            fields = [f"{times[k]:.7f}"]
            for p in range(volts.shape[1]):
                fields.append(f"{volts[k, p]:.5f}")
                fields.append(f"{amps[k, p]:.5f}")
            fields.append(f"{total[k]:.5f}")
            lines.append(" ".join(fields))
        self._file.write("\n".join(lines) + "\n" if lines else "")
        self.samples_written += int(times.size)

    def write_marker(self, time: float, char: str) -> None:
        self._file.write(f"M {time:.7f} {char}\n")
        self.markers_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()


@dataclass
class DumpData:
    """Parsed contents of a dump file."""

    sample_rate_hz: float
    pair_names: list[str]
    times: np.ndarray  # (n,)
    volts: np.ndarray  # (n, n_pairs)
    amps: np.ndarray  # (n, n_pairs)
    markers: list[tuple[float, str]] = field(default_factory=list)

    @property
    def total_power(self) -> np.ndarray:
        return (self.volts * self.amps).sum(axis=1)

    def energy(self, start: float | None = None, stop: float | None = None) -> float:
        """Trapezoid-integrated energy over [start, stop] (whole file if None)."""
        mask = np.ones(self.times.size, dtype=bool)
        if start is not None:
            mask &= self.times >= start
        if stop is not None:
            mask &= self.times <= stop
        t = self.times[mask]
        p = self.total_power[mask]
        if t.size < 2:
            raise MeasurementError("need at least two samples to integrate energy")
        return float(np.trapezoid(p, t))

    def between_markers(self, first: str, second: str) -> tuple[float, float]:
        """Time interval between the first occurrences of two marker chars."""
        start = next((t for t, c in self.markers if c == first), None)
        stop = next((t for t, c in self.markers if c == second), None)
        if start is None or stop is None:
            raise MeasurementError(f"markers {first!r}/{second!r} not found in dump")
        return start, stop


class DumpReader:
    """Parses a dump file produced by :class:`DumpWriter`."""

    @staticmethod
    def read(path: str | Path | io.TextIOBase) -> DumpData:
        if isinstance(path, (str, Path)):
            with open(path) as f:
                return DumpReader._parse(f)
        return DumpReader._parse(path)

    @staticmethod
    def _parse(f) -> DumpData:
        sample_rate = 0.0
        pair_names: list[str] = []
        times: list[float] = []
        rows: list[list[float]] = []
        markers: list[tuple[float, str]] = []
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "sample_rate_hz:" in line:
                    sample_rate = float(line.split(":", 1)[1])
                elif "pairs:" in line:
                    pair_names = line.split(":", 1)[1].split()
                continue
            if line.startswith("M "):
                _, t, char = line.split(maxsplit=2)
                markers.append((float(t), char))
                continue
            fields = [float(x) for x in line.split()]
            times.append(fields[0])
            rows.append(fields[1:-1])  # drop the redundant total column
        n_pairs = len(pair_names)
        data = np.asarray(rows, dtype=float).reshape(len(rows), 2 * n_pairs)
        return DumpData(
            sample_rate_hz=sample_rate,
            pair_names=pair_names,
            times=np.asarray(times),
            volts=data[:, 0::2],
            amps=data[:, 1::2],
            markers=markers,
        )
