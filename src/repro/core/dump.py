"""Continuous-mode dump files.

In continuous mode the host library records every 20 kHz sample to a file,
with user-supplied marker characters interleaved and time-synced with the
microcontroller (paper, Section III-C).  The format is line-oriented text:

* header lines start with ``#`` and carry metadata,
* ``M <time> <char>`` lines record markers,
* data lines are ``<time> <V I> per enabled pair ... <total W>``.

:class:`DumpReader` parses a dump back into numpy arrays for analysis.

Both directions are vectorised: the writer renders whole sample blocks as
right-aligned fixed-decimal columns with one digit-extraction pass (no
per-sample string formatting), and the reader recognises such fixed-width
blocks and converts them back with one digit-weight matrix product.
Irregular input (hand-edited files, non-finite values) falls back to the
general per-line paths, so any previously valid dump still parses.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import MeasurementError

TIME_DECIMALS = 7
VALUE_DECIMALS = 5

_SPACE, _MINUS, _DOT, _ZERO, _NINE, _NEWLINE = 0x20, 0x2D, 0x2E, 0x30, 0x39, 0x0A

#: Rows per render/parse chunk: keeps every intermediate array resident in
#: the CPU cache, where repeated small passes run an order of magnitude
#: faster than streaming the whole block through main memory.
_CHUNK_ROWS = 8192

_POW10_I64 = 10 ** np.arange(19, dtype=np.int64)


def _int_digit_count(max_abs_scaled: int, decimals: int) -> int:
    """Digits needed for the integer part of the largest scaled value."""
    return max(1, len(str(max_abs_scaled // 10**decimals)))


def _field_view(line: np.ndarray, offset: int, c: int, cells: int, pitch: int):
    """(rows, c, cells) writable view of ``c`` equally spaced field slots.

    Field ``j`` of a row maps to ``line[row, offset + j*pitch : ... + cells]``.
    A strided view lets one assignment per digit place cover every field —
    fancy-index scatter per element would dominate the render time.
    """
    return np.lib.stride_tricks.as_strided(
        line[:, offset:],
        shape=(line.shape[0], c, cells),
        strides=(line.strides[0], pitch, 1),
    )


def _render_fields(
    fields: np.ndarray, scaled: np.ndarray, decimals: int, int_cells: int
) -> None:
    """Render scaled int64 values (n, c) into a (n, c, cells) char view.

    ``cells = int_cells + 1 + decimals``: the integer part right-aligned
    (leading zeros blanked, ``-`` directly before the first digit), then
    the dot, then ``decimals`` fraction digits.  One division chain per
    digit place across all fields at once — no per-value formatting.
    """
    cells = int_cells + 1 + decimals
    neg = scaled < 0
    a = np.abs(scaled)
    fields[:, :, int_cells] = _DOT

    # Fraction digits, least significant first (always shown).  The
    # fraction fits int32, where constant division is much faster.
    x = (a % 10**decimals).astype(np.int32)
    for k in range(decimals):
        q = x // 10
        d = (x - q * 10).astype(np.uint8)
        fields[:, :, cells - 1 - k] = d + _ZERO
        x = q

    # Integer digits.  A digit above the value's magnitude is 0, so
    # "space if not shown" is the branch-free ``0x20 + d + 0x10*shown``
    # (shown -> '0'+d, hidden -> d == 0 -> space).
    ip = a // 10**decimals
    x = ip
    for k in range(int_cells):
        q = x // 10
        d = (x - q * 10).astype(np.uint8)
        if k == 0:
            fields[:, :, int_cells - 1] = d + _ZERO
        else:
            shown = (ip >= 10**k).view(np.uint8)
            fields[:, :, int_cells - 1 - k] = _SPACE + d + (shown << 4)
        x = q

    if neg.any():
        # int_cells was sized with a spare slot, so the sign always fits
        # directly before the first shown digit.
        rows, cs = np.nonzero(neg)
        n_digits = np.maximum(
            np.searchsorted(_POW10_I64, ip[rows, cs], side="right"), 1
        )
        fields[rows, cs, int_cells - 1 - n_digits] = _MINUS


class DumpWriter:
    """Streams samples and markers to a dump file."""

    def __init__(
        self,
        path: str | Path | io.TextIOBase,
        pair_names: list[str],
        sample_rate_hz: float,
    ) -> None:
        if isinstance(path, (str, Path)):
            self._file: io.TextIOBase = open(path, "w")
            self._owns_file = True
        else:
            self._file = path
            self._owns_file = False
        # When we own the file, rendered blocks go to the binary buffer
        # directly — encoding 100 MB of ASCII through the text layer costs
        # more than rendering it.
        self._raw = getattr(self._file, "buffer", None) if self._owns_file else None
        self.pair_names = list(pair_names)
        self._file.write("# PowerSensor3 dump\n")
        self._file.write(f"# sample_rate_hz: {sample_rate_hz}\n")
        self._file.write(f"# pairs: {' '.join(self.pair_names)}\n")
        self._file.write("# columns: time_s" + " V I" * len(self.pair_names) + " total_W\n")
        self.samples_written = 0
        self.markers_written = 0

    def write_samples(
        self, times: np.ndarray, volts: np.ndarray, amps: np.ndarray
    ) -> None:
        """Append samples; volts/amps are (n, n_pairs) for enabled pairs."""
        times = np.asarray(times, dtype=float)
        volts = np.asarray(volts, dtype=float)
        amps = np.asarray(amps, dtype=float)
        n = times.size
        if n == 0:
            return
        total = (volts * amps).sum(axis=1)
        block = self._render_block(times, volts, amps, total)
        if block is None:
            values = np.empty((n, volts.shape[1] * 2 + 1))
            values[:, 0:-1:2] = volts
            values[:, 1:-1:2] = amps
            values[:, -1] = total
            block = self._render_block_slow(times, values).encode("ascii")
        if self._raw is not None:
            # The rendered uint8 matrix goes out via the buffer protocol —
            # no tobytes() copy of the whole block.
            self._file.flush()
            self._raw.write(block)
        elif isinstance(block, bytes):
            self._file.write(block.decode("ascii"))
        else:
            self._file.write(block.tobytes().decode("ascii"))
        self.samples_written += int(n)

    @staticmethod
    def _render_block(
        times: np.ndarray,
        volts: np.ndarray,
        amps: np.ndarray,
        total: np.ndarray,
    ) -> np.ndarray | None:
        """Fixed-width vectorised rendering; None if the data needs the
        general path (non-finite values or magnitudes past the int64 scale).

        Works in row chunks so the scaled integers, digit-division temps
        and rendered characters all stay cache-resident; only the input
        floats and the finished text stream through main memory.
        """
        # A non-finite volt/amp always propagates into the row total, so
        # checking times+total covers every rendered column.
        if not (np.isfinite(times).all() and np.isfinite(total).all()):
            return None
        # Column sizing from the float extrema.  ``|x|*10**d == |x*10**d|``
        # exactly and round() is monotone, so the digit count of the
        # largest rounded value equals that of the rounded maximum.
        t_min, t_max = float(times.min()), float(times.max())
        t_abs = max(-t_min, t_max)
        v_min = float(min(volts.min(), amps.min(), total.min()))
        v_max = float(max(volts.max(), amps.max(), total.max()))
        v_abs = max(-v_min, v_max)
        if t_abs >= 1e10 or v_abs >= 1e12:
            return None

        cells_t = _int_digit_count(int(round(t_abs * 10**TIME_DECIMALS)), TIME_DECIMALS)
        cells_t += int(round(t_min * 10**TIME_DECIMALS) < 0)
        cells_v = _int_digit_count(int(round(v_abs * 10**VALUE_DECIMALS)), VALUE_DECIMALS)
        cells_v += int(round(v_min * 10**VALUE_DECIMALS) < 0)
        # int32 halves the memory traffic of the digit-division chains and
        # its constant division is roughly twice as fast.
        dt_t = np.int32 if t_abs * 10**TIME_DECIMALS < 2**31 - 1 else np.int64
        dt_v = np.int32 if v_abs * 10**VALUE_DECIMALS < 2**31 - 1 else np.int64

        n = times.size
        n_cols = volts.shape[1] * 2 + 1
        w_t = cells_t + 1 + TIME_DECIMALS
        w_v = cells_v + 1 + VALUE_DECIMALS
        width = w_t + (1 + w_v) * n_cols + 1
        # No full-matrix space fill: the field renderer writes every cell
        # of every field (pads included), so only the separator columns
        # and the newline need explicit stores.
        lines = np.empty((n, width), dtype=np.uint8)
        for col in range(w_t, width - 1, 1 + w_v):
            lines[:, col] = _SPACE
        lines[:, -1] = _NEWLINE
        vals = np.empty((_CHUNK_ROWS, n_cols))
        for s in range(0, n, _CHUNK_ROWS):
            e = min(s + _CHUNK_ROWS, n)
            block = lines[s:e]
            vc = vals[: e - s]
            vc[:, 0:-1:2] = volts[s:e]
            vc[:, 1:-1:2] = amps[s:e]
            vc[:, -1] = total[s:e]
            scaled_t = np.round(times[s:e] * 10**TIME_DECIMALS).astype(dt_t)
            scaled_v = np.round(vc * 10**VALUE_DECIMALS).astype(dt_v)
            _render_fields(
                _field_view(block, 0, 1, w_t, w_t),
                scaled_t[:, None],
                TIME_DECIMALS,
                cells_t,
            )
            _render_fields(
                _field_view(block, w_t + 1, n_cols, w_v, 1 + w_v),
                scaled_v,
                VALUE_DECIMALS,
                cells_v,
            )
        return lines

    @staticmethod
    def _render_block_slow(times: np.ndarray, values: np.ndarray) -> str:
        """General path: classic ``%``-style row formatting (handles nan/inf)."""
        row_fmt = "%.7f" + " %.5f" * values.shape[1] + "\n"
        flat = np.column_stack([times, values]).ravel()
        width = values.shape[1] + 1
        chunks = []
        step = 16384
        for start in range(0, times.size, step):
            stop = min(start + step, times.size)
            chunks.append(
                (row_fmt * (stop - start)) % tuple(flat[start * width : stop * width])
            )
        return "".join(chunks)

    def write_marker(self, time: float, char: str) -> None:
        self._file.write(f"M {time:.7f} {char}\n")
        self.markers_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()


@dataclass
class DumpData:
    """Parsed contents of a dump file."""

    sample_rate_hz: float
    pair_names: list[str]
    times: np.ndarray  # (n,)
    volts: np.ndarray  # (n, n_pairs)
    amps: np.ndarray  # (n, n_pairs)
    markers: list[tuple[float, str]] = field(default_factory=list)

    @property
    def total_power(self) -> np.ndarray:
        return (self.volts * self.amps).sum(axis=1)

    def energy(self, start: float | None = None, stop: float | None = None) -> float:
        """Trapezoid-integrated energy over [start, stop] (whole file if None)."""
        mask = np.ones(self.times.size, dtype=bool)
        if start is not None:
            mask &= self.times >= start
        if stop is not None:
            mask &= self.times <= stop
        t = self.times[mask]
        p = self.total_power[mask]
        if t.size < 2:
            raise MeasurementError("need at least two samples to integrate energy")
        return float(np.trapezoid(p, t))

    def between_markers(self, first: str, second: str) -> tuple[float, float]:
        """Time interval between the first occurrences of two marker chars."""
        start = next((t for t, c in self.markers if c == first), None)
        stop = next((t for t, c in self.markers if c == second), None)
        if start is None or stop is None:
            raise MeasurementError(f"markers {first!r}/{second!r} not found in dump")
        return start, stop


class DumpReader:
    """Parses a dump file produced by :class:`DumpWriter`."""

    @staticmethod
    def read(path: str | Path | io.TextIOBase) -> DumpData:
        if isinstance(path, (str, Path)):
            with open(path, "rb") as f:
                return DumpReader._parse(f)
        return DumpReader._parse(path)

    @staticmethod
    def _parse(f) -> DumpData:
        content = f.read()
        raw = content.encode("utf-8") if isinstance(content, str) else bytes(content)
        if raw and not raw.endswith(b"\n"):
            raw += b"\n"

        sample_rate = 0.0
        pair_names: list[str] = []
        markers: list[tuple[float, str]] = []

        def handle_special(line: str, lineno: int, offset: int) -> None:
            nonlocal sample_rate, pair_names
            if line.startswith("#"):
                if "sample_rate_hz:" in line:
                    sample_rate = float(line.split(":", 1)[1])
                elif "pairs:" in line:
                    pair_names = line.split(":", 1)[1].split()
            else:
                if not line.startswith("M "):
                    raise ValueError(
                        f"could not parse dump line {lineno} "
                        f"(byte offset {offset}): {line!r}"
                    )
                _, t, char = line.split(maxsplit=2)
                markers.append((float(t), char))

        arr = np.frombuffer(raw, dtype=np.uint8)
        grid = DumpReader._regular_grid(raw, arr)
        if grid is not None:
            # Common shape — header lines, then one uniform block of
            # equal-width data lines — indexed without the full newline
            # scan and per-line masks.
            special_lines, data_off, width, n_rows = grid
            for line, lineno, offset in special_lines:
                handle_special(line, lineno, offset)
            data_starts = data_off + (width + 1) * np.arange(n_rows, dtype=np.int64)
            data_lens = np.full(n_rows, width, dtype=np.int64)
        else:
            newlines = np.flatnonzero(arr == _NEWLINE)
            starts = np.empty(newlines.size, dtype=np.int64)
            if newlines.size:
                starts[0] = 0
                starts[1:] = newlines[:-1] + 1
            lens = newlines - starts

            nonblank = lens > 0
            first = np.zeros(newlines.size, dtype=np.uint8)
            first[nonblank] = arr[starts[nonblank]]
            special = nonblank & ((first == ord("#")) | (first == ord("M")))
            for i in np.flatnonzero(special):
                handle_special(
                    raw[starts[i] : starts[i] + lens[i]].decode("utf-8").strip(),
                    int(i) + 1,
                    int(starts[i]),
                )

            data_mask = nonblank & ~special
            data_starts = starts[data_mask]
            data_lens = lens[data_mask]
        n_pairs = len(pair_names)
        n_rows = int(data_starts.size)
        if n_rows == 0:
            data = np.zeros((0, 2 * n_pairs))
            return DumpData(
                sample_rate_hz=sample_rate,
                pair_names=pair_names,
                times=np.zeros(0),
                volts=data[:, 0::2],
                amps=data[:, 1::2],
                markers=markers,
            )

        fields = None
        width = int(data_lens[0])
        if width > 0 and (data_lens == width).all():
            fields = DumpReader._parse_fixed(arr, data_starts, width)
        if fields is None:
            # General path: any whitespace-separated float rows.
            lines = [
                raw[s : s + l].decode("utf-8") for s, l in zip(data_starts, data_lens)
            ]
            fields = np.loadtxt(lines, dtype=float, ndmin=2)

        times = fields[:, 0]
        data = fields[:, 1:-1]  # drop the redundant total column
        data = data.reshape(n_rows, 2 * n_pairs)
        return DumpData(
            sample_rate_hz=sample_rate,
            pair_names=pair_names,
            times=np.ascontiguousarray(times),
            volts=data[:, 0::2],
            amps=data[:, 1::2],
            markers=markers,
        )

    @staticmethod
    def _regular_grid(
        raw: bytes, arr: np.ndarray
    ) -> tuple[list[tuple[str, int, int]], int, int, int] | None:
        """Detect a header prefix followed by one uniform data block.

        Walks the leading ``#``/``M``/blank lines with ``bytes.find``,
        then verifies the rest of the file is a grid of equal-width
        lines with no interleaved special lines — two strided column
        checks instead of scanning every byte for newlines.  Returns
        (special (line, lineno, offset) triples, data_offset, width,
        n_rows), or None to use the general line scan.
        """
        size = len(raw)
        specials: list[tuple[str, int, int]] = []
        off = 0
        lineno = 0
        while off < size:
            nl = raw.find(b"\n", off)
            if nl < 0:
                return None
            lineno += 1
            if nl == off:
                off = nl + 1  # blank line
                continue
            if raw[off] in (0x23, 0x4D):  # '#' / 'M'
                specials.append((raw[off:nl].decode("utf-8").strip(), lineno, off))
                off = nl + 1
                continue
            break
        if off >= size:
            return None  # no data lines: the general path handles it
        width = raw.find(b"\n", off) - off
        stride = width + 1
        if width <= 0 or (size - off) % stride:
            return None
        n_rows = (size - off) // stride
        if not (arr[off + width :: stride] == _NEWLINE).all():
            return None  # not a uniform grid of lines
        firsts = arr[off::stride]
        if ((firsts == 0x23) | (firsts == 0x4D)).any():
            return None  # special lines interleaved with the data
        return specials, off, width, n_rows

    @staticmethod
    def _parse_fixed(
        arr: np.ndarray, data_starts: np.ndarray, width: int
    ) -> np.ndarray | None:
        """Parse equal-length aligned fixed-decimal data lines.

        Consecutive data lines form contiguous byte runs (interrupted only
        by the occasional marker or header line), so each run reshapes
        zero-copy into a (rows, width+1) character matrix.  Fields are
        located from the decimal dots of the first line assuming the
        writer's layout (``TIME_DECIMALS`` for the first field,
        ``VALUE_DECIMALS`` for the rest, single-space separators); every
        assumption is then *verified* on all rows, so a file with any
        other layout returns None and takes the general parser instead of
        ever being misparsed.
        """
        line0 = arr[data_starts[0] : data_starts[0] + width]
        dots = np.flatnonzero(line0 == _DOT)
        if dots.size < 2 or int(dots[0]) < 1:
            return None
        p0 = int(dots[0])
        end_t = p0 + 1 + TIME_DECIMALS
        # Value fields must share one geometry (the writer's always do):
        # equal integer width and a uniform column pitch, so all of them
        # parse through a single strided (rows, c, w) view.
        c = dots.size - 1
        s1 = end_t + 1
        d1 = int(dots[1])
        intw = d1 - s1
        if intw < 1:
            return None
        pitch = d1 + 1 + VALUE_DECIMALS + 1 - s1
        if (dots[1:] != d1 + pitch * np.arange(c)).any():
            return None
        if s1 + c * pitch - 1 != width:
            return None
        nd_t = p0 + TIME_DECIMALS
        nd_v = intw + VALUE_DECIMALS
        if nd_t > 18 or nd_v > 18:
            return None  # packed digit strings must fit uint64
        seps = s1 - 1 + pitch * np.arange(c)
        dotcols = np.concatenate(([p0], d1 + pitch * np.arange(c)))

        wb_t = 8 * -(-nd_t // 8)
        wb_v = 8 * -(-nd_v // 8)
        buf_t = np.full((_CHUNK_ROWS, wb_t), _SPACE, dtype=np.uint8)
        buf_v = np.full((_CHUNK_ROWS * c, wb_v), _SPACE, dtype=np.uint8)

        n_rows = int(data_starts.size)
        values = np.empty((n_rows, 1 + c))
        run_breaks = np.flatnonzero(np.diff(data_starts) != width + 1)
        run_edges = np.concatenate(([0], run_breaks + 1, [n_rows]))
        strided = np.lib.stride_tricks.as_strided
        for i0, i1 in zip(run_edges[:-1], run_edges[1:]):
            i0, i1 = int(i0), int(i1)
            s0 = int(data_starts[i0])
            run = arr[s0 : s0 + (i1 - i0) * (width + 1)].reshape(i1 - i0, width + 1)
            for r0 in range(0, i1 - i0, _CHUNK_ROWS):
                r1 = min(r0 + _CHUNK_ROWS, i1 - i0)
                chunk = run[r0:r1]
                r = r1 - r0
                if not (chunk[:, seps] == _SPACE).all():
                    return None
                if not (chunk[:, dotcols] == _DOT).all():
                    return None
                # Pack each field's digits (dot dropped, left pad kept as
                # spaces) straight from the line chunk into reusable
                # uint64-width row buffers: the validity checks and the
                # parse then run entirely on contiguous words, and the
                # packed digit string reads back as the scaled integer
                # with no post-hoc dot arithmetic.
                bt = buf_t[:r]
                if wb_t > nd_t:
                    bt[:, : wb_t - nd_t] = _SPACE  # re-blank: the lift mutates
                bt[:, wb_t - nd_t : wb_t - TIME_DECIMALS] = chunk[:, :p0]
                bt[:, wb_t - TIME_DECIMALS :] = chunk[:, p0 + 1 : end_t]
                bv = buf_v[: r * c].reshape(r, c, wb_v)
                if wb_v > nd_v:
                    bv[:, :, : wb_v - nd_v] = _SPACE
                ls = chunk.strides[0]
                bv[:, :, wb_v - nd_v : wb_v - VALUE_DECIMALS] = strided(
                    chunk[:, s1:], (r, c, intw), (ls, pitch, 1)
                )
                bv[:, :, wb_v - VALUE_DECIMALS :] = strided(
                    chunk[:, s1 + intw + 1 :], (r, c, VALUE_DECIMALS), (ls, pitch, 1)
                )
                t_col = DumpReader._parse_packed(buf_t[:r], TIME_DECIMALS)
                v_cols = DumpReader._parse_packed(buf_v[: r * c], VALUE_DECIMALS)
                if t_col is None or v_cols is None:
                    return None
                out = values[i0 + r0 : i0 + r1]
                out[:, 0] = t_col
                out[:, 1:] = v_cols.reshape(r, c)
        return values

    @staticmethod
    def _parse_packed(buf: np.ndarray, decimals: int) -> np.ndarray | None:
        """Validate and parse packed right-aligned decimal fields.

        Each ``buf`` row holds one field: a space left pad, optionally a
        ``-``, and the field's digits with the decimal dot removed (the
        caller verified the dot column), widened on the left to a
        multiple of 8 chars by more space pad.  The structural checks
        run SWAR-style on uint64 words — one flag bit per byte — instead
        of per-byte boolean matrices: a valid field is a contiguous
        "low" (below ``'0'``) prefix of spaces, plus at most one ``-``
        as the last low char, followed by digits only.  Returns the
        (m,) float64 values, or None on any violation so the caller
        falls back to the general parser.
        """
        m, wb = buf.shape
        k = wb // 8
        if not m:
            return np.empty(0)
        if buf.max() > _NINE:
            return None  # bytes above '9' (incl. non-ASCII)
        # All bytes are now <= 0x39, so none of the byte-wise adds below
        # can carry across byte lanes and every flag is exact.
        b7 = np.uint64(0x8080808080808080)
        eight = np.uint64(8)
        x = buf.reshape(-1, 8).view(np.uint64).ravel()
        low = ~(x + np.uint64(0x5050505050505050)) & b7  # chars below '0'
        if ((low >> eight) & ~low).any():
            return None  # lows must form a contiguous left prefix
        y = x ^ np.uint64(0x2D2D2D2D2D2D2D2D)
        minus = ~(y + np.uint64(0x7F7F7F7F7F7F7F7F)) & b7  # '-' bytes
        y = x ^ np.uint64(0x2020202020202020)
        space = ~(y + np.uint64(0x7F7F7F7F7F7F7F7F)) & b7  # ' ' bytes
        if (low & ~(minus | space)).any():
            return None  # the pad is spaces plus at most a sign
        # The topmost low byte of each word: with a contiguous prefix
        # there is at most one, and it is the only legal sign position.
        l_top = low & ~(low >> eight)
        neg = None
        if k == 1:
            if (minus & ~l_top).any():
                return None  # the sign sits directly before the digits
            if (low == b7).any():
                return None  # a field with no digits at all
            if minus.any():
                neg = minus != 0
        else:
            lw = low.reshape(m, k)
            mw = minus.reshape(m, k)
            tw = l_top.reshape(m, k)
            above = np.zeros(m, dtype=bool)  # any low in higher words
            neg_rows = np.zeros(m, dtype=bool)
            for j in range(k - 1, -1, -1):
                if j and ((lw[:, j] != 0) & (lw[:, j - 1] != b7)).any():
                    return None  # the prefix must span the lower words
                has_minus = mw[:, j] != 0
                if has_minus.any():
                    if ((mw[:, j] & ~tw[:, j]) != 0).any():
                        return None  # sign not directly before the digits
                    if (has_minus & above).any():
                        return None  # sign below other pad chars
                    neg_rows |= has_minus
                above |= lw[:, j] != 0
            if np.logical_and.reduce(lw == b7, axis=1).any():
                return None  # fields with no digits at all
            if neg_rows.any():
                neg = neg_rows
        # Lift the (now validated) pad and sign chars to '0' so they
        # contribute zero; the packed digits then read back as the
        # scaled integer directly.
        np.maximum(buf, _ZERO, out=buf)
        scaled = DumpReader._parse_digits(buf)
        if scaled.max() > np.uint64(1) << np.uint64(53):
            return None  # keep scaled exactly representable -> float()-exact
        out = scaled.astype(np.float64)
        if neg is not None:
            out[neg] = -out[neg]
        out /= 10.0**decimals
        return out

    @staticmethod
    def _parse_digits(buf: np.ndarray) -> np.ndarray:
        """Reduce (m, 8k) ASCII-digit rows to their uint64 values.

        Every byte must already be a digit (the caller validates and
        lifts pad/sign chars).  Eight characters at a time are viewed as
        one uint64 and reduced with three multiply-shift steps instead of
        per-digit arithmetic; multi-word rows fold with Horner steps.
        """
        m = buf.shape[0]
        x = buf.reshape(-1, 8).view(np.uint64).ravel()
        x = x - np.uint64(0x3030303030303030)
        x = (x * np.uint64(2561)) >> np.uint64(8) & np.uint64(0x00FF00FF00FF00FF)
        x = (x * np.uint64(6553601)) >> np.uint64(16) & np.uint64(0x0000FFFF0000FFFF)
        x = (x * np.uint64(42949672960001)) >> np.uint64(32) & np.uint64(0xFFFFFFFF)
        if x.size == m:
            return x
        x = x.reshape(m, -1)
        total = x[:, 0].copy()
        for i in range(1, x.shape[1]):
            total *= np.uint64(10**8)
            total += x[:, i]
        return total
