"""One-call assembly of a complete simulated measurement bench.

``SimulatedSetup`` manufactures sensor modules, mounts them on a
baseboard, flashes factory-default EEPROM contents, runs the one-time
calibration, and hands back a connected :class:`PowerSensor` — the
simulation analogue of unboxing and installing a PowerSensor3.
"""

from __future__ import annotations

from repro.calibration.procedure import calibrate_all, CalibrationResult
from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream
from repro.core.powersensor import PowerSensor, RecoveryPolicy, DEFAULT_RECOVERY
from repro.core.sources import (
    DirectSampleSource,
    ProtocolSampleSource,
    register_source,
)
from repro.dut.rails import build_rail
from repro.firmware.device import Firmware, default_eeprom
from repro.hardware.baseboard import Baseboard, PowerRail
from repro.hardware.modules import SensorModule
from repro.observability import MetricsRegistry, Tracer
from repro.transport.faults import FaultModel, FaultySerialLink, parse_fault_spec
from repro.transport.link import VirtualSerialLink
from repro.transport.shm import DEFAULT_BATCH, DEFAULT_RING_BYTES, ProducerLink

#: Default calibration length for programmatic setups.  The paper's
#: procedure uses 128 k samples; 32 k keeps test construction fast while
#: leaving the residual offset error far below the sensor noise floor.
SETUP_CALIBRATION_SAMPLES = 32 * 1024


class SimulatedSetup:
    """A fully assembled PowerSensor3 bench.

    Args:
        module_keys: catalog key per slot (up to four); ``None`` leaves a
            slot empty.
        seed: root seed for all production tolerances and sensor noise.
        direct: use the vectorised direct sample path instead of the
            byte-accurate protocol path (for large experiments).
        calibrate: run the one-time calibration before connecting.
        calibration_samples: samples averaged per calibration point.
        faults: fault models to inject on the serial link — a spec string
            (see :func:`repro.transport.faults.parse_fault_spec`) or a
            list of :class:`~repro.transport.faults.FaultModel`; protocol
            path only.
        fault_seed: seed for the fault generator (defaults to ``seed``).
        recovery: retry policy for the PowerSensor (None disables).
        registry: metrics registry shared by every layer of the bench
            (fault layer, sample source, PowerSensor); a fresh one is
            created if not given.
        producer: run device simulation in a batching producer feeding a
            shared SPSC ring (``"thread"``, ``"process"``, ``"inline"``
            or ``"auto"``; see :mod:`repro.transport.shm`).  ``None``
            (default) keeps the classic interleaved pump, byte-for-byte.
        producer_batch: samples per producer batch.
        ring_bytes: producer ring capacity in bytes.

    Attributes:
        baseboard, eeprom, firmware (None on the direct path), link (None
        on the direct path), source, ps (the connected PowerSensor),
        registry/tracer (the bench-wide observability handles), and
        calibration (list of per-slot results, empty if not calibrated).
    """

    def __init__(
        self,
        module_keys: list[str | None],
        seed: int = 0,
        direct: bool = False,
        calibrate: bool = True,
        calibration_samples: int = SETUP_CALIBRATION_SAMPLES,
        perfect_modules: bool = False,
        external_field=None,
        faults: str | list[FaultModel] | None = None,
        fault_seed: int | None = None,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
        vectorized: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        device: str | None = None,
        producer: str | None = None,
        producer_batch: int = DEFAULT_BATCH,
        ring_bytes: int = DEFAULT_RING_BYTES,
    ) -> None:
        if len(module_keys) > 4:
            raise ValueError("a baseboard has at most four slots")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.registry)
        self.device = device
        self.rng = RngStream(seed, "setup")
        self.baseboard = Baseboard()
        for slot, key in enumerate(module_keys):
            if key is None:
                continue
            module = SensorModule.manufacture(
                key,
                self.rng.child(f"slot{slot}"),
                perfect=perfect_modules,
                external_field=external_field,
            )
            self.baseboard.attach(slot, module)
        self.eeprom = default_eeprom(self.baseboard)

        self.calibration: list[CalibrationResult] = []
        if calibrate:
            self.calibration = calibrate_all(
                self.baseboard, self.eeprom, n_samples=calibration_samples
            )

        fault_models = parse_fault_spec(faults) if isinstance(faults, str) else faults
        if direct:
            if fault_models:
                raise ConfigurationError(
                    "fault injection requires the byte-accurate protocol path "
                    "(construct the bench without direct=True)"
                )
            self.firmware = None
            self.link = None
            self.source: DirectSampleSource | ProtocolSampleSource = (
                DirectSampleSource(
                    self.baseboard,
                    self.eeprom,
                    registry=self.registry,
                    tracer=self.tracer,
                    device=device,
                    producer=producer,
                    producer_batch=producer_batch,
                    ring_bytes=ring_bytes,
                )
            )
        else:
            self.firmware = Firmware(self.baseboard, eeprom=self.eeprom)
            self.link = VirtualSerialLink(self.firmware)
            if fault_models:
                self.link = FaultySerialLink(
                    self.link,
                    fault_models,
                    seed=seed if fault_seed is None else fault_seed,
                    registry=self.registry,
                    device=device,
                )
            if producer:
                self.link = ProducerLink(
                    self.link,
                    producer=producer,
                    batch=producer_batch,
                    ring_bytes=ring_bytes,
                )
            self.source = ProtocolSampleSource(
                self.link,
                vectorized=vectorized,
                registry=self.registry,
                tracer=self.tracer,
                device=device,
            )
        self.ps = PowerSensor(self.source, recovery=recovery)

    def connect(self, slot: int, rail: PowerRail) -> None:
        """Wire a DUT power rail to a slot's sensor module."""
        self.baseboard.connect(slot, rail)

    @property
    def sample_rate(self) -> float:
        return self.baseboard.timing.output_rate_hz

    def close(self) -> None:
        self.ps.close()

    def __enter__(self) -> "SimulatedSetup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_module_keys(modules: str) -> list[str | None]:
    """Parse a comma-separated module list (``none``/empty leaves a slot free)."""
    return [
        None if key.strip().lower() in ("none", "") else key.strip()
        for key in modules.split(",")
    ]


def simulated_source(
    modules: str = "pcie_slot_12v",
    *,
    dut: str = "load:8.0@12.0",
    seed: int = 0,
    direct: bool = False,
    faults: str | None = None,
    fault_seed: int | None = None,
    calibrate: bool = True,
    calibration_samples: int = SETUP_CALIBRATION_SAMPLES,
    vectorized: bool = True,
    device: str | None = None,
    producer: str | None = None,
    producer_batch: int = DEFAULT_BATCH,
    ring_bytes: int = DEFAULT_RING_BYTES,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
):
    """Factory behind ``create_source("sim://MODULES?...")``.

    Assembles a full simulated bench (modules, calibration, DUT rail on
    the first populated slot) and returns its sample source.  The bench
    stays reachable through ``source.bench`` so the baseboard and DUT
    outlive the factory call.
    """
    setup = SimulatedSetup(
        parse_module_keys(modules),
        seed=seed,
        direct=direct,
        faults=faults,
        fault_seed=fault_seed,
        calibrate=calibrate,
        calibration_samples=calibration_samples,
        vectorized=vectorized,
        registry=registry,
        tracer=tracer,
        device=device,
        producer=producer,
        producer_batch=producer_batch,
        ring_bytes=ring_bytes,
    )
    rail = build_rail(dut, seed)
    if rail is not None:
        for channel in setup.baseboard.populated_slots():
            setup.connect(channel.slot, rail)
            break
    source = setup.source
    source.bench = setup
    return source


register_source("sim", simulated_source)
