"""Realtime pump: the simulation analogue of the host receive thread.

The real host library runs a lightweight thread that continuously receives
sensor values.  Against the simulated device, :class:`RealtimeDriver`
plays that role for the interactive CLI tools: a daemon thread pumps the
PowerSensor at wall-clock pace (optionally time-scaled), so ``psrun`` and
``psinfo`` behave like their real counterparts.

The driver is also where a stuck measurement is detected: if the pump
thread raises, the error is captured and re-raised at the next
:meth:`read`/:meth:`mark`; if the thread blocks without making progress
for ``watchdog_seconds``, those calls raise
:class:`~repro.common.errors.StreamStalledError` instead of hanging, so a
wedged device fails the measurement cleanly rather than freezing the tool.
"""

from __future__ import annotations

import threading
import time

from repro.common.errors import StreamStalledError
from repro.core.powersensor import PowerSensor
from repro.observability import MetricsRegistry

#: Pump-iteration latency buckets: 10 us to 1 s (nominal chunk is 20 ms).
PUMP_BUCKETS = (1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.5, 1.0)


class RealtimeDriver:
    """Pumps a PowerSensor from a background thread at wall-clock pace."""

    def __init__(
        self,
        ps: PowerSensor,
        time_scale: float = 1.0,
        chunk_seconds: float = 0.02,
        watchdog_seconds: float | None = 5.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if watchdog_seconds is not None and watchdog_seconds <= 0:
            raise ValueError("watchdog_seconds must be positive (or None)")
        self.ps = ps
        self.time_scale = time_scale
        self.chunk_seconds = chunk_seconds
        self.watchdog_seconds = watchdog_seconds
        self.registry: MetricsRegistry = getattr(
            ps, "registry", None
        ) or MetricsRegistry()
        self._pump_histogram = self.registry.histogram(
            "pump_loop_seconds",
            buckets=PUMP_BUCKETS,
            help="wall-clock latency of one realtime pump iteration",
        )
        self._behind_counter = self.registry.counter(
            "pump_loop_behind_total",
            help="pump iterations that missed their wall-clock deadline",
        )
        self._watchdog_counter = self.registry.counter(
            "watchdog_trips_total",
            help="times the realtime watchdog declared the stream stalled",
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._error: BaseException | None = None
        self._last_progress = time.monotonic()

    def start(self) -> "RealtimeDriver":
        if self._thread is not None:
            raise RuntimeError("driver already started")
        self._last_progress = time.monotonic()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        next_deadline = time.monotonic()
        while not self._stop.is_set():
            iter_start = time.monotonic()
            try:
                with self._lock:
                    self.ps.pump_seconds(self.chunk_seconds * self.time_scale)
            except Exception as error:
                self._error = error
                return
            self._last_progress = time.monotonic()
            self._pump_histogram.observe(self._last_progress - iter_start)
            next_deadline += self.chunk_seconds
            delay = next_deadline - time.monotonic()
            if delay > 0:
                self._stop.wait(delay)
            else:
                self._behind_counter.inc()
                next_deadline = time.monotonic()  # fell behind; resync

    @property
    def failed(self) -> bool:
        """True if the pump thread died on an error."""
        return self._error is not None

    def _check_health(self) -> None:
        if self._error is not None:
            raise self._error
        if (
            self._thread is not None
            and self.watchdog_seconds is not None
            and time.monotonic() - self._last_progress > self.watchdog_seconds
        ):
            self.ps.health.stalls += 1
            self._watchdog_counter.inc()
            raise StreamStalledError(
                f"pump thread made no progress for {self.watchdog_seconds:.1f} s "
                f"(stalled device or blocked read)"
            )

    def _acquire(self) -> None:
        timeout = -1 if self.watchdog_seconds is None else self.watchdog_seconds
        if not self._lock.acquire(timeout=timeout):
            self.ps.health.stalls += 1
            self._watchdog_counter.inc()
            raise StreamStalledError(
                f"pump thread held the stream lock for more than "
                f"{self.watchdog_seconds:.1f} s"
            )

    def read(self):
        """Thread-safe snapshot of the PowerSensor state."""
        self._check_health()
        self._acquire()
        try:
            return self.ps.read()
        finally:
            self._lock.release()

    def mark(self, char: str = "M") -> None:
        self._check_health()
        self._acquire()
        try:
            self.ps.mark(char)
        finally:
            self._lock.release()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "RealtimeDriver":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
