"""Realtime pump: the simulation analogue of the host receive thread.

The real host library runs a lightweight thread that continuously receives
sensor values.  Against the simulated device, :class:`RealtimeDriver`
plays that role for the interactive CLI tools: a daemon thread pumps the
PowerSensor at wall-clock pace (optionally time-scaled), so ``psrun`` and
``psinfo`` behave like their real counterparts.
"""

from __future__ import annotations

import threading
import time

from repro.core.powersensor import PowerSensor


class RealtimeDriver:
    """Pumps a PowerSensor from a background thread at wall-clock pace."""

    def __init__(
        self,
        ps: PowerSensor,
        time_scale: float = 1.0,
        chunk_seconds: float = 0.02,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.ps = ps
        self.time_scale = time_scale
        self.chunk_seconds = chunk_seconds
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def start(self) -> "RealtimeDriver":
        if self._thread is not None:
            raise RuntimeError("driver already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        next_deadline = time.monotonic()
        while not self._stop.is_set():
            with self._lock:
                self.ps.pump_seconds(self.chunk_seconds * self.time_scale)
            next_deadline += self.chunk_seconds
            delay = next_deadline - time.monotonic()
            if delay > 0:
                self._stop.wait(delay)
            else:
                next_deadline = time.monotonic()  # fell behind; resync

    def read(self):
        """Thread-safe snapshot of the PowerSensor state."""
        with self._lock:
            return self.ps.read()

    def mark(self, char: str = "M") -> None:
        with self._lock:
            self.ps.mark(char)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "RealtimeDriver":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
