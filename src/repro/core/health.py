"""Stream-health accounting for the sample path.

A real PowerSensor3 deployment rides a noisy USB-serial link: bytes get
dropped, packets arrive corrupted, the device occasionally stalls.  The
host library survives all of that (it resynchronises on the first-byte
flag and retries empty reads), but silent recovery is only acceptable if
it is *accounted for* — a measurement that bridged a hundred gaps is not
the same measurement as a clean one.  :class:`StreamHealth` is the single
counter block every layer of the receive path writes into:

* the sample sources count bytes read, packets decoded and packets
  dropped during resynchronisation,
* :class:`~repro.core.powersensor.PowerSensor` counts empty reads, retry
  attempts, bridged inter-sample gaps and declared stalls.

Since the observability layer landed, :class:`StreamHealth` is a *view*
over :class:`~repro.observability.MetricsRegistry` counters rather than
a private struct: ``health.bytes_read += n`` increments the registry
counter ``stream_bytes_read_total``, and anything reading the registry
(exporters, ``--metrics`` files, the psmonitor stats line) sees exactly
the numbers the health block reports.  The equivalence tests pin the
two byte-for-byte across the fault-injection fuzz scenarios.

The CLI tools surface these counters when a run degraded, and the
robustness tests assert that every injected fault lands in exactly one
of them.
"""

from __future__ import annotations

from repro.observability.registry import MetricsRegistry

#: StreamHealth field -> (registry counter name, help text).
HEALTH_COUNTERS: dict[str, tuple[str, str]] = {
    "bytes_read": (
        "stream_bytes_read_total",
        "raw device->host bytes handed to the decoder",
    ),
    "packets_decoded": (
        "stream_packets_decoded_total",
        "2-byte packets successfully parsed",
    ),
    "packets_dropped": (
        "stream_packets_dropped_total",
        "packets lost to resynchronisation",
    ),
    "samples_decoded": (
        "stream_samples_decoded_total",
        "complete sample sets folded into the measurement",
    ),
    "empty_reads": (
        "stream_empty_reads_total",
        "reads that yielded no samples while streaming",
    ),
    "retries": (
        "stream_retries_total",
        "recovery-policy retry reads issued after an empty read",
    ),
    "gaps_bridged": (
        "stream_gaps_bridged_total",
        "oversized inter-sample gaps bridged by energy integration",
    ),
    "stalls": (
        "stream_stalls_total",
        "times the stream was declared stalled",
    ),
}

_FIELDS = tuple(HEALTH_COUNTERS)


class StreamHealth:
    """Counters describing how cleanly the sample stream is arriving.

    A view over registry counters: each attribute reads the counter's
    current value, and ``health.field += n`` advances it (counters are
    monotonic — attempting to lower one raises ``ValueError``).

    Attributes:
        bytes_read: raw device->host bytes handed to the decoder.
        packets_decoded: 2-byte packets successfully parsed.
        packets_dropped: packets lost to resynchronisation (dangling
            first/second bytes discarded while scanning for a frame).
        samples_decoded: complete sample sets folded into the measurement.
        empty_reads: reads that yielded no samples while streaming.
        retries: recovery-policy retry reads issued after an empty read.
        gaps_bridged: inter-sample gaps larger than 1.5x the nominal
            interval that were bridged by energy integration.
        stalls: times the stream was declared stalled (retries exhausted
            or the realtime watchdog tripped).
    """

    __slots__ = ("registry", "device", "_counters")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        device: str | None = None,
    ) -> None:
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        object.__setattr__(self, "device", device)
        labels = {"device": device} if device else {}
        object.__setattr__(
            self,
            "_counters",
            {
                field: self.registry.counter(name, help=help_text, **labels)
                for field, (name, help_text) in HEALTH_COUNTERS.items()
            },
        )

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            return counters[name].value
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        counters = object.__getattribute__(self, "_counters")
        counter = counters.get(name)
        if counter is None:
            raise AttributeError(f"StreamHealth has no counter {name!r}")
        counter.inc(value - counter.value)  # raises if the counter would drop

    @property
    def degraded(self) -> bool:
        """True if the stream needed any recovery at all."""
        return bool(
            self.packets_dropped
            or self.empty_reads
            or self.retries
            or self.gaps_bridged
            or self.stalls
        )

    def as_dict(self) -> dict[str, int]:
        return {field: counter.value for field, counter in self._counters.items()}

    @staticmethod
    def counters_in(
        registry: MetricsRegistry, device: str | None = None
    ) -> dict[str, int]:
        """The health counters as recorded in a registry (0 if absent).

        With ``device`` the per-device labelled series are read instead
        of the unlabelled ones.  The equivalence tests compare this
        against :meth:`as_dict` to prove the view and the registry never
        diverge.
        """
        labels = {"device": device} if device else {}
        return {
            field: registry.value(name, **labels)
            for field, (name, _) in HEALTH_COUNTERS.items()
        }

    def __eq__(self, other) -> bool:
        if isinstance(other, StreamHealth):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"StreamHealth({inner})"

    def summary(self) -> str:
        """One-line counter summary for diagnostics and CLI output."""
        return (
            f"{self.packets_decoded} packets decoded, "
            f"{self.packets_dropped} dropped/resynced, "
            f"{self.samples_decoded} samples, "
            f"{self.gaps_bridged} gaps bridged, "
            f"{self.empty_reads} empty reads, "
            f"{self.retries} retries, "
            f"{self.stalls} stalls"
        )
