"""Stream-health accounting for the sample path.

A real PowerSensor3 deployment rides a noisy USB-serial link: bytes get
dropped, packets arrive corrupted, the device occasionally stalls.  The
host library survives all of that (it resynchronises on the first-byte
flag and retries empty reads), but silent recovery is only acceptable if
it is *accounted for* — a measurement that bridged a hundred gaps is not
the same measurement as a clean one.  :class:`StreamHealth` is the single
counter block every layer of the receive path writes into:

* the sample sources count bytes read, packets decoded and packets
  dropped during resynchronisation,
* :class:`~repro.core.powersensor.PowerSensor` counts empty reads, retry
  attempts, bridged inter-sample gaps and declared stalls.

The CLI tools surface these counters when a run degraded, and the
robustness tests assert that every injected fault lands in exactly one of
them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class StreamHealth:
    """Counters describing how cleanly the sample stream is arriving.

    Attributes:
        bytes_read: raw device->host bytes handed to the decoder.
        packets_decoded: 2-byte packets successfully parsed.
        packets_dropped: packets lost to resynchronisation (dangling
            first/second bytes discarded while scanning for a frame).
        samples_decoded: complete sample sets folded into the measurement.
        empty_reads: reads that yielded no samples while streaming.
        retries: recovery-policy retry reads issued after an empty read.
        gaps_bridged: inter-sample gaps larger than 1.5x the nominal
            interval that were bridged by energy integration.
        stalls: times the stream was declared stalled (retries exhausted
            or the realtime watchdog tripped).
    """

    bytes_read: int = 0
    packets_decoded: int = 0
    packets_dropped: int = 0
    samples_decoded: int = 0
    empty_reads: int = 0
    retries: int = 0
    gaps_bridged: int = 0
    stalls: int = 0

    @property
    def degraded(self) -> bool:
        """True if the stream needed any recovery at all."""
        return bool(
            self.packets_dropped
            or self.empty_reads
            or self.retries
            or self.gaps_bridged
            or self.stalls
        )

    def as_dict(self) -> dict[str, int]:
        return asdict(self)

    def summary(self) -> str:
        """One-line counter summary for diagnostics and CLI output."""
        return (
            f"{self.packets_decoded} packets decoded, "
            f"{self.packets_dropped} dropped/resynced, "
            f"{self.samples_decoded} samples, "
            f"{self.gaps_bridged} gaps bridged, "
            f"{self.empty_reads} empty reads, "
            f"{self.retries} retries, "
            f"{self.stalls} stalls"
        )
