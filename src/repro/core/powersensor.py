"""The PowerSensor host class: connect, stream, snapshot, dump, mark.

Mirrors the real toolkit's ``PowerSensor`` C++ class (paper, Section
III-C): on construction it connects to the device and reads the sensor
configuration; it then tracks cumulative energy per sensor pair from the
20 kHz stream.  Interval mode is :meth:`read` + the state arithmetic in
:mod:`repro.core.state`; continuous mode is :meth:`dump`.

Where the real library runs a lightweight receive thread against wall
time, the simulation is pull-based: :meth:`pump` advances simulated time.
An optional realtime driver (:mod:`repro.core.realtime`) provides the
threaded behaviour for the interactive CLI tools.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path

import numpy as np

from repro.common.errors import (
    ConfigurationError,
    MeasurementError,
    StreamStalledError,
)
from repro.common.retry import DEFAULT_RECOVERY, RecoveryPolicy
from repro.core.dump import DumpWriter
from repro.core.health import StreamHealth
from repro.core.sources import ProtocolSampleSource, SampleBlock, SampleSource
from repro.core.state import PAIRS, State
from repro.hardware.eeprom import SENSORS, SensorConfig
from repro.observability import MetricsRegistry, Tracer
from repro.transport.faults import FaultySerialLink
from repro.transport.link import VirtualSerialLink

#: Buckets for the per-recovery retry-count histogram (retries are small
#: integers, so unit-width bounds keep the quantiles exact).
RETRY_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)


# Re-exported for compatibility: RecoveryPolicy now lives in
# repro.common.retry so transport/ and server/ can use it without core.
__all__ = ["DEFAULT_RECOVERY", "PowerSensor", "RecoveryPolicy", "RETRY_BUCKETS"]


class PowerSensor:
    """Host-side handle to a (simulated) PowerSensor3 device."""

    def __init__(
        self,
        device: VirtualSerialLink | FaultySerialLink | SampleSource,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    ) -> None:
        if isinstance(device, (VirtualSerialLink, FaultySerialLink)):
            self.source: SampleSource = ProtocolSampleSource(device)
        else:
            self.source = device
        self.device: str | None = getattr(self.source, "device", None)
        self.recovery = recovery
        self.health: StreamHealth = getattr(self.source, "health", None) or StreamHealth()
        self.registry: MetricsRegistry = (
            getattr(self.source, "registry", None) or self.health.registry
        )
        self.tracer: Tracer = getattr(self.source, "tracer", None) or Tracer(
            self.registry
        )
        device = getattr(self.source, "device", None)
        labels = {"device": device} if device else {}
        self._retry_histogram = self.registry.histogram(
            "recovery_retries_per_event",
            buckets=RETRY_BUCKETS,
            help="retry reads issued per empty-read recovery event",
            **labels,
        )
        self._backoff_histogram = self.registry.histogram(
            "recovery_backoff_span_seconds",
            buckets=(1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.05, 0.1, 0.5),
            help="stream-time span of the final (widest) retry read",
            **labels,
        )
        self._pump_residual = 0.0  # fractional samples carried across pump_seconds
        self._energy = np.zeros(PAIRS)
        self._last_current = np.zeros(PAIRS)
        self._last_voltage = np.zeros(PAIRS)
        self._time = 0.0
        self._prev_time: float | None = None
        self._marker_count = 0
        self._marker_chars: deque[str] = deque()
        self.marker_log: list[tuple[float, str]] = []
        self._dump: DumpWriter | None = None
        self._store = None  # TelemetryStore while record() is active
        self._owns_store = False
        self.samples_seen = 0
        self.source.start()

    # ------------------------------------------------------------------ #
    # Streaming                                                          #
    # ------------------------------------------------------------------ #

    @property
    def sample_rate(self) -> float:
        return self.source.sample_rate

    @property
    def sample_interval(self) -> float:
        return 1.0 / self.source.sample_rate

    def pump(self, n_samples: int) -> SampleBlock:
        """Advance the stream by ``n_samples`` and fold them into the state.

        An empty read while the device is streaming engages the recovery
        policy: bounded re-reads with widening spans, then
        :class:`StreamStalledError` if the stream stays silent.
        """
        block = self._pump_read(n_samples)
        self._process(block)
        return block

    def _pump_read(self, n_samples: int) -> SampleBlock:
        """The read half of :meth:`pump`: block read + empty-read recovery.

        Split out so the fleet's vectorised ``read_all`` can gather every
        member's block before folding them all in one pass.
        """
        block = self.source.read_block(n_samples)
        if (
            len(block) == 0
            and n_samples > 0
            and getattr(self.source, "streaming", False)
        ):
            self.health.empty_reads += 1
            if self.recovery is not None:
                block = self._retry_read(n_samples)
        return block

    def _retry_read(self, n_samples: int) -> SampleBlock:
        policy = self.recovery
        cap = max(int(policy.max_retry_seconds * self.sample_rate), 1)
        span = n_samples
        attempts = 0
        try:
            for _ in range(policy.max_retries):
                span = min(max(int(span * policy.backoff_factor), 1), cap)
                attempts += 1
                self.health.retries += 1
                block = self.source.read_block(span)
                if len(block):
                    return block
            self.health.stalls += 1
            raise StreamStalledError(
                f"stream produced no samples after {policy.max_retries} retries "
                f"(device stalled or all data lost)"
            )
        finally:
            self._retry_histogram.observe(attempts)
            self._backoff_histogram.observe(span / self.sample_rate)

    def pump_seconds(self, seconds: float) -> SampleBlock:
        """Advance the stream by a duration of simulated time.

        The fractional-sample remainder is carried across calls, so
        repeated short pumps cover exactly the requested total duration
        instead of accumulating per-call rounding drift.
        """
        if seconds < 0:
            raise MeasurementError(f"cannot pump a negative duration ({seconds} s)")
        return self.pump(self._seconds_to_samples(seconds))

    def _seconds_to_samples(self, seconds: float) -> int:
        """Duration → sample count with the fractional-remainder carry."""
        exact = seconds * self.sample_rate + self._pump_residual
        n = max(int(round(exact)), 0)
        self._pump_residual = exact - n
        return n

    def _process(self, block: SampleBlock) -> None:
        n = len(block)
        if n == 0:
            return
        power = block.values[:, 0::2] * block.values[:, 1::2]  # (n, PAIRS)
        if self._prev_time is None:
            first_dt = self.sample_interval
        else:
            first_dt = block.times[0] - self._prev_time
        dts = np.empty(n)
        dts[0] = max(first_dt, 0.0)
        if n > 1:
            dts[1:] = np.diff(block.times)
        # Samples lost to faults show up as oversized inter-sample gaps;
        # integration bridges them, but the bridging is accounted for.
        gaps = int(np.count_nonzero(dts > 1.5 * self.sample_interval))
        self._fold_segment(block, power, dts, gaps)

    def _fold_segment(
        self, block: SampleBlock, power: np.ndarray, dts: np.ndarray, gaps: int
    ) -> None:
        """Fold one block whose power/dts/gap count were precomputed.

        :meth:`pump` computes them per block; the fleet's vectorised
        ``read_all`` computes them for every member in one concatenated
        pass and hands each member its slice — bitwise-identical either
        way (the slices are contiguous row ranges, so the ``power.T @
        dts`` accumulation sees the same memory layout).
        """
        n = len(block)
        if n == 0:
            return
        currents = block.values[:, 0::2]
        volts = block.values[:, 1::2]
        if gaps:
            self.health.gaps_bridged += gaps
        self._energy += power.T @ dts
        self._last_current = currents[-1].copy()
        self._last_voltage = volts[-1].copy()
        self._prev_time = float(block.times[-1])
        self._time = float(block.times[-1])
        self.samples_seen += n

        marked = np.flatnonzero(block.markers)
        for idx in marked:
            char = self._marker_chars.popleft() if self._marker_chars else "M"
            self._marker_count += 1
            self.marker_log.append((float(block.times[idx]), char))
            if self._dump is not None:
                self._dump.write_marker(float(block.times[idx]), char)

        if self._dump is not None:
            pair_mask = self._enabled_pairs()
            self._dump.write_samples(
                block.times, volts[:, pair_mask], currents[:, pair_mask]
            )
        if self._store is not None:
            self._store.append(block)

    def _enabled_pairs(self) -> np.ndarray:
        configs = self.source.configs
        return np.array(
            [configs[2 * p].enabled and configs[2 * p + 1].enabled for p in range(PAIRS)]
        )

    # ------------------------------------------------------------------ #
    # Interval mode                                                      #
    # ------------------------------------------------------------------ #

    def read(self) -> State:
        """Snapshot the accumulated measurement (interval mode)."""
        return State(
            time=self._time,
            consumed_energy=tuple(self._energy),
            current=tuple(self._last_current),
            voltage=tuple(self._last_voltage),
            marker_count=self._marker_count,
        )

    def total_energy(self, pair: int = -1) -> float:
        """Cumulative joules since connect (one pair, or all for -1)."""
        if pair == -1:
            return float(self._energy.sum())
        if not 0 <= pair < PAIRS:
            raise MeasurementError(f"pair {pair} out of range")
        return float(self._energy[pair])

    # ------------------------------------------------------------------ #
    # Continuous mode                                                    #
    # ------------------------------------------------------------------ #

    def dump(self, path: str | Path | None) -> None:
        """Start recording all samples to ``path``; ``None`` stops."""
        if self._dump is not None:
            self._dump.close()
            self._dump = None
        if path is None:
            return
        configs = self.source.configs
        pair_names = [
            configs[2 * p].pair_name or f"pair{p}"
            for p in range(PAIRS)
            if configs[2 * p].enabled and configs[2 * p + 1].enabled
        ]
        self._dump = DumpWriter(path, pair_names, self.sample_rate)

    def record(self, store) -> None:
        """Start recording all samples to a telemetry store; ``None`` stops.

        ``store`` may be a directory path (a
        :class:`~repro.store.store.TelemetryStore` is created there and
        owned — sealed and closed — by this sensor) or an already-open
        store the caller owns.  The binary twin of :meth:`dump`: every
        pumped block is appended, markers and all, and can be queried or
        re-streamed through ``store://`` afterwards.
        """
        if self._store is not None:
            if self._owns_store:
                self._store.close()
            else:
                self._store.seal()
            self._store = None
            self._owns_store = False
        if store is None:
            return
        if isinstance(store, (str, Path)):
            from repro.store import TelemetryStore

            configs = self.source.configs
            pair_names = [
                configs[2 * p].pair_name or f"pair{p}"
                for p in range(PAIRS)
                if configs[2 * p].enabled and configs[2 * p + 1].enabled
            ]
            store = TelemetryStore(
                store,
                device=getattr(self.source, "device", None),
                sample_rate=float(self.sample_rate),
                pair_names=pair_names,
            )
            self._owns_store = True
        self._store = store

    def mark(self, char: str = "M") -> None:
        """Place a marker, time-synced with the device, in the stream."""
        if len(char) != 1:
            raise MeasurementError("marker must be a single character")
        self._marker_chars.append(char)
        self.source.mark()

    # ------------------------------------------------------------------ #
    # Configuration                                                      #
    # ------------------------------------------------------------------ #

    def get_config(self, sensor: int) -> SensorConfig:
        if not 0 <= sensor < SENSORS:
            raise ConfigurationError(f"sensor {sensor} out of range")
        return self.source.configs[sensor]

    def set_config(self, sensor: int, **changes) -> SensorConfig:
        """Update one sensor's stored conversion values on the device.

        Streaming is paused for the EEPROM write and resumed, as the real
        library does.
        """
        if not 0 <= sensor < SENSORS:
            raise ConfigurationError(f"sensor {sensor} out of range")
        from dataclasses import replace

        configs = list(self.source.configs)
        configs[sensor] = replace(configs[sensor], **changes)
        self.source.stop()
        self.source.write_configs(configs)
        self.source.start()
        return configs[sensor]

    def close(self) -> None:
        self.dump(None)
        self.record(None)
        self.source.close()

    def __enter__(self) -> "PowerSensor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
