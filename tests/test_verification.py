"""Calibration verification sweep."""

import pytest

from repro.calibration import verify_all, verify_slot
from repro.common.errors import CalibrationError
from repro.core.setup import SimulatedSetup


def test_calibrated_module_passes():
    setup = SimulatedSetup(
        ["pcie_slot_12v"], seed=17, direct=True, calibration_samples=32 * 1024
    )
    report = verify_slot(setup.baseboard, setup.eeprom, 0, n_samples=4096)
    assert report.passed
    assert report.worst_mean_error < 0.25 * report.bound_watts
    assert len(report.points) == 5
    setup.close()


def test_uncalibrated_module_with_bad_offset_fails():
    setup = SimulatedSetup(
        ["pcie_slot_12v"], seed=18, direct=True, calibrate=False
    )
    # Inject a gross miscalibration: a 0.5 A offset error in the stored vref.
    setup.eeprom.update(0, vref=1.65 + 0.5 * 0.12)
    report = verify_slot(setup.baseboard, setup.eeprom, 0, n_samples=4096)
    assert not report.passed
    assert report.worst_mean_error > 0.25 * report.bound_watts
    setup.close()


def test_verification_sweep_covers_full_range():
    setup = SimulatedSetup(["usbc"], seed=19, direct=True, calibration_samples=16 * 1024)
    report = verify_slot(setup.baseboard, setup.eeprom, 0, n_points=7, n_samples=2048)
    amps = [p.amps for p in report.points]
    assert amps[0] == pytest.approx(-10.0)
    assert amps[-1] == pytest.approx(10.0)
    setup.close()


def test_verify_empty_slot_raises():
    setup = SimulatedSetup(["pcie_slot_12v"], direct=True, calibration_samples=4096)
    with pytest.raises(CalibrationError):
        verify_slot(setup.baseboard, setup.eeprom, 3)
    setup.close()


def test_verify_all_covers_slots():
    setup = SimulatedSetup(
        ["pcie_slot_12v", None, "usbc"],
        seed=20,
        direct=True,
        calibration_samples=16 * 1024,
    )
    reports = verify_all(setup.baseboard, setup.eeprom, n_samples=2048)
    assert [r.slot for r in reports] == [0, 2]
    assert all(r.passed for r in reports)
    setup.close()


def test_verification_restores_rail():
    setup = SimulatedSetup(["pcie_slot_12v"], direct=True, calibration_samples=4096)
    from repro.dut.base import ConstantRail

    rail = ConstantRail(12.0, 1.0)
    setup.connect(0, rail)
    verify_slot(setup.baseboard, setup.eeprom, 0, n_samples=1024)
    assert setup.baseboard.populated_slots()[0].rail is rail
    setup.close()


def test_psconfig_verify_flag(capsys):
    from repro.cli import psconfig

    args = ["--direct", "--modules", "pcie_slot_12v", "--dut", "none", "--verify"]
    assert psconfig.main(args) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "budget" in out
