"""Pin the vectorised decode path to the scalar reference implementation.

``StreamDecoder`` is the reference: byte-at-a-time, obviously correct.
These tests fuzz ``decode_block``/``BlockDecoder`` against it — same
events, same resync/packet accounting, for every chunking of the input —
and then pin the vectorised ``ProtocolSampleSource`` to the scalar source
on byte-identical wire streams, clean and fault-injected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.health import StreamHealth
from repro.core.setup import SimulatedSetup
from repro.dut.instruments import ElectronicLoad, LabSupply, LoadedSupplyRail
from repro.firmware.protocol import (
    BlockDecoder,
    StreamDecoder,
    decode_block,
    encode_sensor_packet,
    encode_timestamp_packet,
)


def _reference(chunks: list[bytes]) -> tuple[list, int, int, int | None]:
    """Events and counters from the scalar decoder fed the same chunks."""
    dec = StreamDecoder()
    events = []
    for chunk in chunks:
        events.extend(dec.feed(chunk))
    return events, dec.resync_count, dec.packet_count, dec._pending_first


def _sample_stream(markers: bool = True) -> bytes:
    """A well-formed stream: timestamp + sensors 0..3 per sample set."""
    out = bytearray()
    for i in range(12):
        out += encode_timestamp_packet(50 * i)
        for sensor in range(4):
            value = (37 * i + 100 * sensor) % 1024
            out += encode_sensor_packet(
                sensor, value, marker=markers and sensor == 0 and i % 5 == 0
            )
    return bytes(out)


def _corrupt(data: bytes) -> bytes:
    """Deterministically mangle a stream: drops, flips, garbage runs."""
    raw = bytearray(data)
    del raw[7]  # orphan a second byte
    del raw[40]
    raw[21] ^= 0x80  # flip a framing bit
    raw[55] ^= 0x80
    raw[33:33] = b"\x00\x7f\x00"  # dangling second bytes
    raw[10:10] = b"\xff\xff"  # back-to-back first bytes
    return bytes(raw)


# --------------------------------------------------------------------- #
# decode_block (stateless core)                                         #
# --------------------------------------------------------------------- #


def test_decode_block_clean_stream_matches_scalar():
    data = _sample_stream()
    block, pending, resyncs = decode_block(data)
    ref_events, ref_resyncs, ref_packets, ref_pending = _reference([data])
    assert block.events() == ref_events
    assert len(block) == ref_packets
    assert resyncs == ref_resyncs == 0
    assert pending is ref_pending is None


def test_decode_block_corrupted_stream_matches_scalar():
    data = _corrupt(_sample_stream())
    block, pending, resyncs = decode_block(data)
    ref_events, ref_resyncs, ref_packets, ref_pending = _reference([data])
    assert block.events() == ref_events
    assert len(block) == ref_packets
    assert resyncs == ref_resyncs > 0
    assert pending == ref_pending


def test_decode_block_empty_and_ndarray_inputs():
    block, pending, resyncs = decode_block(b"")
    assert len(block) == 0 and pending is None and resyncs == 0
    block, pending, resyncs = decode_block(b"", pending_first=0x85)
    assert len(block) == 0 and pending == 0x85 and resyncs == 0

    data = _sample_stream()
    as_bytes = decode_block(data)
    as_array = decode_block(np.frombuffer(data, dtype=np.uint8))
    assert as_bytes[0].events() == as_array[0].events()
    assert as_bytes[1:] == as_array[1:]


def test_decode_block_pending_first_chains_across_calls():
    """Manually threading pending_first equals one scalar pass."""
    data = _corrupt(_sample_stream())
    for split in (1, 7, 20, len(data) - 1):
        events, resyncs, pending = [], 0, None
        for chunk in (data[:split], data[split:]):
            block, pending, r = decode_block(chunk, pending)
            events.extend(block.events())
            resyncs += r
        ref_events, ref_resyncs, _, ref_pending = _reference([data])
        assert events == ref_events
        assert resyncs == ref_resyncs
        assert pending == ref_pending


@pytest.mark.parametrize("seed", range(10))
def test_decode_block_random_byte_soup_matches_scalar(seed):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=int(rng.integers(0, 400)), dtype=np.uint8).tobytes()
    block, pending, resyncs = decode_block(data)
    ref_events, ref_resyncs, ref_packets, ref_pending = _reference([data])
    assert block.events() == ref_events
    assert len(block) == ref_packets
    assert resyncs == ref_resyncs
    assert pending == ref_pending


# --------------------------------------------------------------------- #
# BlockDecoder (stateful wrapper)                                       #
# --------------------------------------------------------------------- #


def _assert_block_decoder_matches(chunks: list[bytes]) -> None:
    vec = BlockDecoder()
    events = []
    for chunk in chunks:
        events.extend(vec.feed(chunk))
    ref_events, ref_resyncs, ref_packets, ref_pending = _reference(chunks)
    assert events == ref_events
    assert vec.resync_count == ref_resyncs
    assert vec.packet_count == ref_packets
    assert vec._pending_first == ref_pending


def test_block_decoder_split_at_every_offset():
    """Chunk boundaries anywhere — mid-packet, mid-garbage — change nothing."""
    data = _corrupt(_sample_stream())
    for split in range(len(data) + 1):
        _assert_block_decoder_matches([data[:split], data[split:]])


@pytest.mark.parametrize("seed", range(10))
def test_block_decoder_random_chunking_fuzz(seed):
    rng = np.random.default_rng(1000 + seed)
    soup = rng.integers(0, 256, size=600, dtype=np.uint8).tobytes()
    data = _sample_stream() + soup[:300] + _sample_stream() + soup[300:]
    chunks, i = [], 0
    while i < len(data):
        n = int(rng.integers(0, 9))  # zero-length chunks included
        chunks.append(data[i : i + n])
        i += n
    _assert_block_decoder_matches(chunks)


def test_block_decoder_reset_clears_state():
    dec = BlockDecoder()
    dec.decode(b"\xff")  # leaves a pending first byte
    assert dec._pending_first == 0xFF
    dec.reset()
    assert dec._pending_first is None
    assert dec.resync_count == 0
    assert dec.packet_count == 0
    block = dec.decode(_sample_stream())
    assert len(block) == dec.packet_count


# --------------------------------------------------------------------- #
# Vectorised vs scalar ProtocolSampleSource                             #
# --------------------------------------------------------------------- #

_MODULES = ["pcie_slot_12v", "pcie8pin", "pcie_slot_3v3", "usbc"]
_READS = (7, 64, 3, 128, 1, 500, 9)


def _collect(n_pairs: int, faults: str | None, seed: int, vectorized: bool):
    """Run one source over a deterministic read schedule; return its output."""
    setup = SimulatedSetup(
        _MODULES[:n_pairs],
        seed=123,
        calibration_samples=1024,
        faults=faults,
        fault_seed=seed,
        vectorized=vectorized,
    )
    load = ElectronicLoad()
    load.set_current(4.0)
    setup.connect(0, LoadedSupplyRail(LabSupply(12.0), load))
    source = setup.source
    source.start()
    blocks = []
    for i, n in enumerate(_READS):
        if i % 2:
            source.mark()
        blocks.append(source.read_block(n))
    source.stop()
    times = np.concatenate([b.times for b in blocks])
    values = np.concatenate([b.values for b in blocks])
    markers = np.concatenate([b.markers for b in blocks])
    health = source.health.as_dict()
    # StreamHealth is a view over registry counters: both sides of the
    # view must agree byte-for-byte in every fuzzed fault scenario.
    assert health == StreamHealth.counters_in(setup.registry)
    enabled = blocks[0].enabled
    setup.close()
    return times, values, markers, health, enabled


@pytest.mark.parametrize(
    "n_pairs,faults,seed",
    [
        (1, None, 0),
        (2, None, 0),
        (4, None, 0),
        (1, "drop:0.01", 0),
        (1, "drop:0.01", 1),
        (2, "flip:0.005", 2),
        (4, "partial:0.3", 3),
        (2, "drop:0.01, flip:0.005", 4),
        (1, "burst:0.002", 0),
        (2, "stall:0.01", 1),
        (4, "drop:0.02, partial:0.5", 2),
    ],
)
def test_vectorized_source_matches_scalar(n_pairs, faults, seed):
    """Byte-identical wire streams must decode byte-identically.

    Two independent benches with the same seeds produce the same wire
    bytes (fault injection included); the vectorised and scalar decoders
    must then agree exactly — samples, markers, and health accounting.
    """
    v_times, v_values, v_markers, v_health, v_enabled = _collect(
        n_pairs, faults, seed, vectorized=True
    )
    s_times, s_values, s_markers, s_health, s_enabled = _collect(
        n_pairs, faults, seed, vectorized=False
    )
    assert np.array_equal(v_enabled, s_enabled)
    assert np.array_equal(v_times, s_times)
    assert np.array_equal(v_values, s_values)
    assert np.array_equal(v_markers, s_markers)
    assert v_health == s_health


def test_vectorized_source_marker_interleaving_matches_scalar():
    """Markers land on the same sample index on both decode paths."""
    results = []
    for vectorized in (True, False):
        setup = SimulatedSetup(
            _MODULES[:2],
            seed=7,
            calibration_samples=1024,
            vectorized=vectorized,
        )
        source = setup.source
        source.start()
        marked = []
        for n in (40, 25, 60, 10):
            source.mark()
            block = source.read_block(n)
            marked.append(np.flatnonzero(block.markers))
        source.stop()
        setup.close()
        results.append(marked)
    vec, ref = results
    assert all(np.array_equal(a, b) for a, b in zip(vec, ref))
    assert sum(a.size for a in vec) == 4  # one marker attached per read
