"""Property-based tests, second batch: bench objects and host invariants."""

import io

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dump import DumpReader, DumpWriter
from repro.dut.base import SegmentRail
from repro.dut.cpu import CpuSpec
from repro.dut.instruments import ElectronicLoad
from repro.storage.fio import parse_size
from tests.conftest import make_loaded_setup

# --------------------------------------------------------------------- #
# Electronic load                                                        #
# --------------------------------------------------------------------- #

step_lists = st.lists(
    st.tuples(st.floats(0.001, 10.0), st.floats(-10.0, 10.0)),
    min_size=1,
    max_size=10,
)


@given(step_lists)
def test_load_breakpoints_are_time_ordered(steps):
    load = ElectronicLoad()
    t = 0.0
    for dt, amps in steps:
        t += dt
        load.set_current(amps, at_time=t)
    times, _ = load._breakpoints()
    assert (np.diff(times) >= 0).all()


@given(step_lists, st.floats(0.0, 50.0))
def test_load_current_between_setpoint_extremes(steps, query):
    load = ElectronicLoad()
    t = 0.0
    values = [0.0]
    for dt, amps in steps:
        t += dt
        load.set_current(amps, at_time=t)
        values.append(amps)
    current = load.current_at(np.array([query]))[0]
    assert min(values) - 1e-9 <= current <= max(values) + 1e-9


# --------------------------------------------------------------------- #
# Segment rail                                                           #
# --------------------------------------------------------------------- #

segments = st.lists(
    st.tuples(st.floats(0.001, 1.0), st.floats(0.001, 1.0), st.floats(1.0, 500.0)),
    min_size=1,
    max_size=8,
)


@given(segments)
def test_segment_rail_reads_scheduled_levels(gaps):
    rail = SegmentRail(volts=12.0, idle_watts=7.0)
    t = 0.0
    spans = []
    for gap, duration, watts in gaps:
        start = t + gap
        stop = start + duration
        rail.schedule(start, stop, watts)
        spans.append((start, stop, watts))
        t = stop
    for start, stop, watts in spans:
        mid = (start + stop) / 2
        volts, amps = rail.sample_uniform(mid, 1.0, 1)
        assert np.isclose(volts[0] * amps[0], watts, rtol=1e-12)
    # Before the first segment the rail idles.
    volts, amps = rail.sample_uniform(spans[0][0] - 1e-4, 1.0, 1)
    assert np.isclose(volts[0] * amps[0], 7.0, rtol=1e-12)


# --------------------------------------------------------------------- #
# Dump files                                                             #
# --------------------------------------------------------------------- #


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(2, 40),
    st.integers(1, 3),
    st.floats(0.1, 30.0),
    st.floats(0.01, 20.0),
)
def test_dump_roundtrip_random_shapes(n, pairs, volts, amps):
    times = np.arange(n) * 5e-5
    v = np.full((n, pairs), volts)
    i = np.full((n, pairs), amps)
    buffer = io.StringIO()
    writer = DumpWriter(buffer, [f"p{k}" for k in range(pairs)], 20_000.0)
    writer.write_samples(times, v, i)
    buffer.seek(0)
    data = DumpReader.read(buffer)
    assert data.times.size == n
    assert data.volts.shape == (n, pairs)
    assert np.allclose(data.volts, volts, atol=1e-4)
    assert np.allclose(data.amps, amps, atol=1e-4)


# --------------------------------------------------------------------- #
# fio sizes                                                              #
# --------------------------------------------------------------------- #


@given(st.integers(1, 10_000), st.sampled_from(["", "k", "m"]))
def test_parse_size_scales(value, suffix):
    scale = {"": 1, "k": 1024, "m": 1024**2}[suffix]
    assert parse_size(f"{value}{suffix}") == value * scale


# --------------------------------------------------------------------- #
# CPU power model                                                        #
# --------------------------------------------------------------------- #


@given(st.integers(0, 16))
def test_cpu_power_within_envelope(cores):
    spec = CpuSpec()
    power = spec.package_power(cores)
    assert spec.idle_watts <= power <= spec.tdp_watts


@given(st.integers(0, 15))
def test_cpu_power_monotone_step(cores):
    spec = CpuSpec()
    assert spec.package_power(cores + 1) >= spec.package_power(cores) - 1e-9


# --------------------------------------------------------------------- #
# Host energy accounting                                                 #
# --------------------------------------------------------------------- #


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(50, 400), min_size=2, max_size=5))
def test_energy_additive_over_chunked_pumping(chunks):
    """Pumping in chunks accumulates the same energy as one big pump.

    Chunked noise generation is statistically (not bitwise) equivalent to
    one draw, so the comparison allows the noise-mean tolerance.
    """
    chunked = make_loaded_setup(seed=99)
    whole = make_loaded_setup(seed=99)
    for n in chunks:
        chunked.ps.pump(n)
    whole.ps.pump(sum(chunks))
    assert np.isclose(
        chunked.ps.total_energy(), whole.ps.total_energy(), rtol=2e-3
    )
    assert chunked.ps.samples_seen == whole.ps.samples_seen
    chunked.close()
    whole.close()
