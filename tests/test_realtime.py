"""Realtime driver: background pumping at wall-clock pace."""

import time

import pytest

from repro.core.realtime import RealtimeDriver
from repro.core.state import joules, seconds
from tests.conftest import make_loaded_setup


def test_driver_pumps_in_background():
    setup = make_loaded_setup(amps=4.0)
    with RealtimeDriver(setup.ps, chunk_seconds=0.01) as driver:
        before = driver.read()
        time.sleep(0.15)
        after = driver.read()
    assert seconds(before, after) > 0.05
    assert joules(before, after) > 0
    setup.close()


def test_time_scale_accelerates_simulation():
    setup = make_loaded_setup(amps=4.0)
    with RealtimeDriver(setup.ps, time_scale=10.0, chunk_seconds=0.01) as driver:
        time.sleep(0.12)
        state = driver.read()
    # ~0.12 s of wall time at 10x => >= ~0.5 s simulated (scheduling slack).
    assert state.time > 0.4
    setup.close()


def test_driver_mark_thread_safe():
    setup = make_loaded_setup()
    with RealtimeDriver(setup.ps, chunk_seconds=0.01) as driver:
        driver.mark("A")
        time.sleep(0.08)
    assert [c for _, c in setup.ps.marker_log] == ["A"]
    setup.close()


def test_double_start_rejected():
    setup = make_loaded_setup()
    driver = RealtimeDriver(setup.ps)
    driver.start()
    with pytest.raises(RuntimeError):
        driver.start()
    driver.stop()
    setup.close()


def test_stop_is_idempotent():
    setup = make_loaded_setup()
    driver = RealtimeDriver(setup.ps).start()
    driver.stop()
    driver.stop()
    setup.close()


def test_invalid_time_scale():
    setup = make_loaded_setup()
    with pytest.raises(ValueError):
        RealtimeDriver(setup.ps, time_scale=0.0)
    setup.close()


# --------------------------------------------------------------------- #
# Watchdog and pump-thread failure handling                             #
# --------------------------------------------------------------------- #

import threading

from repro.common.errors import StreamStalledError, TransportError
from repro.core.health import StreamHealth


class _FakePowerSensor:
    """Minimal PowerSensor stand-in with a controllable pump."""

    def __init__(self, pump):
        self._pump = pump
        self.health = StreamHealth()

    def pump_seconds(self, seconds):
        self._pump(seconds)

    def read(self):
        return "state"

    def mark(self, char="M"):
        pass


def test_pump_thread_error_surfaces_in_read():
    def pump(_seconds):
        raise TransportError("link is closed")

    driver = RealtimeDriver(_FakePowerSensor(pump), chunk_seconds=0.01)
    driver.start()
    time.sleep(0.05)
    assert driver.failed
    with pytest.raises(TransportError):
        driver.read()
    driver.stop()


def test_watchdog_detects_stalled_pump():
    release = threading.Event()

    def pump(_seconds):
        release.wait(2.0)  # a wedged blocking read

    driver = RealtimeDriver(
        _FakePowerSensor(pump), chunk_seconds=0.01, watchdog_seconds=0.05
    )
    driver.start()
    time.sleep(0.12)
    with pytest.raises(StreamStalledError):
        driver.read()
    assert driver.ps.health.stalls >= 1
    release.set()
    driver.stop()


def test_watchdog_quiet_on_healthy_stream():
    setup = make_loaded_setup(amps=4.0)
    with RealtimeDriver(setup.ps, chunk_seconds=0.01, watchdog_seconds=0.5) as driver:
        time.sleep(0.1)
        state = driver.read()  # must not trip
    assert state.time > 0
    assert not driver.failed
    setup.close()


def test_invalid_watchdog_rejected():
    setup = make_loaded_setup()
    with pytest.raises(ValueError):
        RealtimeDriver(setup.ps, watchdog_seconds=0.0)
    setup.close()
