"""FTL strategy tests: the page-map pin and per-policy behaviour."""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import MIB
from repro.dut.ssd import Ssd, SsdCounters, SsdSpec
from repro.ftl import (
    FTL_POLICIES,
    CompressedMapFtl,
    FtlCounters,
    GroupMapFtl,
    HybridDeltaFtl,
    PageMapFtl,
    create_ftl,
)
from repro.observability import MetricsRegistry
from repro.storage.engine import IoEngine, precondition
from repro.storage.fio import FioJob

PIN = json.loads(
    (Path(__file__).parent / "data" / "ftl_page_pin.json").read_text()
)


def _sha(array) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def small_spec(mib=16) -> SsdSpec:
    return SsdSpec(logical_bytes=mib * MIB)


# ---------------------------------------------------------------------- #
# The pin: ftl="page" is the pre-refactor Ssd, bit for bit               #
# ---------------------------------------------------------------------- #


class TestPageMapPin:
    """The default policy reproduces the pre-refactor state exactly.

    The fixture was generated from the tree *before* the strategy
    extraction; these hashes failing means the refactor changed
    behaviour, not just structure.
    """

    def test_churn_workload_state_is_bit_identical(self):
        ssd = Ssd(SsdSpec(logical_bytes=64 * MIB), seed=0)
        rng = np.random.default_rng(42)
        ssd.write_pages(np.arange(ssd.spec.logical_pages))
        for _ in range(25):
            ssd.write_pages(rng.integers(0, ssd.spec.logical_pages, 2048))
        ssd.trim(np.arange(0, ssd.spec.logical_pages, 7))
        for _ in range(10):
            ssd.write_pages(rng.integers(0, ssd.spec.logical_pages, 1024))

        want = PIN["ftl"]
        assert _sha(ssd.l2p) == want["l2p_sha"]
        assert _sha(ssd.p2l) == want["p2l_sha"]
        assert _sha(ssd.valid_count) == want["valid_count_sha"]
        assert ssd.counters.host_pages_written == want["host_pages_written"]
        assert ssd.counters.gc_pages_relocated == want["gc_pages_relocated"]
        assert ssd.counters.blocks_erased == want["blocks_erased"]
        assert ssd.counters.gc_runs == want["gc_runs"]
        assert ssd.free_block_count == want["free_blocks"]
        assert ssd.mapped_pages == want["mapped_pages"]

    def test_engine_traces_are_bit_identical(self):
        ssd = Ssd(SsdSpec(logical_bytes=96 * MIB), seed=9)
        engine = IoEngine(ssd, seed=9)
        precondition(ssd, engine, bs="128k")
        ssd.idle_flush()

        out = engine.run(FioJob(rw="randwrite", bs="4k", iodepth=4, runtime_s=6.0))
        want = PIN["engine_write"]
        assert _sha(out.bandwidth) == want["bandwidth_sha"]
        assert _sha(out.power) == want["power_sha"]
        assert out.mean_bandwidth == pytest.approx(want["mean_bandwidth"])
        assert ssd.counters.write_amplification == pytest.approx(want["wa"])

        out = engine.run(FioJob(rw="randread", bs="64k", iodepth=4, runtime_s=1.0))
        want = PIN["engine_read"]
        assert _sha(out.bandwidth) == want["bandwidth_sha"]
        assert _sha(out.power) == want["power_sha"]
        assert _sha(out.latencies_s) == want["latencies_sha"]

        out = engine.run(FioJob(rw="randrw", bs="16k", rwmixread=70, runtime_s=1.0))
        want = PIN["engine_mixed"]
        assert _sha(out.bandwidth) == want["bandwidth_sha"]
        assert _sha(out.power) == want["power_sha"]


# ---------------------------------------------------------------------- #
# Registry / facade                                                      #
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_four_policies_registered(self):
        assert sorted(FTL_POLICIES) == ["compressed", "group", "hybrid", "page"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown FTL policy"):
            create_ftl("dft", small_spec())
        with pytest.raises(ConfigurationError):
            Ssd(small_spec(), ftl="nope")

    def test_ssd_accepts_policy_instance(self):
        policy = GroupMapFtl(small_spec(), group_pages=8)
        ssd = Ssd(small_spec(), ftl=policy)
        assert ssd.ftl is policy
        assert ssd.ftl_name == "group"

    def test_group_pages_validation(self):
        with pytest.raises(ConfigurationError):
            GroupMapFtl(small_spec(), group_pages=1)
        with pytest.raises(ConfigurationError):
            # Must divide pages_per_block (512).
            HybridDeltaFtl(small_spec(), group_pages=7)

    def test_counters_alias_kept(self):
        assert SsdCounters is FtlCounters


# ---------------------------------------------------------------------- #
# Accounting: map footprint and lookup overhead                          #
# ---------------------------------------------------------------------- #


class TestAccounting:
    def test_page_map_bytes_constant(self):
        ftl = PageMapFtl(small_spec())
        empty = ftl.map_bytes()
        ftl.write_pages(np.arange(4096))
        assert ftl.map_bytes() == empty == small_spec().logical_pages * 4

    def test_compressed_map_grows_with_fragmentation(self):
        ftl = CompressedMapFtl(small_spec())
        ftl.write_pages(np.arange(ftl.spec.logical_pages))
        sequential = ftl.map_bytes()
        rng = np.random.default_rng(3)
        ftl.write_pages(rng.permutation(ftl.spec.logical_pages)[:2048])
        assert ftl.map_bytes() > sequential

    def test_group_and_hybrid_maps_beat_page_map(self):
        spec = small_spec()
        page = PageMapFtl(spec)
        lpns = np.arange(spec.logical_pages)
        for cls in (GroupMapFtl, HybridDeltaFtl):
            ftl = cls(spec)
            ftl.write_pages(lpns)
            assert ftl.map_bytes() < page.map_bytes()

    def test_translate_charges_lookup_cost(self):
        for name, per_page in (("page", 1), ("group", 2), ("hybrid", 2)):
            ssd = Ssd(small_spec(), ftl=name)
            ssd.write_pages(np.arange(128))
            before = ssd.counters.lookup_ops
            ppns = ssd.translate(np.arange(64))
            assert ssd.counters.lookup_ops - before == 64 * per_page
            assert np.all(ppns >= 0)

    def test_compressed_lookup_cost_is_logarithmic(self):
        ftl = CompressedMapFtl(small_spec())
        ftl.write_pages(np.arange(ftl.spec.logical_pages))
        runs = ftl.run_count()
        expected = max(int(np.ceil(np.log2(runs + 1))), 1)
        assert ftl.lookup_cost(10) == 10 * expected


# ---------------------------------------------------------------------- #
# Write expansion: merges and compaction                                 #
# ---------------------------------------------------------------------- #


class TestWriteExpansion:
    def test_group_partial_write_merges_live_pages(self):
        ftl = GroupMapFtl(small_spec(), group_pages=16)
        ftl.write_pages(np.arange(16))  # whole group: no merge
        assert ftl.counters.merge_pages_relocated == 0
        ftl.write_pages(np.arange(4))  # partial overwrite: 12 merged
        assert ftl.counters.merge_pages_relocated == 12

    def test_group_merge_counts_as_internal_traffic(self):
        ssd = Ssd(small_spec(), ftl="group", ftl_options={"group_pages": 16})
        ssd.write_pages(np.arange(16))
        internal = ssd.write_pages(np.arange(4))
        assert internal >= 12
        assert ssd.counters.write_amplification > 1.0

    def test_hybrid_compaction_threshold(self):
        spec = small_spec()
        quiet = HybridDeltaFtl(spec, group_pages=16, compact_threshold=16)
        eager = HybridDeltaFtl(spec, group_pages=16, compact_threshold=2)
        scattered = np.arange(0, 4096, 3)
        quiet.write_pages(scattered)
        eager.write_pages(scattered)
        assert quiet.counters.merge_pages_relocated == 0
        assert eager.counters.merge_pages_relocated > 0

    def test_page_policy_has_no_merge_traffic(self):
        ssd = Ssd(small_spec(), ftl="page")
        rng = np.random.default_rng(0)
        for _ in range(8):
            ssd.write_pages(rng.integers(0, ssd.spec.logical_pages, 4096))
        assert ssd.counters.merge_pages_relocated == 0


# ---------------------------------------------------------------------- #
# Shared behaviour across all policies                                   #
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("policy", sorted(FTL_POLICIES))
class TestAllPolicies:
    def test_write_trim_format_cycle(self, policy):
        ssd = Ssd(small_spec(), ftl=policy)
        ssd.write_pages(np.arange(1024))
        assert ssd.mapped_pages == 1024
        assert ssd.trim(np.arange(0, 1024, 2)) == 512
        assert ssd.mapped_pages == 512
        ssd.check_invariants()
        ssd.format()
        assert ssd.mapped_pages == 0
        assert ssd.map_bytes() >= 0
        ssd.check_invariants()

    def test_readback_after_churn(self, policy):
        ssd = Ssd(small_spec(), ftl=policy)
        rng = np.random.default_rng(7)
        for _ in range(6):
            ssd.write_pages(rng.integers(0, ssd.spec.logical_pages, 2048))
        lpns = np.flatnonzero(ssd.l2p >= 0)
        ppns = ssd.ftl.l2p[lpns]
        assert np.array_equal(ssd.p2l[ppns], lpns)
        ssd.check_invariants()

    def test_publish_metrics(self, policy):
        registry = MetricsRegistry()
        ssd = Ssd(small_spec(), ftl=policy)
        ssd.write_pages(np.arange(4096))
        ssd.translate(np.arange(16))
        ssd.publish_metrics(registry)
        host = registry.counter("ftl_host_pages_written_total", policy=policy)
        assert host.value == 4096
        assert registry.counter("ftl_lookup_ops_total", policy=policy).value > 0
        assert registry.gauge("ftl_map_bytes", policy=policy).value > 0
        # Publishing twice must not double-count (delta semantics).
        ssd.publish_metrics(registry)
        assert host.value == 4096
